# C-Saw reproduction — developer entry points.

PYTHON ?= python

.PHONY: install test lint analyze bench report examples all clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Determinism & purity linter (DESIGN.md §7); fails on any violation.
lint:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) $(PYTHON) -m repro.devtools.lint src

# Whole-program determinism analyzer (DESIGN.md §12): call graph +
# worker reachability + CSA rules, enforced at an empty baseline.
analyze:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) $(PYTHON) -m repro.devtools.analyze src

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report: bench
	$(PYTHON) -m repro.cli report > EXPERIMENT_REPORT.md
	@echo "wrote EXPERIMENT_REPORT.md"

examples:
	@for script in examples/*.py; do \
		echo "=== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

all: lint analyze test bench report

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
