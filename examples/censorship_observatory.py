#!/usr/bin/env python
"""A censorship observatory over crowdsourced C-Saw data (§4.2).

Runs a scaled-down pilot deployment, then plays the *consumer* of the
global database: per-AS censorship profiles, the domains the most ASes
agree on blocking, and — the paper's §2.3 motivation, observed in the
crowd's own data — domains that different ASes block with *different*
mechanisms, which is exactly the knowledge adaptive circumvention needs.

Run:  python examples/censorship_observatory.py
"""

from repro.analysis import render_table
from repro.core.analytics import MeasurementAnalytics
from repro.workloads.pilot import PilotConfig, PilotStudy


def main() -> None:
    study = PilotStudy(
        PilotConfig(
            seed=23, n_users=30, n_sites=400, requests_per_user=50,
            duration_days=30, n_ases=8,
        )
    )
    print("running a 30-user, 30-day pilot…")
    study.run()
    analytics = MeasurementAnalytics(study.server)

    rows = []
    for summary in analytics.all_as_summaries():
        rows.append([
            f"AS{summary.asn}",
            summary.reporters,
            summary.blocked_urls,
            summary.blocked_domains,
            summary.dominant_type or "-",
        ])
    print(render_table(
        ["AS", "reporters", "blocked URLs", "domains", "dominant mechanism"],
        rows,
        title="\nper-AS censorship profiles (crowdsourced)",
    ))

    top = analytics.top_blocked_domains(limit=8)
    print(render_table(
        ["domain", "blocked in # ASes"],
        [[domain, count] for domain, count in top],
        title="\nmost widely blocked domains",
    ))

    varied = analytics.mechanism_heterogeneity()
    sample = sorted(varied.items())[:5]
    print(render_table(
        ["domain", "per-AS dominant mechanism"],
        [
            [domain, ", ".join(f"AS{asn}:{mech}" for asn, mech in entries)]
            for domain, entries in sample
        ],
        title=f"\ndomains blocked differently across ASes "
        f"({len(varied)} total — the §2.3 insight in the crowd's data)",
    ))


if __name__ == "__main__":
    main()
