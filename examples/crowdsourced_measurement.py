#!/usr/bin/env python
"""Crowdsourcing in action: measurements make everyone faster (§4.2, §5).

Three users behind the same censoring ISP install C-Saw in sequence.
User 1 pays the discovery cost (redundant requests + in-line detection);
users 2 and 3 download the blocked list at install time and circumvent
immediately.  A malicious reporter then floods the global DB with fake
entries; the voting-based confidence filter keeps them out of honest
clients' views.

Run:  python examples/crowdsourced_measurement.py
"""

from repro.core import CSawClient, ReportItem, ServerDB
from repro.core.records import BlockType
from repro.workloads.scenarios import pakistan_case_study


def main() -> None:
    scenario = pakistan_case_study(seed=99, with_proxy_fleet=False)
    world = scenario.world
    server = ServerDB()
    url = scenario.urls["youtube"]

    users = [
        CSawClient(
            world,
            f"user-{index}",
            [scenario.isp_a],
            transports=scenario.make_transports(f"user-{index}"),
            server_db=server,
        )
        for index in range(3)
    ]

    def session():
        print("=== user-0 discovers the blocking ===")
        yield from users[0].install()
        response = yield from users[0].request(url)
        yield response.measurement_process
        print(
            f"  user-0: via {response.path}, plt={response.plt:.2f}s "
            f"(paid the discovery cost)"
        )
        posted = yield from users[0].reporting.post_reports(users[0].new_ctx())
        print(f"  user-0 posted {posted} report(s)\n")

        print("=== users 1 and 2 benefit from the crowd ===")
        for user in users[1:]:
            yield from user.install()  # pulls the blocked list
            entry = user.global_view.lookup(url)
            print(
                f"  {user.name}: learned at install that {entry.url} is "
                f"blocked ({','.join(s.value for s in entry.stages)})"
            )
            response = yield from user.request(url)
            yield response.measurement_process
            print(
                f"  {user.name}: via {response.path}, plt={response.plt:.2f}s "
                f"(no discovery cost)"
            )
        print()

        print("=== a malicious reporter floods the DB ===")
        evil = server.register(now=world.env.now)
        fakes = [
            ReportItem(
                url=f"http://innocent-{i}.example/",
                asn=scenario.isp_a.asn,
                stages=(BlockType.BLOCK_PAGE,),
                measured_at=world.env.now,
            )
            for i in range(100)
        ]
        server.post_update(evil, fakes, now=world.env.now)
        naive = server.blocked_for_as(scenario.isp_a.asn, now=world.env.now)
        careful = server.blocked_for_as(
            scenario.isp_a.asn, now=world.env.now, min_votes=0.05
        )
        print(f"  naive download: {len(naive)} entries (poisoned!)")
        print(
            f"  with the voting filter (min_votes=0.05): {len(careful)} "
            f"entries — {[e.url for e in careful]}"
        )
        stats = server.stats_for(url, scenario.isp_a.asn)
        print(
            f"  votes for the real entry: s={stats.votes:.2f} from "
            f"n={stats.reporters} reporter(s)"
        )

    world.run_process(session())


if __name__ == "__main__":
    main()
