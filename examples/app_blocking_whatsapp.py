#!/usr/bin/env python
"""Non-web filtering (§8 future work): a messaging app gets blocked.

A WhatsApp-like service with three endpoints; mid-session the censor
blacklists all of them by IP. The reachability checker classifies the
blocking per endpoint and transparently moves the session onto a VPN
tunnel — the standard recovery for non-web traffic.

Run:  python examples/app_blocking_whatsapp.py
"""

from repro.censor.actions import IpAction, IpVerdict
from repro.censor.policy import CensorPolicy, Matcher, Rule
from repro.core.appcheck import AppReachabilityChecker
from repro.simnet.app import build_app_service
from repro.simnet.world import World


def main() -> None:
    world = World(seed=2017)
    world.add_public_resolver()
    policy = CensorPolicy(name="demo-isp")
    isp = world.add_isp(64510, "Demo-ISP", policy=policy)
    whatsapp = build_app_service(world, "whatsapp", n_endpoints=3)
    vpn = world.network.add_host("vpn.nl.example", "netherlands")
    client, access = world.add_client("mobile-user", [isp])
    checker = AppReachabilityChecker(world, vpn_endpoint=vpn)

    def session():
        ctx = world.new_ctx(client, access, stream="app-demo")
        conn = yield from checker.connect(ctx, whatsapp)
        print(
            f"t={world.env.now:7.1f}s  connected via {conn.via} "
            f"(endpoint {conn.endpoint.name}, rtt {conn.rtt * 1000:.0f} ms)"
        )

        # The censor blacklists every endpoint IP.
        yield world.env.timeout(3600)
        policy.add_rule(Rule(
            matcher=Matcher(ips=set(whatsapp.endpoint_ips)),
            ip=IpVerdict(IpAction.DROP),
        ))
        print(f"t={world.env.now:7.1f}s  censor blacklists all "
              f"{len(whatsapp.endpoints)} endpoints")

        status = yield from checker.check(ctx, whatsapp)
        print(
            f"t={world.env.now:7.1f}s  checker: {status.status.value}, "
            f"blocked endpoints: {len(status.blocked_endpoints)}/"
            f"{len(whatsapp.endpoints)}"
        )

        conn = yield from checker.connect(ctx, whatsapp)
        print(
            f"t={world.env.now:7.1f}s  reconnected via {conn.via} "
            f"(endpoint {conn.endpoint.name}, rtt {conn.rtt * 1000:.0f} ms)"
        )

    world.run_process(session())


if __name__ == "__main__":
    main()
