#!/usr/bin/env python
"""Monitoring a live blocking wave (§7.5, "C-Saw in the wild").

Replays the November 2017 Twitter/Instagram blocking wave across four
Pakistani ASes and prints the measurement timeline exactly as C-Saw's
global database collected it — each AS blocking each service with its own
mechanism, at its own time, detected by ordinary users' browsing.

Run:  python examples/blocking_wave_monitor.py
"""

from repro.workloads.events import BlockingWave


def main() -> None:
    wave = BlockingWave(seed=5, users_per_as=4)
    wave.build()
    print("censor timeline (ground truth):")
    for event in sorted(wave.events, key=lambda e: e.time):
        print(
            f"  t+{event.time / 3600:5.1f}h  AS {event.asn} starts blocking "
            f"{event.domain} via {event.mechanism}"
        )

    observations = wave.run()
    print("\nwhat C-Saw's global DB collected:")
    for obs in observations:
        print(f"  {obs.render()}")

    print("\ninsights (as in the paper):")
    twitter_symptoms = {
        o.asn: o.symptom for o in observations if o.service == "Twitter"
    }
    print(
        f"  - different ASes blocked Twitter differently: {twitter_symptoms}"
    )
    instagram_ases = sorted(
        o.asn for o in observations if o.service == "Instagram"
    )
    print(f"  - Instagram was DNS-blocked from ASes {instagram_ases}")


if __name__ == "__main__":
    main()
