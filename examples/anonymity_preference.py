#!/usr/bin/env python
"""Performance vs anonymity: the user-preference knob (§4.4).

Two users behind the same HTTP-blocking ISP access the same blocked site.
The performance-preferring user converges onto the HTTPS local fix
(fast, but the censor can see *who* is connecting where at the IP layer).
The anonymity-preferring user refuses local fixes entirely and rides Tor
— slower, but the censor cannot attribute the content to them.

Run:  python examples/anonymity_preference.py
"""

from repro.core import CSawClient, CSawConfig
from repro.workloads.scenarios import pakistan_case_study


def drive(scenario, client, label: str, accesses: int = 6) -> None:
    world = scenario.world
    print(f"--- {label} ---")

    def session():
        for index in range(accesses):
            response = yield from client.request(scenario.urls["youtube"])
            yield response.measurement_process
            anonymous = (
                "anonymous" if response.path == "tor" else "attributable"
            )
            print(
                f"  access {index}: via {response.path:10s} "
                f"plt={response.plt:6.2f}s  ({anonymous})"
            )
        print()

    world.run_process(session())


def main() -> None:
    scenario = pakistan_case_study(seed=17, with_proxy_fleet=False)

    performance_user = CSawClient(
        scenario.world,
        "perf-user",
        [scenario.isp_a],
        transports=scenario.make_transports("perf-user"),
        config=CSawConfig(prefer_anonymity=False),
    )
    anonymity_user = CSawClient(
        scenario.world,
        "anon-user",
        [scenario.isp_a],
        transports=scenario.make_transports("anon-user"),
        config=CSawConfig(prefer_anonymity=True),
    )

    drive(scenario, performance_user, "performance preference (default)")
    drive(scenario, anonymity_user, "anonymity preference")

    print(
        "The paper's §4.4: \"If a user prefers performance over anonymity, "
        "the C-Saw proxy always picks local-fixes (whenever available). If "
        "a user prefers anonymity over performance, C-Saw always chooses "
        "an anonymous circumvention approach (e.g., Tor).\""
    )


if __name__ == "__main__":
    main()
