#!/usr/bin/env python
"""Quickstart: install C-Saw behind a censoring ISP and browse.

Builds a small simulated Internet with one censoring ISP (HTTP blocking
via block-page redirects), installs a C-Saw client, and requests a
blocked and an unblocked URL a few times.  Watch the first access detect
the block page in-line and later accesses switch to the cheap HTTPS
local fix.

Run:  python examples/quickstart.py
"""

from repro.censor.actions import HttpAction, HttpVerdict
from repro.censor.blockpages import DEFAULT_BLOCKPAGE_HTML
from repro.censor.policy import CensorPolicy, Matcher, Rule
from repro.circumvent import HttpsTransport, PublicDnsTransport, TorNetwork, TorTransport
from repro.core import CSawClient, ServerDB
from repro.simnet.web import WebPage
from repro.simnet.world import World


def build_world() -> tuple:
    world = World(seed=2018)
    world.add_public_resolver()

    # A site the censor dislikes, and one it doesn't care about.
    world.web.add_site("news.example.org", location="us-east")
    world.web.add_page("http://news.example.org/", size_bytes=200_000)
    world.web.add_site("cats.example.org", location="netherlands")
    world.web.add_page("http://cats.example.org/", size_bytes=120_000)

    # The censor's block-page server.
    blockpage = world.web.add_site(
        "block.isp.example",
        location="pakistan",
        supports_https=False,
        catch_all=lambda path: WebPage(
            url=f"http://block.isp.example{path}",
            size_bytes=len(DEFAULT_BLOCKPAGE_HTML),
            html=DEFAULT_BLOCKPAGE_HTML,
        ),
    )

    policy = CensorPolicy(name="demo-isp")
    policy.add_rule(
        Rule(
            matcher=Matcher(domains={"news.example.org"}),
            http=HttpVerdict(
                HttpAction.BLOCKPAGE_REDIRECT, blockpage_ip=blockpage.host.ip
            ),
        )
    )
    isp = world.add_isp(64500, "Demo-ISP", policy=policy)

    tor = TorNetwork.build(world, n_relays=20)
    return world, isp, tor


def main() -> None:
    world, isp, tor = build_world()
    server = ServerDB()
    client = CSawClient(
        world,
        "demo-user",
        [isp],
        transports=[
            PublicDnsTransport(),
            HttpsTransport(),
            TorTransport(tor.client("demo-user")),
        ],
        server_db=server,
    )

    def session():
        uuid = yield from client.install()
        print(f"registered with global DB as {uuid[:12]}…\n")
        for url in (
            "http://news.example.org/",
            "http://news.example.org/",
            "http://news.example.org/",
            "http://cats.example.org/",
        ):
            response = yield from client.request(url)
            yield response.measurement_process  # join the bookkeeping
            stages = ",".join(s.value for s in response.stages) or "-"
            print(
                f"{url:35s} served via {response.path:10s} "
                f"plt={response.plt:5.2f}s status={response.status.value:12s} "
                f"blocking=[{stages}]"
            )
        posted = yield from client.reporting.post_reports(client.new_ctx())
        print(f"\nposted {posted} blocked-URL report(s) to the global DB")
        print(f"client stats: {client.stats()}")

    world.run_process(session())


if __name__ == "__main__":
    main()
