#!/usr/bin/env python
"""Adaptive circumvention across two differently-censoring ISPs (§2.3).

Rebuilds the paper's Pakistan case study: ISP-A blocks YouTube at the
HTTP layer (block page), ISP-B uses multi-stage blocking (DNS redirect to
a local host plus HTTP/HTTPS drops).  A C-Saw client behind each ISP
accesses YouTube repeatedly; watch each client converge onto the cheapest
circumvention that its censor cannot defeat:

- behind ISP-A: plain HTTPS (censor only filters cleartext HTTP);
- behind ISP-B: domain fronting (SNI filtering kills HTTPS; the DPI even
  drops Host:<ip> requests, so ip-as-hostname is learned to fail).

Run:  python examples/adaptive_circumvention.py
"""

from repro.core import CSawClient
from repro.workloads.scenarios import pakistan_case_study


def drive(scenario, isp, label: str, accesses: int = 8) -> None:
    world = scenario.world
    client = CSawClient(
        world,
        f"adaptive-{label}",
        [isp],
        transports=scenario.make_transports(f"adaptive-{label}"),
    )
    print(f"--- client behind {label} ---")

    def session():
        for index in range(accesses):
            response = yield from client.request(scenario.urls["youtube"])
            yield response.measurement_process
            stages = ",".join(s.value for s in response.stages) or "-"
            print(
                f"  access {index}: via {response.path:16s} "
                f"plt={response.plt:6.2f}s  blocking=[{stages}]"
            )
        estimate = {
            name: round(client.circumvention.estimate_plt(
                name, scenario.urls["youtube"]), 2)
            for name in client.circumvention.transports
            if name != "direct"
        }
        print(f"  learned PLT estimates: {estimate}\n")

    world.run_process(session())


def main() -> None:
    scenario = pakistan_case_study(seed=7, with_proxy_fleet=False)
    drive(scenario, scenario.isp_a, "ISP-A (HTTP block page)")
    drive(scenario, scenario.isp_b, "ISP-B (DNS + HTTP/HTTPS drops)")


if __name__ == "__main__":
    main()
