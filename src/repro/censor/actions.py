"""Blocking-action taxonomy.

The vocabulary mirrors §2.1 of the paper and the categories of Figure 2:

- DNS tampering: drop the query (``No DNS``), NXDOMAIN, SERVFAIL, REFUSED,
  or redirect to another IP (``DNS Redir`` — typically a private address or
  a proxy that serves a block page).
- IP blocking: silently drop packets (``No HTTP Resp`` / TCP timeouts) or
  inject a TCP RST (``RST``).
- HTTP blocking: drop the GET, inject a RST, redirect to a block page, or
  splice a block page in via an iframe (``Block Page w/o Redir``).
- TLS/SNI blocking: drop or reset handshakes whose SNI matches a blacklist.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DnsAction",
    "IpAction",
    "HttpAction",
    "TlsAction",
    "DnsVerdict",
    "IpVerdict",
    "HttpVerdict",
    "TlsVerdict",
    "PASS_DNS",
    "PASS_IP",
    "PASS_HTTP",
    "PASS_TLS",
]


class DnsAction(enum.Enum):
    PASS = "pass"
    TIMEOUT = "timeout"  # query or response silently dropped
    NXDOMAIN = "nxdomain"
    SERVFAIL = "servfail"
    REFUSED = "refused"
    REDIRECT = "redirect"  # forged A record


class IpAction(enum.Enum):
    PASS = "pass"
    DROP = "drop"  # packets blackholed -> TCP connect timeout
    RST = "rst"  # TCP reset injected


class HttpAction(enum.Enum):
    PASS = "pass"
    DROP = "drop"  # GET swallowed -> HTTP timeout
    RST = "rst"
    BLOCKPAGE_REDIRECT = "blockpage-redirect"  # 302 to a block page
    BLOCKPAGE_IFRAME = "blockpage-iframe"  # 200 with block page in an iframe


class TlsAction(enum.Enum):
    PASS = "pass"
    DROP = "drop"  # handshake swallowed
    RST = "rst"


@dataclass(frozen=True)
class DnsVerdict:
    """DNS-stage verdict.

    ``scope`` distinguishes resolver-based tampering ("resolver": the ISP's
    own resolver lies, bypassable with a public DNS server) from on-path
    injection ("path": any port-53 traffic through the ISP is tampered
    with, the Hold-On case from §2.2).
    """

    action: DnsAction
    redirect_ip: Optional[str] = None
    scope: str = "resolver"
    # On-path *injection*: the censor races a forged reply against the
    # genuine one rather than suppressing it.  A naive stub accepts the
    # first (forged) answer; the Hold-On defence (Duan et al., §2.2)
    # waits out the race window and keeps the legitimate reply.
    injection_race: bool = False

    def __post_init__(self) -> None:
        if self.action is DnsAction.REDIRECT and not self.redirect_ip:
            raise ValueError("REDIRECT verdict requires redirect_ip")
        if self.scope not in ("resolver", "path"):
            raise ValueError(f"unknown DNS verdict scope: {self.scope!r}")
        if self.injection_race:
            if self.action is not DnsAction.REDIRECT:
                raise ValueError("injection_race requires a REDIRECT verdict")
            if self.scope != "path":
                raise ValueError("injection races happen on-path")


@dataclass(frozen=True)
class IpVerdict:
    action: IpAction


@dataclass(frozen=True)
class HttpVerdict:
    action: HttpAction
    blockpage_ip: Optional[str] = None  # server hosting the block page

    def __post_init__(self) -> None:
        needs_page = (
            HttpAction.BLOCKPAGE_REDIRECT,
            HttpAction.BLOCKPAGE_IFRAME,
        )
        if self.action in needs_page and not self.blockpage_ip:
            raise ValueError(f"{self.action} verdict requires blockpage_ip")


@dataclass(frozen=True)
class TlsVerdict:
    action: TlsAction


PASS_DNS = DnsVerdict(DnsAction.PASS)
PASS_IP = IpVerdict(IpAction.PASS)
PASS_HTTP = HttpVerdict(HttpAction.PASS)
PASS_TLS = TlsVerdict(TlsAction.PASS)
