"""Censor policies: what an ISP blocks and how.

A :class:`CensorPolicy` is an ordered list of :class:`Rule` objects, first
match wins — the structure of a commercial filtering appliance.  Each rule
couples a *matcher* over wire-visible identifiers (query names, destination
IPs, cleartext URLs, SNI values) with per-stage verdicts, so multi-stage
blocking (the paper's ISP-B: DNS blocking *and* HTTP/HTTPS drops) is one
rule carrying several verdicts.

Distributed censorship (§2) is expressed by giving every AS its own policy;
centralized censorship by sharing one policy object among ASes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from .actions import (
    PASS_DNS,
    PASS_HTTP,
    PASS_IP,
    PASS_TLS,
    DnsVerdict,
    HttpVerdict,
    IpVerdict,
    TlsVerdict,
)

__all__ = ["Matcher", "Rule", "CensorPolicy"]


def _domain_matches(qname: str, suffix: str) -> bool:
    """True when ``qname`` equals ``suffix`` or is a subdomain of it."""
    qname = qname.lower().rstrip(".")
    suffix = suffix.lower().rstrip(".")
    return qname == suffix or qname.endswith("." + suffix)


def _label_suffixes(hostname: str):
    """All label-aligned suffixes of a hostname, longest first.

    "www.foo.com" -> "www.foo.com", "foo.com", "com".  Used for O(#labels)
    set-lookup domain matching (blocklists hold hundreds of domains, and
    the middlebox consults them on every DNS/HTTP/TLS stage).
    """
    hostname = hostname.lower().rstrip(".")
    labels = hostname.split(".")
    for start in range(len(labels)):
        yield ".".join(labels[start:])


@dataclass
class Matcher:
    """Predicate over the identifiers visible at each interception stage.

    Empty criteria never match; a matcher must set at least one of them.
    ``keywords`` match anywhere in the cleartext URL (HTTP stage only),
    mirroring keyword filters that the IP-as-hostname trick evades.
    """

    domains: Set[str] = field(default_factory=set)
    keywords: Set[str] = field(default_factory=set)
    url_prefixes: Set[str] = field(default_factory=set)
    ips: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.domains = {d.lower() for d in self.domains}
        self.keywords = {k.lower() for k in self.keywords}
        self.url_prefixes = {p.lower() for p in self.url_prefixes}
        if not (self.domains or self.keywords or self.url_prefixes or self.ips):
            raise ValueError("matcher needs at least one criterion")

    def matches_qname(self, qname: str) -> bool:
        return any(suffix in self.domains for suffix in _label_suffixes(qname))

    def matches_ip(self, ip: str) -> bool:
        return ip in self.ips

    def matches_sni(self, sni: Optional[str]) -> bool:
        if sni is None:
            return False
        return self.matches_qname(sni) or any(
            k in sni.lower() for k in self.keywords
        )

    def matches_url(self, host: str, path: str) -> bool:
        # Lowercase host *and* path once: keyword filters inspect the whole
        # cleartext URL, and a MiXeD-case path must not dodge them.
        url = f"{host}{path}".lower()
        if self.matches_qname(host):
            return True
        if any(k in url for k in self.keywords):
            return True
        return any(url.startswith(p) or f"http://{url}".startswith(p)
                   for p in self.url_prefixes)


@dataclass
class Rule:
    """Matcher plus the verdicts applied at each stage it intercepts."""

    matcher: Matcher
    dns: DnsVerdict = PASS_DNS
    ip: IpVerdict = PASS_IP
    http: HttpVerdict = PASS_HTTP
    tls: TlsVerdict = PASS_TLS
    label: str = ""


class CensorPolicy:
    """Ordered rule set consulted by the protocol layers.

    The methods return the *verdict* for a given wire observation; PASS
    verdicts mean "not this rule's business".  First matching rule wins.

    The stage hooks (``on_dns_query`` & co.) are served by a compiled
    per-stage hash index (:class:`~repro.censor.compiled.CompiledPolicy`)
    that is rebuilt transparently whenever ``add_rule``/``remove_rules``
    changes the rule list.  The ``linear_on_*`` twins keep the original
    rule-scan semantics as the executable specification; the property
    tests assert the two paths return identical verdict objects.  Mutating
    a :class:`Matcher`'s criterion sets in place after the rule was added
    is NOT supported — go through ``add_rule``/``remove_rules``.
    """

    def __init__(self, rules: Optional[Iterable[Rule]] = None, name: str = ""):
        self.name = name
        self.rules: List[Rule] = list(rules or [])
        self._version = 0
        self._compiled = None
        self._compiled_version = -1

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)
        self._version += 1

    def remove_rules(self, label: str) -> int:
        """Drop all rules carrying ``label``; returns how many were removed."""
        before = len(self.rules)
        self.rules = [r for r in self.rules if r.label != label]
        self._version += 1
        return before - len(self.rules)

    def compiled(self):
        """The current :class:`CompiledPolicy` snapshot (rebuilt on change)."""
        if self._compiled is None or self._compiled_version != self._version:
            from .compiled import CompiledPolicy  # deferred: avoids cycle

            self._compiled = CompiledPolicy(self.rules)
            self._compiled_version = self._version
        return self._compiled

    # -- stage hooks --------------------------------------------------------

    def on_dns_query(self, qname: str) -> DnsVerdict:
        return self.compiled().on_dns_query(qname)

    def on_packet(self, dst_ip: str) -> IpVerdict:
        return self.compiled().on_packet(dst_ip)

    def on_http_request(self, host: str, path: str) -> HttpVerdict:
        return self.compiled().on_http_request(host, path)

    def on_tls_client_hello(self, sni: Optional[str], dst_ip: str) -> TlsVerdict:
        return self.compiled().on_tls_client_hello(sni, dst_ip)

    # -- linear reference implementations -----------------------------------
    # The pre-index semantics, kept as the executable spec the compiled
    # index is property-tested against.

    def linear_on_dns_query(self, qname: str) -> DnsVerdict:
        for rule in self.rules:
            if rule.dns is not PASS_DNS and rule.matcher.matches_qname(qname):
                return rule.dns
        return PASS_DNS

    def linear_on_packet(self, dst_ip: str) -> IpVerdict:
        for rule in self.rules:
            if rule.ip is not PASS_IP and rule.matcher.matches_ip(dst_ip):
                return rule.ip
        return PASS_IP

    def linear_on_http_request(self, host: str, path: str) -> HttpVerdict:
        for rule in self.rules:
            if rule.http is not PASS_HTTP and rule.matcher.matches_url(host, path):
                return rule.http
        return PASS_HTTP

    def linear_on_tls_client_hello(
        self, sni: Optional[str], dst_ip: str
    ) -> TlsVerdict:
        for rule in self.rules:
            if rule.tls is PASS_TLS:
                continue
            if rule.matcher.matches_sni(sni) or rule.matcher.matches_ip(dst_ip):
                return rule.tls
        return PASS_TLS

    def __repr__(self) -> str:
        return f"CensorPolicy({self.name!r}, {len(self.rules)} rules)"
