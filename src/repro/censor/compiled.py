"""Compiled form of a :class:`~repro.censor.policy.CensorPolicy`.

The linear policy scans every rule on every DNS/TCP/TLS/HTTP observation —
O(rules) per packet, multiplied across ~10^6 events per experiment.  A
:class:`CompiledPolicy` collapses the ordered rule list into per-stage hash
structures so each stage costs O(#labels + #keyword-hits) instead:

- **domain suffixes** — one dict per stage mapping each blocked domain to
  the smallest index of a rule carrying it, probed once per label-aligned
  suffix of the query name;
- **exact IPs** — a dict per stage, one probe per packet;
- **keywords** — a single combined regex as a fast *rejection* prefilter
  (the overwhelmingly common case is "no keyword present"), falling back to
  an ordered ``(rule_index, keyword)`` scan only on a prefilter hit;
- **URL prefixes** — bucketed by the prefix's host component (everything up
  to the first ``/``), with partial-host prefixes kept on a small ordered
  fallback list and scheme-prefix pathologies (``"http:"`` matching every
  URL through the ``http://`` + url retry) folded into a universal index.

First-match-wins is preserved exactly: every structure stores *rule
indexes*, each stage gathers the best (smallest) index over all criterion
hits, and the verdict of that rule is returned — identical to scanning the
rules in order and returning the first match (the property tests in
``tests/test_compiled_policy.py`` assert byte-identical verdicts against the
linear reference on the Pakistan case-study world).

Instances are immutable snapshots.  :meth:`CensorPolicy.compiled` rebuilds
one transparently whenever ``add_rule`` / ``remove_rules`` bumps the
policy's version counter.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from .actions import (
    PASS_DNS,
    PASS_HTTP,
    PASS_IP,
    PASS_TLS,
    DnsVerdict,
    HttpVerdict,
    IpVerdict,
    TlsVerdict,
)
from .policy import Rule, _label_suffixes

__all__ = ["CompiledPolicy"]

_NO_MATCH = 1 << 60  # sentinel rule index: larger than any real index


def _keyword_engine(keywords: List[Tuple[int, str]]):
    """Build the combined-regex prefilter for an ordered keyword list."""
    if not keywords:
        return None
    pattern = re.compile("|".join(re.escape(k) for _i, k in keywords))
    return pattern


class CompiledPolicy:
    """Per-stage hash indexes over an ordered rule list (see module doc)."""

    __slots__ = (
        "rules",
        "_dns_domains",
        "_ip_ips",
        "_http_domains",
        "_http_keywords",
        "_http_kw_re",
        "_http_prefix_buckets",
        "_http_prefix_fallback",
        "_http_universal",
        "_tls_domains",
        "_tls_ips",
        "_tls_keywords",
        "_tls_kw_re",
    )

    def __init__(self, rules: Sequence[Rule]):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        dns_domains: Dict[str, int] = {}
        ip_ips: Dict[str, int] = {}
        http_domains: Dict[str, int] = {}
        http_keywords: List[Tuple[int, str]] = []
        http_prefix_buckets: Dict[str, List[Tuple[int, str]]] = {}
        http_prefix_fallback: List[Tuple[int, str]] = []
        http_universal = _NO_MATCH
        tls_domains: Dict[str, int] = {}
        tls_ips: Dict[str, int] = {}
        tls_keywords: List[Tuple[int, str]] = []

        def route_prefix(index: int, prefix: str) -> None:
            # Bucket by the text up to the first "/": url.startswith(p)
            # with "/" in p implies the url's first "/" aligns with p's.
            if "/" in prefix:
                bucket = prefix.split("/", 1)[0]
                http_prefix_buckets.setdefault(bucket, []).append(
                    (index, prefix)
                )
            else:
                http_prefix_fallback.append((index, prefix))

        for index, rule in enumerate(self.rules):
            matcher = rule.matcher
            if rule.dns is not PASS_DNS:
                for domain in matcher.domains:
                    dns_domains.setdefault(domain, index)
            if rule.ip is not PASS_IP:
                for ip in matcher.ips:
                    ip_ips.setdefault(ip, index)
            if rule.http is not PASS_HTTP:
                for domain in matcher.domains:
                    http_domains.setdefault(domain, index)
                for keyword in sorted(matcher.keywords):
                    http_keywords.append((index, keyword))
                for prefix in sorted(matcher.url_prefixes):
                    if "http://".startswith(prefix):
                        # A prefix of the scheme itself matches every URL
                        # via the "http://" + url retry in the linear path.
                        http_universal = min(http_universal, index)
                        continue
                    route_prefix(index, prefix)
                    if prefix.startswith("http://"):
                        # The retry strips the scheme before comparing.
                        route_prefix(index, prefix[7:])
            if rule.tls is not PASS_TLS:
                for domain in matcher.domains:
                    tls_domains.setdefault(domain, index)
                for keyword in sorted(matcher.keywords):
                    tls_keywords.append((index, keyword))
                for ip in matcher.ips:
                    tls_ips.setdefault(ip, index)

        http_keywords.sort()
        tls_keywords.sort()
        for bucket_rules in http_prefix_buckets.values():
            bucket_rules.sort()
        http_prefix_fallback.sort()

        self._dns_domains = dns_domains
        self._ip_ips = ip_ips
        self._http_domains = http_domains
        self._http_keywords = http_keywords
        self._http_kw_re = _keyword_engine(http_keywords)
        self._http_prefix_buckets = http_prefix_buckets
        self._http_prefix_fallback = http_prefix_fallback
        self._http_universal = http_universal
        self._tls_domains = tls_domains
        self._tls_ips = tls_ips
        self._tls_keywords = tls_keywords
        self._tls_kw_re = _keyword_engine(tls_keywords)

    # -- shared helpers -----------------------------------------------------

    @staticmethod
    def _domain_hit(domains: Dict[str, int], hostname: str) -> int:
        best = _NO_MATCH
        if domains:
            get = domains.get
            for suffix in _label_suffixes(hostname):
                index = get(suffix)
                if index is not None and index < best:
                    best = index
        return best

    @staticmethod
    def _keyword_hit(pattern, keywords: List[Tuple[int, str]], text: str) -> int:
        if pattern is not None and pattern.search(text):
            for index, keyword in keywords:
                if keyword in text:
                    return index
        return _NO_MATCH

    # -- stage hooks (mirror CensorPolicy.linear_on_*) ----------------------

    def on_dns_query(self, qname: str) -> DnsVerdict:
        best = self._domain_hit(self._dns_domains, qname)
        if best is _NO_MATCH:
            return PASS_DNS
        return self.rules[best].dns

    def on_packet(self, dst_ip: str) -> IpVerdict:
        index = self._ip_ips.get(dst_ip)
        if index is None:
            return PASS_IP
        return self.rules[index].ip

    def on_http_request(self, host: str, path: str) -> HttpVerdict:
        url = f"{host}{path}".lower()
        best = self._http_universal
        hit = self._domain_hit(self._http_domains, host)
        if hit < best:
            best = hit
        hit = self._keyword_hit(self._http_kw_re, self._http_keywords, url)
        if hit < best:
            best = hit
        if self._http_prefix_buckets or self._http_prefix_fallback:
            cut = url.find("/")
            bucket_key = url[:cut] if cut >= 0 else url
            for index, prefix in self._http_prefix_buckets.get(bucket_key, ()):
                if index >= best:
                    break
                if url.startswith(prefix):
                    best = index
                    break
            for index, prefix in self._http_prefix_fallback:
                if index >= best:
                    break
                if url.startswith(prefix):
                    best = index
                    break
        if best == _NO_MATCH:
            return PASS_HTTP
        return self.rules[best].http

    def on_tls_client_hello(
        self, sni: Optional[str], dst_ip: str
    ) -> TlsVerdict:
        best = _NO_MATCH
        if sni is not None:
            best = self._domain_hit(self._tls_domains, sni)
            hit = self._keyword_hit(
                self._tls_kw_re, self._tls_keywords, sni.lower()
            )
            if hit < best:
                best = hit
        index = self._tls_ips.get(dst_ip)
        if index is not None and index < best:
            best = index
        if best == _NO_MATCH:
            return PASS_TLS
        return self.rules[best].tls

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledPolicy({len(self.rules)} rules, "
            f"{len(self._dns_domains)} dns domains, "
            f"{len(self._ip_ips)} ips)"
        )
