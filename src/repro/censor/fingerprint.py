"""Censor-side fingerprinting of C-Saw users (§8).

The paper asks whether C-Saw's behaviour — duplicate requests, failover
to circumvention after blocking — makes its users identifiable to a
censor watching the wire.  This module plays that censor: it consumes a
middlebox's *flow observations* (who connected where, when) and its
*enforcement log* (what was blocked, when), and scores each client IP on
C-Saw-shaped patterns:

- **paired flows**: two near-simultaneous connections from one client
  where one goes to a known relay (redundant requests);
- **block-then-relay**: a connection to a known relay shortly after that
  client hit an enforcement action (circumvention failover).

The counter-finding the paper hopes for (and this module lets benches
quantify): *selective* redundancy keeps these signals rare, while an
always-redundant strawman lights up immediately.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Sequence, Set

from .middlebox import Middlebox

__all__ = ["FingerprintScore", "FingerprintAnalyzer"]


@dataclass(frozen=True)
class FingerprintScore:
    """Per-client evidence the censor accumulated."""

    client_ip: str
    flows: int
    relay_flows: int
    paired_flows: int
    block_then_relay: int

    @property
    def suspicion(self) -> float:
        """Heuristic suspicion score in [0, inf)."""
        if self.flows == 0:
            return 0.0
        return (
            2.0 * self.block_then_relay + 1.0 * self.paired_flows
        ) / self.flows + 0.3 * (self.relay_flows / self.flows)


class FingerprintAnalyzer:
    """The censor's offline analysis over one middlebox's logs."""

    def __init__(
        self,
        middlebox: Middlebox,
        relay_ips: Set[str],
        pair_window: float = 1.0,
        failover_window: float = 30.0,
    ):
        self.middlebox = middlebox
        self.relay_ips = set(relay_ips)
        self.pair_window = pair_window
        self.failover_window = failover_window

    def score_clients(self) -> Dict[str, FingerprintScore]:
        flows_by_client: Dict[str, List] = defaultdict(list)
        for flow in self.middlebox.flows:
            flows_by_client[flow.src_ip].append(flow)
        blocks_by_client: Dict[str, List[float]] = defaultdict(list)
        for event in self.middlebox.log:
            if event.src_ip:
                blocks_by_client[event.src_ip].append(event.time)

        scores = {}
        for client_ip, flows in flows_by_client.items():
            flows.sort(key=lambda f: f.time)
            relay_flows = [f for f in flows if f.dst_ip in self.relay_ips]
            paired = 0
            for relay_flow in relay_flows:
                # A non-relay flow starting within the pair window.
                if any(
                    f.dst_ip not in self.relay_ips
                    and abs(f.time - relay_flow.time) <= self.pair_window
                    for f in flows
                ):
                    paired += 1
            block_times = sorted(blocks_by_client.get(client_ip, []))
            failovers = 0
            for relay_flow in relay_flows:
                if any(
                    0 <= relay_flow.time - t <= self.failover_window
                    for t in block_times
                ):
                    failovers += 1
            scores[client_ip] = FingerprintScore(
                client_ip=client_ip,
                flows=len(flows),
                relay_flows=len(relay_flows),
                paired_flows=paired,
                block_then_relay=failovers,
            )
        return scores

    def classify(self, threshold: float = 0.25) -> AbstractSet[str]:
        """Client IPs the censor labels as circumvention-tool users.

        Returned as an ordered dict-as-set keyed in flow-arrival order,
        so anything listing the labelled IPs is same-seed stable.
        """
        labelled: Dict[str, None] = {
            ip: None
            for ip, score in self.score_clients().items()
            if score.suspicion >= threshold
        }
        return labelled.keys()

    def evaluate(
        self, true_users: Sequence[str], threshold: float = 0.25
    ) -> Dict[str, float]:
        """Precision/recall of the censor's labelling."""
        labelled = self.classify(threshold)
        truth = set(true_users)
        true_positives = len(labelled & truth)
        precision = true_positives / len(labelled) if labelled else 0.0
        recall = true_positives / len(truth) if truth else 0.0
        return {
            "precision": precision,
            "recall": recall,
            "labelled": float(len(labelled)),
        }
