"""On-path censor middlebox.

One middlebox per censoring AS.  It wraps a :class:`CensorPolicy` and keeps
an audit log of every non-PASS interception, which the analysis code uses to
build Figure-2-style distributions of blocking types and to validate what
C-Saw's detector inferred against what the censor actually did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .actions import (
    PASS_DNS,
    PASS_HTTP,
    PASS_IP,
    PASS_TLS,
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
    TlsAction,
    TlsVerdict,
)
from .policy import CensorPolicy

__all__ = ["InterceptionEvent", "Middlebox"]


@dataclass(frozen=True)
class InterceptionEvent:
    """One enforcement action taken by the censor."""

    time: float
    stage: str  # "dns" | "ip" | "http" | "tls"
    identifier: str  # qname, dst ip, url, or sni
    action: str
    src_ip: str = ""  # which subscriber hit the filter


@dataclass(frozen=True)
class FlowObservation:
    """One flow the censor saw (collected only when surveillance is on)."""

    time: float
    src_ip: str
    dst_ip: str


@dataclass
class Middlebox:
    """Policy enforcement point on the path through one AS.

    With ``observe_traffic`` enabled the box additionally keeps a log of
    *every* connection (not just blocked ones) — the raw material for the
    fingerprinting analysis of §8.
    """

    policy: CensorPolicy
    asn: int
    log: List[InterceptionEvent] = field(default_factory=list)
    enabled: bool = True
    observe_traffic: bool = False
    flows: List[FlowObservation] = field(default_factory=list)

    def _record(
        self, time: float, stage: str, identifier: str, action: str, src_ip: str
    ) -> None:
        self.log.append(InterceptionEvent(time, stage, identifier, action, src_ip))

    def observe_flow(self, time: float, src_ip: str, dst_ip: str) -> None:
        if self.enabled and self.observe_traffic:
            self.flows.append(FlowObservation(time, src_ip, dst_ip))

    def dns_query(self, time: float, qname: str, src_ip: str = "") -> DnsVerdict:
        if not self.enabled:
            return PASS_DNS
        verdict = self.policy.compiled().on_dns_query(qname)
        if verdict.action is not DnsAction.PASS:
            self._record(time, "dns", qname, verdict.action.value, src_ip)
        return verdict

    def packet(self, time: float, dst_ip: str, src_ip: str = "") -> IpVerdict:
        if not self.enabled:
            return PASS_IP
        verdict = self.policy.compiled().on_packet(dst_ip)
        if verdict.action is not IpAction.PASS:
            self._record(time, "ip", dst_ip, verdict.action.value, src_ip)
        return verdict

    def http_request(
        self, time: float, host: str, path: str, src_ip: str = ""
    ) -> HttpVerdict:
        if not self.enabled:
            return PASS_HTTP
        verdict = self.policy.compiled().on_http_request(host, path)
        if verdict.action is not HttpAction.PASS:
            self._record(time, "http", f"{host}{path}", verdict.action.value, src_ip)
        return verdict

    def tls_client_hello(
        self, time: float, sni: Optional[str], dst_ip: str, src_ip: str = ""
    ) -> TlsVerdict:
        if not self.enabled:
            return PASS_TLS
        verdict = self.policy.compiled().on_tls_client_hello(sni, dst_ip)
        if verdict.action is not TlsAction.PASS:
            self._record(time, "tls", sni or dst_ip, verdict.action.value, src_ip)
        return verdict

    def blocked_event_count(self) -> int:
        return len(self.log)
