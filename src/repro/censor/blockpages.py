"""Synthetic block-page corpus.

The paper validated its phase-1 HTML-tag heuristic against block pages from
47 ISPs (citizenlab/ooni corpora), finding it catches ~80 % of block pages
with no false positives on normal pages (§4.3.1).  We regenerate that
setting: 47 ISP-styled block-page *families*, roughly 80 % of which carry
an overt signature (explicit blocking language, iframe-only splice pages,
legal-notice pages) and the rest deliberately bland (silent camouflage
pages that only phase 2's size comparison can catch).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..simnet.web import make_normal_html

__all__ = ["BlockpageSample", "build_blockpage_corpus", "build_normal_corpus",
           "DEFAULT_BLOCKPAGE_HTML"]


@dataclass(frozen=True)
class BlockpageSample:
    """One block page as served by one ISP's filtering appliance."""

    isp: str
    html: str
    overt: bool  # carries an obvious phase-1 signature


_OVERT_TEMPLATES = [
    # Plain legal-notice page.
    (
        "<!DOCTYPE html><html><head><title>Access Denied</title></head>"
        "<body><h1>Access to this site has been blocked</h1>"
        "<p>This website is not accessible as per the directives of the "
        "{authority}. If you believe this is in error, contact your service "
        "provider ({isp}).</p><hr/><p>URL blocked under regulation "
        "{regulation}.</p></body></html>"
    ),
    # Surf-safely style page.
    (
        "<!DOCTYPE html><html><head><title>{isp} - Surf Safely</title></head>"
        "<body><div class='warn'><h2>Surf Safely!</h2><p>The site you are "
        "trying to access contains content that is prohibited for viewership "
        "from within {country}.</p></div></body></html>"
    ),
    # Iframe splice (the ISP-B style in Table 1).
    (
        "<!DOCTYPE html><html><head><title></title></head><body>"
        '<iframe src="http://block.{isp_domain}/notice" frameborder="0" '
        'width="100%" height="100%"></iframe></body></html>'
    ),
    # Minimal text-only denial.
    (
        "<html><head><title>403 Forbidden</title></head><body>"
        "<p>The requested URL has been blocked by order of the "
        "{authority}.</p></body></html>"
    ),
    # Redirect-notice page with a meta refresh to a warning portal.
    (
        "<!DOCTYPE html><html><head><title>Notice</title>"
        '<meta http-equiv="refresh" content="5;url=http://warning.'
        '{isp_domain}/" /></head><body><p>This page is restricted. You '
        "will be redirected to an information page about prohibited "
        "content.</p></body></html>"
    ),
]

_CAMOUFLAGE_TEMPLATES = [
    # Fake server-error page: no blocking language at all.
    (
        "<html><head><title>500 Internal Server Error</title></head><body>"
        "<h1>Internal Server Error</h1><p>The server encountered an "
        "unexpected condition.</p></body></html>"
    ),
    # Fake connectivity-problem page.
    (
        "<html><head><title>Problem loading page</title></head><body>"
        "<p>The connection to the server was reset while the page was "
        "loading. Please try again later.</p></body></html>"
    ),
    # Blank-ish stub page.
    ("<html><head><title></title></head><body><p>&nbsp;</p></body></html>"),
]

_AUTHORITIES = [
    "Telecommunication Authority",
    "Ministry of Information",
    "National Regulatory Commission",
    "Supreme Court order",
]
_COUNTRIES = ["Pakistan", "Yemen", "Indonesia", "Vietnam", "Kyrgyzstan"]

DEFAULT_BLOCKPAGE_HTML = _OVERT_TEMPLATES[0].format(
    authority=_AUTHORITIES[0], isp="ISP-A", regulation="PTA-2016/441",
    country="Pakistan", isp_domain="isp-a.example",
)


def build_blockpage_corpus(
    rng: random.Random, n_isps: int = 47, overt_fraction: float = 0.8
) -> List[BlockpageSample]:
    """Block pages for ``n_isps`` ISPs, ~``overt_fraction`` overt."""
    samples = []
    n_overt = round(n_isps * overt_fraction)
    for index in range(n_isps):
        isp = f"isp-{index:02d}"
        overt = index < n_overt
        if overt:
            template = rng.choice(_OVERT_TEMPLATES)
        else:
            template = rng.choice(_CAMOUFLAGE_TEMPLATES)
        html = template.format(
            authority=rng.choice(_AUTHORITIES),
            isp=isp.upper(),
            isp_domain=f"{isp}.example",
            regulation=f"REG-{rng.randint(1000, 9999)}",
            country=rng.choice(_COUNTRIES),
        )
        samples.append(BlockpageSample(isp=isp, html=html, overt=overt))
    rng.shuffle(samples)
    return samples


def build_normal_corpus(rng: random.Random, n_pages: int = 200) -> List[str]:
    """Ordinary pages the classifier must never flag (false positives)."""
    pages = []
    for index in range(n_pages):
        host = f"site{index}.example.{rng.choice(['com', 'org', 'net'])}"
        path = rng.choice(["/", "/news", "/article/2017/11", "/videos", "/about"])
        html = make_normal_html(host, path, [])
        # Vary length: some normal pages are short, none carry block language.
        if rng.random() < 0.3:
            html = html.replace(
                "<article>", "<article><p>" + ("lorem ipsum " * rng.randint(10, 80)) + "</p>"
            )
        pages.append(html)
    return pages
