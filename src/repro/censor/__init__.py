"""Censorship substrate: blocking actions, per-ISP policies, middleboxes."""

from .actions import (
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
    TlsAction,
    TlsVerdict,
)
from .fingerprint import FingerprintAnalyzer, FingerprintScore
from .middlebox import FlowObservation, InterceptionEvent, Middlebox
from .policy import CensorPolicy, Matcher, Rule

__all__ = [
    "DnsAction",
    "DnsVerdict",
    "HttpAction",
    "HttpVerdict",
    "IpAction",
    "IpVerdict",
    "TlsAction",
    "TlsVerdict",
    "FingerprintAnalyzer",
    "FingerprintScore",
    "FlowObservation",
    "InterceptionEvent",
    "Middlebox",
    "CensorPolicy",
    "Matcher",
    "Rule",
]
