"""Statistics helpers: CDFs, percentiles, summaries.

Every figure in the paper is a CDF of PLTs or a categorical fraction;
these helpers compute them plainly (no numpy dependency needed for the
library itself — benches may use numpy freely).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["percentile", "median", "mean", "cdf_points", "Summary", "summarize"]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q out of range: {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def median(values: Sequence[float]) -> float:
    return percentile(values, 50)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """(x, F(x)) points of the empirical CDF, one per sample."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary used by the bench tables."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def row(self) -> Dict[str, float]:
        return {
            "n": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> Summary:
    data = list(values)
    if not data:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=len(data),
        mean=mean(data),
        p50=percentile(data, 50),
        p90=percentile(data, 90),
        p95=percentile(data, 95),
        p99=percentile(data, 99),
        minimum=min(data),
        maximum=max(data),
    )
