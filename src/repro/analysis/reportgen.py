"""Combined experiment report from the benchmark result files.

Each bench writes its paper-vs-measured table to
``benchmarks/results/<test name>.txt``.  :func:`generate_report` stitches
them into one markdown document (the raw material for EXPERIMENTS.md),
ordered by the paper's artefact numbering.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import List

__all__ = ["ResultFile", "collect_results", "generate_report"]

# Paper-order ranking: artefacts appear in this order in the report.
_ORDER = [
    "table1",
    "fig1a",
    "fig1b",
    "fig1c",
    "fig2",
    "table2",
    "table5",
    "blockpage",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig6a",
    "fig6b",
    "table6",
    "fig7a",
    "fig7b",
    "fig7c",
    "table7",
    "wild",
    "fingerprint",
    "ablation",
    "headline",
]


@dataclass(frozen=True)
class ResultFile:
    """One bench's rendered table."""

    name: str
    title: str
    body: str

    @property
    def rank(self) -> int:
        lowered = self.name.lower()
        for index, token in enumerate(_ORDER):
            if token in lowered:
                return index
        return len(_ORDER)


def collect_results(results_dir: pathlib.Path) -> List[ResultFile]:
    """Load and order every ``*.txt`` under ``results_dir``."""
    results = []
    for path in sorted(results_dir.glob("*.txt")):
        text = path.read_text().strip()
        if not text:
            continue
        lines = text.splitlines()
        results.append(
            ResultFile(
                name=path.stem,
                title=lines[0],
                body="\n".join(lines[1:]).strip(),
            )
        )
    results.sort(key=lambda r: (r.rank, r.name))
    return results


def generate_report(
    results_dir: pathlib.Path,
    heading: str = "C-Saw reproduction — experiment report",
) -> str:
    """Markdown document covering every collected result."""
    results = collect_results(results_dir)
    parts = [f"# {heading}", ""]
    if not results:
        parts.append(
            "_No results found. Run `pytest benchmarks/ --benchmark-only` "
            "first._"
        )
        return "\n".join(parts)
    parts.append(
        f"{len(results)} experiment artefacts collected from "
        f"`{results_dir}`."
    )
    parts.append("")
    for result in results:
        parts.append(f"## {result.title}")
        parts.append("")
        parts.append("```text")
        parts.append(result.body)
        parts.append("```")
        parts.append("")
    return "\n".join(parts)
