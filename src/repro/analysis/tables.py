"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["render_table", "format_seconds"]


def format_seconds(value: float) -> str:
    if value < 0.1:
        return f"{value * 1000:.1f}ms"
    return f"{value:.2f}s"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (the benches print these)."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
