"""Stage-level PLT decomposition — "where does page-load time go" (§6).

Consumes the per-stage duration breakdowns the trace bus aggregates:
``SessionTrace.stage_durations()`` for one request,
``MeasurementModule.stage_seconds`` / ``CSawClient.stats()["plt_breakdown"]``
for one client, ``PilotReport.plt_stage_seconds`` for a whole deployment.
All of them are ``stage → sim-seconds`` mappings over the Figure-4 stage
names plus ``transport:<name>`` attempt spans and the ``session``
envelope.

Durations sum *effort*, not wall-clock: parallel redundant fetches each
contribute their full span, so stage shares can exceed the user-visible
PLT — that is the point (the redundancy cost §8 worries about is
exactly this gap).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .tables import format_seconds, render_table

__all__ = [
    "decompose",
    "merge_breakdowns",
    "render_plt_decomposition",
]

#: Canonical display order: the Figure-4 pipeline, then phase 2, then
#: transports, then the session envelope.  Unknown stages sort after, by
#: name, so the table stays deterministic whatever the trace contains.
_STAGE_ORDER = (
    "local-dns",
    "global-dns",
    "tcp",
    "tls",
    "http",
    "blockpage-phase1",
    "blockpage-phase2",
)


def _stage_key(stage: str) -> Tuple[int, str]:
    if stage in _STAGE_ORDER:
        return (_STAGE_ORDER.index(stage), stage)
    if stage.startswith("transport:"):
        return (len(_STAGE_ORDER), stage)
    if stage == "session":
        return (len(_STAGE_ORDER) + 2, stage)
    return (len(_STAGE_ORDER) + 1, stage)


def merge_breakdowns(
    breakdowns: List[Dict[str, float]]
) -> Dict[str, float]:
    """Sum several stage→seconds maps (e.g. one per client)."""
    merged: Dict[str, float] = {}
    for breakdown in breakdowns:
        for stage, seconds in breakdown.items():
            merged[stage] = merged.get(stage, 0.0) + seconds
    return merged


def decompose(
    breakdown: Dict[str, float], include_session: bool = False
) -> List[Tuple[str, float, float]]:
    """(stage, seconds, share) rows in canonical stage order.

    Shares are fractions of the summed stage time.  The ``session``
    envelope double-counts every other stage, so it is excluded from
    both rows and total unless ``include_session`` is set.
    """
    items = [
        (stage, seconds)
        for stage, seconds in breakdown.items()
        if include_session or stage != "session"
    ]
    total = sum(seconds for _stage, seconds in items)
    return [
        (stage, seconds, seconds / total if total > 0 else 0.0)
        for stage, seconds in sorted(items, key=lambda kv: _stage_key(kv[0]))
    ]


def render_plt_decomposition(
    breakdown: Dict[str, float], title: str = "PLT decomposition by stage"
) -> str:
    """ASCII table over a stage→seconds map (client stats or pilot report)."""
    rows = [
        (stage, format_seconds(seconds), f"{share * 100:5.1f}%")
        for stage, seconds, share in decompose(breakdown)
    ]
    return render_table(("stage", "time", "share"), rows, title=title)
