"""Seed-robustness harness: do the headline claims survive re-rolls?

A reproduction whose conclusions hold only for one RNG seed has not
reproduced anything.  :func:`across_seeds` re-runs an experiment under a
set of seeds and aggregates a scalar metric; :func:`claim_holds` checks a
predicate per seed and reports the holding fraction.  The
``bench_seed_robustness`` bench uses these to re-verify the paper's
orderings (Figure 7, Table 6, Figure 5) across seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, TypeVar

__all__ = ["SeedSweep", "across_seeds", "claim_holds"]

T = TypeVar("T")


@dataclass(frozen=True)
class SeedSweep:
    """Aggregate of one scalar metric across seeds."""

    metric: str
    values: tuple
    seeds: tuple

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def spread(self) -> float:
        return max(self.values) - min(self.values)

    def __repr__(self) -> str:
        return (
            f"SeedSweep({self.metric}: mean={self.mean:.3f} "
            f"± {self.stdev:.3f} over {len(self.values)} seeds)"
        )


def across_seeds(
    metric: str,
    experiment: Callable[[int], float],
    seeds: Sequence[int],
) -> SeedSweep:
    """Run ``experiment(seed) -> scalar`` for every seed."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = tuple(float(experiment(seed)) for seed in seeds)
    return SeedSweep(metric=metric, values=values, seeds=tuple(seeds))


def claim_holds(
    experiment: Callable[[int], T],
    predicate: Callable[[T], bool],
    seeds: Sequence[int],
) -> Dict[str, object]:
    """Evaluate a boolean claim per seed.

    Returns {"fraction": float, "failures": [seeds]} so a bench can both
    assert and report which seeds (if any) broke the claim.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    failures: List[int] = []
    for seed in seeds:
        if not predicate(experiment(seed)):
            failures.append(seed)
    return {
        "fraction": 1.0 - len(failures) / len(seeds),
        "failures": failures,
    }
