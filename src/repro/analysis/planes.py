"""Per-plane-mix analysis: convergence curves and voting robustness.

The ROADMAP study behind the measurement-plane refactor: how does
adding a cheap coarse plane (Encore probes) or a scheduled probe-list
plane change blocked-list convergence and voting robustness?  This
module turns :class:`~repro.core.fleet.FleetMetrics` plane provenance
into convergence curves, a plane-mix table, and a robustness sweep over
fidelity weights / thresholds against a post-storm
:class:`~repro.core.globaldb.ServerDB`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.fleet import FleetMetrics
from ..core.globaldb import ServerDB
from .tables import render_table

__all__ = [
    "plane_convergence_curves",
    "plane_mix_rows",
    "render_plane_mix",
    "voting_robustness",
]


def plane_convergence_curves(
    metrics: FleetMetrics,
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-plane convergence curves from a fleet storm.

    For each plane: sorted ``(seconds after wave onset, fraction of the
    fleet converged on that plane's target)`` points, cumulated from the
    delta events :meth:`ClientCohort.finalize` recorded.  The fraction
    is over the whole fleet population (``n_clients``) — planes race on
    the same denominator, so curves are directly comparable.
    """
    n = metrics.n_clients
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for plane, events in sorted(metrics.curve_by_plane.items()):
        total = 0
        points: List[Tuple[float, float]] = []
        for at, delta in sorted(events):
            total += delta
            points.append((at, total / n if n else 0.0))
        curves[plane] = points
    return curves


def plane_mix_rows(metrics: FleetMetrics) -> List[Dict[str, object]]:
    """One row per plane: volume, provenance, and convergence scalars."""
    rows: List[Dict[str, object]] = []
    summary = metrics.plane_summary()
    curves = plane_convergence_curves(metrics)
    for plane, scalars in summary.items():
        points = curves.get(plane, [])
        rows.append(
            {
                "plane": plane,
                "reporters": int(scalars["reporters"]),
                "reports": int(scalars["reports"]),
                "converged_ases": int(scalars["converged_ases"]),
                "mean_convergence_sim_s": scalars["mean_convergence_sim_s"],
                "final_converged_fraction": (
                    points[-1][1] if points else 0.0
                ),
            }
        )
    return rows


def render_plane_mix(metrics: FleetMetrics) -> str:
    """The plane-mix table, rendered for reports."""
    rows = plane_mix_rows(metrics)
    return render_table(
        headers=[
            "plane",
            "reporters",
            "reports",
            "converged ASes",
            "mean conv (s)",
            "final frac",
        ],
        rows=[
            [
                str(row["plane"]),
                str(row["reporters"]),
                str(row["reports"]),
                str(row["converged_ases"]),
                f"{row['mean_convergence_sim_s']:.1f}",
                f"{row['final_converged_fraction']:.3f}",
            ]
            for row in rows
        ],
    )


def voting_robustness(
    server: ServerDB,
    asns: Sequence[int],
    weight_grids: Dict[str, Sequence[float]],
    min_reporters: Sequence[int] = (1, 2, 3),
    min_votes: float = 0.0,
    now: float = 0.0,
) -> List[Dict[str, object]]:
    """Sweep fidelity weights x reporter thresholds over a post-storm DB.

    For every combination of per-plane weight (one value per plane from
    its grid, dense cartesian product) and ``min_reporters`` threshold,
    count the entries each AS's blocked list retains under the weighted
    confidence criterion.  The single-plane degenerate sweep (all
    weights 1.0) reproduces today's unweighted counts.  Returns one row
    per combination: ``{"weights": {...}, "min_reporters": k,
    "listed": total, "listed_by_as": {...}}`` — the sybil-resistance
    trade-off surface for a plane mix.
    """
    planes = sorted(weight_grids)
    combos: List[Dict[str, float]] = [{}]
    for plane in planes:
        combos = [
            {**combo, plane: weight}
            for combo in combos
            for weight in weight_grids[plane]
        ]
    rows: List[Dict[str, object]] = []
    for weights in combos:
        for threshold in min_reporters:
            listed_by_as: Dict[int, int] = {}
            for asn in asns:
                entries = server.blocked_for_as(
                    asn,
                    now,
                    min_reporters=threshold,
                    min_votes=min_votes,
                    plane_weights=weights or None,
                )
                listed_by_as[asn] = len(entries)
            rows.append(
                {
                    "weights": dict(weights),
                    "min_reporters": threshold,
                    "listed": sum(listed_by_as.values()),
                    "listed_by_as": listed_by_as,
                }
            )
    return rows
