"""Analysis helpers: CDFs, percentiles, summaries, table rendering."""

from .planes import (
    plane_convergence_curves,
    plane_mix_rows,
    render_plane_mix,
    voting_robustness,
)
from .plt_decomposition import (
    decompose,
    merge_breakdowns,
    render_plt_decomposition,
)
from .robustness import SeedSweep, across_seeds, claim_holds
from .stats import Summary, cdf_points, mean, median, percentile, summarize
from .tables import format_seconds, render_table

__all__ = [
    "SeedSweep",
    "across_seeds",
    "claim_holds",
    "Summary",
    "cdf_points",
    "mean",
    "median",
    "percentile",
    "summarize",
    "format_seconds",
    "render_table",
    "decompose",
    "merge_breakdowns",
    "render_plt_decomposition",
    "plane_convergence_curves",
    "plane_mix_rows",
    "render_plane_mix",
    "voting_robustness",
]
