"""Analysis helpers: CDFs, percentiles, summaries, table rendering."""

from .robustness import SeedSweep, across_seeds, claim_holds
from .stats import Summary, cdf_points, mean, median, percentile, summarize
from .tables import format_seconds, render_table

__all__ = [
    "SeedSweep",
    "across_seeds",
    "claim_holds",
    "Summary",
    "cdf_points",
    "mean",
    "median",
    "percentile",
    "summarize",
    "format_seconds",
    "render_table",
]
