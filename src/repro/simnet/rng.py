"""Named, seeded random streams.

Every stochastic component (link jitter, censor sampling, user browsing,
Tor circuit choice, ...) draws from its own named stream derived from one
master seed.  This keeps experiments reproducible and lets a component be
re-run without perturbing the draws seen by the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """A family of independent ``random.Random`` streams under one seed.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("tor")
    >>> b = rngs.stream("tor")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per simulated user)."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
