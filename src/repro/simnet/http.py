"""Simulated HTTP request/response exchange over an established connection.

Cleartext HTTP requests expose the Host header and path to the on-path
censor, which may drop the GET (→ :class:`HttpTimeout`), inject a reset,
302 the client to a block-page server, or splice a block page in via an
iframe.  HTTPS requests skip the HTTP-stage censor entirely — by then the
censor has already had its chance at the DNS/IP/SNI stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from ..censor.actions import HttpAction
from .engine import Environment
from .flow import FlowContext
from .latency import transfer_time
from .tcp import ConnectionReset, TcpConnection
from .topology import Network
from .web import Web, WebPage

__all__ = ["HttpTimeout", "HttpConfig", "HttpResponse", "http_exchange"]


class HttpTimeout(Exception):
    """The GET was swallowed (censor drop or dead server)."""

    kind = "http-timeout"

    def __init__(self, url: str, detail: str = ""):
        super().__init__(f"http-timeout: {url} {detail}".rstrip())
        self.url = url
        self.detail = detail


@dataclass
class HttpConfig:
    get_timeout: float = 10.0  # stall before giving up on a response
    server_think_time: float = 0.015


@dataclass
class HttpResponse:
    """What came back (possibly censor-injected)."""

    status: int
    url: str
    html: str
    size_bytes: int
    server_ip: str
    page: Optional[WebPage] = None
    headers: Dict[str, str] = field(default_factory=dict)
    injected: bool = False  # ground truth; detectors must not read this

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308)

    @property
    def location(self) -> Optional[str]:
        return self.headers.get("location")


_404_HTML = (
    "<!DOCTYPE html><html><head><title>404 Not Found</title></head>"
    "<body><h1>Not Found</h1><p>The requested URL was not found on this "
    "server.</p></body></html>"
)

_GEO_BLOCK_HTML = (
    "<!DOCTYPE html><html><head><title>451 Unavailable For Legal Reasons"
    "</title></head><body><h1>451</h1><p>{host} is not available in your "
    "country. This content has been withheld in response to a legal "
    "demand.</p></body></html>"
)


def _iframe_blockpage_html(blockpage_host: str) -> str:
    return (
        "<!DOCTYPE html><html><head><title></title></head><body>"
        f'<iframe src="http://{blockpage_host}/" frameborder="0" '
        'width="100%" height="100%"></iframe></body></html>'
    )


def http_exchange(
    env: Environment,
    network: Network,
    web: Web,
    ctx: FlowContext,
    conn: TcpConnection,
    scheme: str,
    host_header: str,
    path: str,
    config: HttpConfig = HttpConfig(),
    first_byte=None,
) -> Generator:
    """Process: one GET over ``conn``; returns :class:`HttpResponse`.

    Raises :class:`HttpTimeout` or :class:`ConnectionReset` on censor
    interference.  ``first_byte`` (an Event, optional) is succeeded the
    moment response bytes start arriving — before the body transfer
    completes — which is what the redundancy-stagger logic keys on
    (footnote 10: skip the duplicate if the direct path answers quickly).
    """
    url = f"{scheme}://{host_header}{path}"
    middlebox = ctx.middlebox

    def mark_first_byte() -> None:
        if first_byte is not None and not first_byte.triggered:
            first_byte.succeed(env.now)

    if scheme == "http" and middlebox is not None:
        verdict = middlebox.http_request(env.now, host_header, path, src_ip=ctx.client.ip)
        if verdict.action is HttpAction.DROP:
            yield env.timeout(config.get_timeout)
            raise HttpTimeout(url, "(censor drop)")
        if verdict.action is HttpAction.RST:
            yield env.timeout(conn.rtt / 2.0)
            raise ConnectionReset(conn.dst_ip, "(censor RST after GET)")
        if verdict.action is HttpAction.BLOCKPAGE_REDIRECT:
            yield env.timeout(conn.rtt / 2.0)
            mark_first_byte()
            sites = web.sites_on_ip(verdict.blockpage_ip)
            location_host = sites[0].hostname if sites else verdict.blockpage_ip
            return HttpResponse(
                status=302,
                url=url,
                html="",
                size_bytes=0,
                server_ip=verdict.blockpage_ip,
                headers={"location": f"http://{location_host}/"},
                injected=True,
            )
        if verdict.action is HttpAction.BLOCKPAGE_IFRAME:
            yield env.timeout(conn.rtt)
            mark_first_byte()
            sites = web.sites_on_ip(verdict.blockpage_ip)
            frame_host = sites[0].hostname if sites else verdict.blockpage_ip
            html = _iframe_blockpage_html(frame_host)
            return HttpResponse(
                status=200,
                url=url,
                html=html,
                size_bytes=len(html),
                server_ip=conn.dst_ip,
                injected=True,
            )

    # Honest exchange with the connected server.
    site = web.site_serving(conn.dst, host_header)
    rtt = conn.sample_rtt(ctx.rng)
    if site is not None and ctx.client.location in site.geo_blocked:
        # Server-side filtering (§8): the provider itself withholds the
        # content from this region.  Not censor-injected — a relay whose
        # vantage lies outside the region gets the real page.
        yield env.timeout(rtt + config.server_think_time)
        mark_first_byte()
        html = _GEO_BLOCK_HTML.format(host=host_header)
        return HttpResponse(
            status=451,
            url=url,
            html=html,
            size_bytes=len(html),
            server_ip=conn.dst_ip,
        )
    page = site.page(path) if site is not None else None
    if page is None:
        yield env.timeout(rtt + config.server_think_time)
        mark_first_byte()
        return HttpResponse(
            status=404,
            url=url,
            html=_404_HTML,
            size_bytes=len(_404_HTML),
            server_ip=conn.dst_ip,
        )
    # Headers arrive one round trip (plus server think time) after the
    # GET; the body streams in afterwards.
    headers_delay = config.server_think_time + rtt
    yield env.timeout(headers_delay)
    mark_first_byte()
    body_duration = max(
        0.0,
        transfer_time(page.size_bytes, rtt, conn.bandwidth_bps)
        * ctx.load.factor()
        - rtt,
    )
    yield env.timeout(body_duration)
    return HttpResponse(
        status=200,
        url=url,
        html=page.html,
        size_bytes=page.size_bytes,
        server_ip=conn.dst_ip,
        page=page,
    )
