"""Deterministic discrete-event simulation kernel.

Every network interaction in the reproduction (DNS lookups, TCP handshakes,
page fetches, censor-induced timeouts) runs as a *process* on this kernel: a
Python generator that yields :class:`Event` objects and is resumed when they
trigger.  The design follows the well-known SimPy model, restricted to the
primitives the C-Saw reproduction needs:

- :class:`Environment` — the virtual clock and event queue.
- :class:`Timeout` — an event that triggers after a virtual delay.
- :class:`Process` — a running generator; itself an event that triggers when
  the generator returns (its value) or raises (its failure).
- :class:`AnyOf` / :class:`AllOf` — condition events used for redundant
  requests ("first response wins") and barrier joins.
- :meth:`Process.interrupt` — used to cancel the losing redundant request.

Virtual time is a float in seconds.  The kernel is fully deterministic: ties
in the event queue are broken by insertion order.

Fast path
---------
The kernel is the hot loop under every experiment (~10^6 events per paper
artefact), so it trades a little uniformity for throughput:

- all event classes use ``__slots__`` (including :class:`Environment`);
- waiters are stored in a compact ``_waiters`` slot: ``False`` (pending, no
  waiters yet), a single :class:`Process` or callable (the overwhelmingly
  common case — the one process that yielded the event), a list (2+
  waiters), or ``None`` (processed).  Storing the *process object* rather
  than a bound method avoids both an allocation per wait and a reference
  cycle per process (which kept the cyclic GC busy);
- queue entries are ``(time, eid, kind, obj)`` 4-tuples.  ``kind`` lets
  process kick-starts and interrupt deliveries ride the queue *without*
  allocating a carrier :class:`Event` each;
- the queue is split three ways.  Entries scheduled *at the current time*
  (process starts, completions, ``succeed``/``fail``, interrupts,
  zero-delay timeouts) go on a plain ``deque``: virtual time never moves
  backwards, so append order on that lane *is* ``(time, eid)`` order and
  the O(log n) heap is bypassed entirely.  Future entries (positive-delay
  timeouts) go through a one-entry ``_pending`` buffer so the common
  pop-after-push cycle costs a single ``heappushpop`` sift instead of a
  full push + pop pair; only bursts of future timeouts spill into the
  binary heap.  Pops merge the three lanes by plain tuple comparison;
- :class:`Timeout` keeps ``_ok``/``_defused`` as *class* attributes (a
  timeout always succeeds and is never defused), shaving two instance
  stores off the hottest allocation;
- :meth:`Environment.timeout` and :meth:`Environment.process` build their
  event objects and schedule them inline, skipping the ``__init__`` call
  chain;
- :meth:`Environment.run` has one fused dispatch+resume loop: the
  single-process-waiter case resumes the generator *inline* (no
  ``_resume`` call frame), and running until an event shares the same
  loop via a cheap per-iteration check.  :meth:`Environment.step` and
  :meth:`Process._resume` implement the same semantics as standalone
  methods for the cold paths (deadlines, multi-waiter lists) and must
  stay in sync with the fused loop;
- the cyclic garbage collector is paused for the duration of
  :meth:`Environment.run` (and restored after).  Kernel objects are
  acyclic by construction, so reference counting reclaims them promptly
  either way; pausing avoids generation-0 scans triggered by the heavy
  event/tuple allocation churn.
"""

from __future__ import annotations

import gc as _gc
from collections import deque
from heapq import heappop as _heappop, heappush as _heappush, \
    heappushpop as _heappushpop
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. running a finished environment)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The interrupting party supplies ``cause``, available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel for Event state.
_PENDING = object()

# Queue-entry kinds (see Environment._imm / _queue).
_KIND_EVENT = 0  # obj is a triggered Event whose waiters must run
_KIND_START = 1  # obj is a Process to kick-start
_KIND_INTERRUPT = 2  # obj is (process, Interrupt) to deliver


class Event:
    """An occurrence in virtual time that processes can wait on.

    An event starts *pending*, is *triggered* with either a value
    (:meth:`succeed`) or an exception (:meth:`fail`), and is *processed* once
    the environment has notified its waiters.
    """

    __slots__ = ("env", "_waiters", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        # False = pending without waiters; a Process or callable = one
        # waiter; a list = several waiters; None = processed.
        self._waiters: Any = False
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # True once a failure has been delivered to at least one waiter.
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._waiters is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def add_waiter(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        (The seed kernel exposed a ``callbacks`` list; the compact waiter
        slot replaced it.)  Must not be called on a processed event.
        """
        waiters = self._waiters
        if waiters is None:
            raise SimulationError("event already processed")
        if waiters is False:
            self._waiters = callback
        elif type(waiters) is list:
            waiters.append(callback)
        else:
            self._waiters = [waiters, callback]

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid = eid = env._eid + 1
        env._imm.append((env._now, eid, _KIND_EVENT, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid = eid = env._eid + 1
        env._imm.append((env._now, eid, _KIND_EVENT, self))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class _InitEvent(Event):
    """Singleton carrier for process kick-starts (never scheduled)."""

    __slots__ = ()

    def __init__(self):
        self.env = None
        self._waiters = None
        self._value = None
        self._ok = True
        self._defused = False


_INIT = _InitEvent()


class _Failure(Event):
    """Carrier delivering an exception into a process (interrupts)."""

    __slots__ = ()

    def __init__(self, exc: BaseException):
        self.env = None
        self._waiters = None
        self._value = exc
        self._ok = False
        self._defused = True


class Timeout(Event):
    """Event that triggers ``delay`` seconds of virtual time in the future."""

    __slots__ = ("delay",)

    # A timeout always succeeds and is never defused; keeping these as
    # class attributes (legal: the slot descriptors live on Event and are
    # shadowed here) removes two instance stores from the hottest
    # allocation site.  They must never be assigned on an instance.
    _ok = True
    _defused = False

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        self.env = env
        self._waiters = False
        self._value = value
        self.delay = delay
        env._eid = eid = env._eid + 1
        if delay == 0:
            env._imm.append((env._now, eid, _KIND_EVENT, self))
        else:
            entry = (env._now + delay, eid, _KIND_EVENT, self)
            previous = env._pending
            if previous is None:
                env._pending = entry
            else:
                _heappush(env._queue, previous)
                env._pending = entry

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger automatically")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger automatically")


class Process(Event):
    """A running generator.  Triggers when the generator finishes.

    The generator yields events; each resumption receives the event's value
    (or has the event's exception thrown in).  Returning from the generator
    succeeds the process with the return value; an uncaught exception fails
    it.
    """

    __slots__ = ("_generator", "_send", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        try:
            send = generator.send
        except AttributeError:
            raise TypeError(
                f"process() requires a generator, got {generator!r}"
            ) from None
        self.env = env
        self._waiters = False
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._generator = generator
        self._send = send
        self._target: Optional[Event] = None
        # Kick-start on the next loop iteration (no carrier event needed).
        env._eid = eid = env._eid + 1
        env._imm.append((env._now, eid, _KIND_START, self))

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is a no-op, and a process that
        finishes between the call and the delivery (same timestep) ignores
        the delivery; either way nothing persists in the event queue.
        """
        if self._value is not _PENDING:
            return  # Interrupting a finished process is a no-op.
        env = self.env
        env._eid = eid = env._eid + 1
        env._imm.append(
            (env._now, eid, _KIND_INTERRUPT, (self, Interrupt(cause)))
        )

    # -- internal ---------------------------------------------------------

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if self._value is not _PENDING:
            return  # Process finished before the interrupt was delivered.
        target = self._target
        if target is not None:
            # Detach from the event we were waiting on so its eventual
            # trigger does not double-resume us.
            waiters = target._waiters
            if waiters is self:
                target._waiters = False
            elif type(waiters) is list:
                try:
                    waiters.remove(self)
                except ValueError:
                    pass
        self._resume(_Failure(exc))

    def _resume(self, event: Event) -> None:
        # Cold-path twin of the fused resume in Environment.run — keep the
        # semantics in sync.
        env = self.env
        env._active_process = self
        try:
            while True:
                if event._ok:
                    next_event = self._send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
                try:
                    waiters = next_event._waiters
                    other_env = next_event.env
                except AttributeError:
                    raise SimulationError(
                        f"process yielded a non-event: {next_event!r}"
                    ) from None
                if other_env is not env:
                    raise SimulationError("yielded event from another environment")
                self._target = next_event
                if waiters is False:
                    next_event._waiters = self
                    return
                if waiters is not None:
                    if type(waiters) is list:
                        waiters.append(self)
                    else:
                        next_event._waiters = [waiters, self]
                    return
                # Event already processed: loop again immediately.
                event = next_event
        except StopIteration as stop:
            self._target = None
            if self._value is _PENDING:
                self._ok = True
                self._value = stop.value
                env._eid = eid = env._eid + 1
                env._imm.append((env._now, eid, _KIND_EVENT, self))
        except BaseException as exc:
            self._target = None
            if self._value is _PENDING:
                self._ok = False
                self._value = exc
                env._eid = eid = env._eid + 1
                env._imm.append((env._now, eid, _KIND_EVENT, self))


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_matched", "_need")

    def __init__(self, env: "Environment", events: Iterable[Event], need: int):
        self.env = env
        self._waiters = False
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.events: List[Event] = list(events)
        self._matched = 0
        self._need = need if need >= 0 else len(self.events)
        if not self.events:
            self.succeed({})
            return
        check = self._check
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition spans multiple environments")
            waiters = ev._waiters
            if waiters is None:  # already processed
                check(ev)
            elif waiters is False:
                ev._waiters = check
            elif type(waiters) is list:
                waiters.append(check)
            else:
                ev._waiters = [waiters, check]

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._matched += 1
        if self._matched >= self._need:
            self.succeed(
                {
                    ev: ev._value
                    for ev in self.events
                    if ev._waiters is None and ev._ok
                }
            )

    def __len__(self) -> int:
        return len(self.events)


class AnyOf(_Condition):
    """Triggers when any child event triggers (fails if one fails first)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need=1)


class AllOf(_Condition):
    """Triggers when all child events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need=-1)  # -1: all of them


class Environment:
    """Virtual clock plus event queue.

    Use :meth:`process` to launch generators, :meth:`run` to execute until
    the queue drains, an event triggers, or a deadline passes.
    """

    __slots__ = ("_now", "_imm", "_pending", "_queue", "_eid",
                 "_active_process")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        # Three scheduling lanes, all holding (time, eid, kind, obj) entries:
        # _imm for entries at the current time (append order == heap order
        # because time is monotonic), _pending as a one-entry buffer for the
        # most recent future timeout, _queue as the spill heap for bursts.
        self._imm: deque = deque()
        self._pending: Optional[tuple] = None
        self._queue: List[Any] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (only meaningful from inside a
        process generator; between resumes it retains the last process)."""
        return self._active_process

    # -- event constructors -------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Fast path: build the Timeout and schedule it inline, skipping the
        # Event.__init__ call chain (hottest allocation site).
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        t = _new_timeout(Timeout)
        t.env = self
        t._waiters = False
        t._value = value
        t.delay = delay
        self._eid = eid = self._eid + 1
        if delay == 0:
            self._imm.append((self._now, eid, _KIND_EVENT, t))
        else:
            entry = (self._now + delay, eid, _KIND_EVENT, t)
            previous = self._pending
            if previous is None:
                self._pending = entry
            else:
                _heappush(self._queue, previous)
                self._pending = entry
        return t

    def process(self, generator: Generator) -> Process:
        # Fast path mirroring timeout(): inline Process construction.
        try:
            send = generator.send
        except AttributeError:
            raise TypeError(
                f"process() requires a generator, got {generator!r}"
            ) from None
        p = _new_process(Process)
        p.env = self
        p._waiters = False
        p._value = _PENDING
        p._ok = None
        p._defused = False
        p._generator = generator
        p._send = send
        p._target = None
        self._eid = eid = self._eid + 1
        self._imm.append((self._now, eid, _KIND_START, p))
        return p

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid = eid = self._eid + 1
        if delay == 0:
            self._imm.append((self._now, eid, _KIND_EVENT, event))
        else:
            entry = (self._now + delay, eid, _KIND_EVENT, event)
            previous = self._pending
            if previous is None:
                self._pending = entry
            else:
                _heappush(self._queue, previous)
                self._pending = entry

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the queue is empty."""
        best = float("inf")
        imm = self._imm
        if imm:
            best = imm[0][0]
        pending = self._pending
        if pending is not None and pending[0] < best:
            best = pending[0]
        queue = self._queue
        if queue and queue[0][0] < best:
            best = queue[0][0]
        return best

    def _pop(self) -> Optional[tuple]:
        """Pop the globally next entry across the three lanes, or None."""
        imm = self._imm
        queue = self._queue
        if imm:
            entry = imm[0]
            pending = self._pending
            if pending is not None and pending < entry:
                if queue and queue[0] < pending:
                    return _heappop(queue)
                self._pending = None
                return pending
            if queue and queue[0] < entry:
                return _heappop(queue)
            return imm.popleft()
        pending = self._pending
        if pending is not None:
            self._pending = None
            if queue:
                return _heappushpop(queue, pending)
            return pending
        if queue:
            return _heappop(queue)
        return None

    def _dispatch(self, obj: Event) -> None:
        """Notify a triggered event's waiters (cold-path dispatch)."""
        waiters = obj._waiters
        obj._waiters = None
        if waiters is not False:
            if type(waiters) is Process:
                waiters._resume(obj)
            elif type(waiters) is list:
                for waiter in waiters:
                    if type(waiter) is Process:
                        waiter._resume(obj)
                    else:
                        waiter(obj)
            else:
                waiters(obj)
        if obj._ok is False and not obj._defused:
            raise obj._value

    def step(self) -> None:
        """Process the single next queue entry.

        Cold-path twin of the fused loop in :meth:`run` — keep in sync.
        """
        entry = self._pop()
        if entry is None:
            raise SimulationError("no scheduled events")
        when, _eid, kind, obj = entry
        self._now = when
        if kind:
            if kind == _KIND_START:
                obj._resume(_INIT)
            else:  # _KIND_INTERRUPT
                process, exc = obj
                process._deliver_interrupt(exc)
            return
        self._dispatch(obj)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain the queue), a number (run until that
        virtual time), or an :class:`Event` (run until it triggers, returning
        its value or raising its failure).
        """
        if until is not None and not isinstance(until, Event):
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError("cannot run backwards in time")
            gc_was_enabled = _gc.isenabled()
            if gc_was_enabled:
                _gc.disable()
            try:
                while self.peek() <= deadline:
                    self.step()
            finally:
                if gc_was_enabled:
                    _gc.enable()
            self._now = deadline
            return None
        if until is not None and until._waiters is None:
            # Already processed before we started.
            if until._ok:
                return until._value
            until._defused = True
            raise until._value
        imm = self._imm
        queue = self._queue
        popleft = imm.popleft
        imm_append = imm.append
        # Pause the cyclic collector for the duration of the loop: kernel
        # allocations are acyclic (reclaimed by refcount), and the churn
        # otherwise triggers constant generation-0 scans.
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            # The fused dispatch+resume loop.  step()/_dispatch()/_resume()
            # implement identical semantics for the cold paths.
            while True:
                # -- pop: three-lane merge (see _pop) -----------------------
                if imm:
                    entry = imm[0]
                    pending = self._pending
                    if pending is not None and pending < entry:
                        if queue and queue[0] < pending:
                            entry = _heappop(queue)
                        else:
                            self._pending = None
                            entry = pending
                    elif queue and queue[0] < entry:
                        entry = _heappop(queue)
                    else:
                        entry = popleft()
                else:
                    pending = self._pending
                    if pending is not None:
                        self._pending = None
                        entry = _heappushpop(queue, pending) if queue \
                            else pending
                    elif queue:
                        entry = _heappop(queue)
                    elif until is None:
                        return None
                    else:
                        raise SimulationError(
                            "event queue drained before the awaited event"
                            " triggered"
                        )
                when, _eid, kind, obj = entry
                self._now = when
                # -- dispatch ----------------------------------------------
                if kind:
                    if kind == 2:  # _KIND_INTERRUPT
                        process, exc = obj
                        process._deliver_interrupt(exc)
                        if until is not None and until._waiters is None:
                            break
                        continue
                    # _KIND_START: treat as resuming the process with the
                    # _INIT carrier through the fused resume below.
                    waiters = obj
                    obj = _INIT
                else:
                    waiters = obj._waiters
                    obj._waiters = None
                    if waiters is False:
                        if obj._ok is False and not obj._defused:
                            raise obj._value
                        if until is not None and until._waiters is None:
                            break
                        continue
                # -- resume (fused) ----------------------------------------
                if type(waiters) is Process:
                    p = waiters
                    self._active_process = p
                    try:
                        if obj._ok:
                            next_event = p._send(obj._value)
                        else:
                            obj._defused = True
                            next_event = p._generator.throw(obj._value)
                    except StopIteration as stop:
                        p._target = None
                        if p._value is _PENDING:
                            p._ok = True
                            p._value = stop.value
                            self._eid = eid = self._eid + 1
                            imm_append((when, eid, 0, p))
                    except BaseException as exc:
                        p._target = None
                        if p._value is _PENDING:
                            p._ok = False
                            p._value = exc
                            self._eid = eid = self._eid + 1
                            imm_append((when, eid, 0, p))
                    else:
                        try:
                            w2 = next_event._waiters
                            nenv = next_event.env
                        except AttributeError:
                            p._target = None
                            p._ok = False
                            p._value = SimulationError(
                                f"process yielded a non-event: {next_event!r}"
                            )
                            self._eid = eid = self._eid + 1
                            imm_append((when, eid, 0, p))
                        else:
                            if nenv is not self:
                                p._target = None
                                p._ok = False
                                p._value = SimulationError(
                                    "yielded event from another environment"
                                )
                                self._eid = eid = self._eid + 1
                                imm_append((when, eid, 0, p))
                            elif w2 is False:
                                next_event._waiters = p
                                p._target = next_event
                            elif w2 is None:
                                # Already-processed event: re-resume (rare).
                                p._resume(next_event)
                            elif type(w2) is list:
                                w2.append(p)
                                p._target = next_event
                            else:
                                next_event._waiters = [w2, p]
                                p._target = next_event
                elif type(waiters) is list:
                    for waiter in waiters:
                        if type(waiter) is Process:
                            waiter._resume(obj)
                        else:
                            waiter(obj)
                else:
                    waiters(obj)
                if obj._ok is False and not obj._defused:
                    raise obj._value
                if until is not None and until._waiters is None:
                    break
        finally:
            if gc_was_enabled:
                _gc.enable()
        if until._ok:
            return until._value
        until._defused = True
        raise until._value


_new_timeout = Timeout.__new__
_new_process = Process.__new__
