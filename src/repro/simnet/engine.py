"""Deterministic discrete-event simulation kernel.

Every network interaction in the reproduction (DNS lookups, TCP handshakes,
page fetches, censor-induced timeouts) runs as a *process* on this kernel: a
Python generator that yields :class:`Event` objects and is resumed when they
trigger.  The design follows the well-known SimPy model, restricted to the
primitives the C-Saw reproduction needs:

- :class:`Environment` — the virtual clock and event queue.
- :class:`Timeout` — an event that triggers after a virtual delay.
- :class:`Process` — a running generator; itself an event that triggers when
  the generator returns (its value) or raises (its failure).
- :class:`AnyOf` / :class:`AllOf` — condition events used for redundant
  requests ("first response wins") and barrier joins.
- :meth:`Process.interrupt` — used to cancel the losing redundant request.

Virtual time is a float in seconds.  The kernel is fully deterministic: ties
in the event queue are broken by insertion order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. running a finished environment)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The interrupting party supplies ``cause``, available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinels for Event state.
_PENDING = object()


class Event:
    """An occurrence in virtual time that processes can wait on.

    An event starts *pending*, is *triggered* with either a value
    (:meth:`succeed`) or an exception (:meth:`fail`), and is *processed* once
    the environment has run its callbacks.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # True once a failure has been delivered to at least one waiter.
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """Event that triggers ``delay`` seconds of virtual time in the future."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger automatically")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger automatically")


class Process(Event):
    """A running generator.  Triggers when the generator finishes.

    The generator yields events; each resumption receives the event's value
    (or has the event's exception thrown in).  Returning from the generator
    succeeds the process with the return value; an uncaught exception fails
    it.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Kick-start on the next loop iteration.
        init = Event(env)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            return  # Interrupting a finished process is a no-op.
        interruption = Event(self.env)
        interruption.callbacks.append(self._resume_interrupt)
        interruption._ok = False
        interruption._value = Interrupt(cause)
        interruption._defused = True
        self.env._schedule(interruption)

    # -- internal ---------------------------------------------------------

    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # Process finished before the interrupt was delivered.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            while True:
                if event is None:
                    next_event = self._generator.send(None)
                elif event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
                if not isinstance(next_event, Event):
                    raise SimulationError(
                        f"process yielded a non-event: {next_event!r}"
                    )
                if next_event.env is not self.env:
                    raise SimulationError("yielded event from another environment")
                self._target = next_event
                if next_event.callbacks is not None:
                    next_event.callbacks.append(self._resume)
                    break
                # Event already processed: loop again immediately.
                event = next_event
        except StopIteration as stop:
            self._target = None
            if not self.triggered:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
        except BaseException as exc:
            self._target = None
            if not self.triggered:
                self._ok = False
                self._value = exc
                self.env._schedule(self)
        finally:
            self.env._active_process = None


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._matched = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition spans multiple environments")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _satisfied(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._matched += 1
        if self._satisfied():
            self.succeed(
                {
                    ev: ev._value
                    for ev in self.events
                    if ev.callbacks is None and ev._ok
                }
            )

    def __len__(self) -> int:
        return len(self.events)


class AnyOf(_Condition):
    """Triggers when any child event triggers (fails if one fails first)."""

    def _satisfied(self) -> bool:
        return self._matched >= 1


class AllOf(_Condition):
    """Triggers when all child events have triggered."""

    def _satisfied(self) -> bool:
        return self._matched == len(self.events)


class Environment:
    """Virtual clock plus event queue.

    Use :meth:`process` to launch generators, :meth:`run` to execute until
    the queue drains, an event triggers, or a deadline passes.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Any] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event constructors -------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _eid, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks or []:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain the queue), a number (run until that
        virtual time), or an :class:`Event` (run until it triggers, returning
        its value or raising its failure).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            while not until.processed:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event triggered"
                    )
                self.step()
            if until._ok:
                return until._value
            until._defused = True
            raise until._value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError("cannot run backwards in time")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None
