"""Tiny IPv4 utilities for the simulated Internet.

Real address semantics are irrelevant to the reproduction; what matters is
that hosts have distinct, stable addresses censors can blacklist and that
"private" block-page redirect targets are recognisable.
"""

from __future__ import annotations

__all__ = ["IpAllocator", "int_to_ip", "ip_to_int", "is_private"]


def int_to_ip(value: int) -> str:
    """Render a 32-bit integer as dotted-quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit value: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_to_int(address: str) -> int:
    """Parse dotted-quad into a 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


_PRIVATE_PREFIXES = (
    (ip_to_int("10.0.0.0"), 8),
    (ip_to_int("172.16.0.0"), 12),
    (ip_to_int("192.168.0.0"), 16),
    (ip_to_int("127.0.0.0"), 8),
)


def is_private(address: str) -> bool:
    """True for RFC1918/loopback space (censors redirect DNS here)."""
    value = ip_to_int(address)
    for prefix, bits in _PRIVATE_PREFIXES:
        if value >> (32 - bits) == prefix >> (32 - bits):
            return True
    return False


class IpAllocator:
    """Sequential allocator inside a /8, one stream per purpose."""

    def __init__(self, first_octet: int = 100):
        if not 1 <= first_octet <= 223:
            raise ValueError(f"unusable first octet: {first_octet!r}")
        self._next = (first_octet << 24) + 1

    def allocate(self) -> str:
        address = int_to_ip(self._next)
        self._next += 1
        if self._next & 0xFF in (0, 255):  # skip network/broadcast-ish
            self._next += 1
        return address
