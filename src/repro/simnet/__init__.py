"""Simulated-network substrate: event kernel, topology, and protocol stack."""

from .engine import AllOf, AnyOf, Environment, Event, Interrupt, Process, Timeout
from .flow import ClientLoadTracker, FlowContext
from .latency import LatencyModel, transfer_time
from .rng import RngRegistry
from .topology import AccessNetwork, AutonomousSystem, Host, Network
from .web import EmbeddedRef, Site, Web, WebPage
from .world import World

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "ClientLoadTracker",
    "FlowContext",
    "LatencyModel",
    "transfer_time",
    "RngRegistry",
    "AccessNetwork",
    "AutonomousSystem",
    "Host",
    "Network",
    "EmbeddedRef",
    "Site",
    "Web",
    "WebPage",
    "World",
]
