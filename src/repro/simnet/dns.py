"""Simulated DNS: recursive resolvers, public resolvers, and tampering.

The timing constants are calibrated against Table 5 of the paper:

- ``REFUSED`` answers come back in one resolver round trip (~25 ms);
- ``SERVFAIL`` answers take ``servfail_delay`` at the resolver (its own
  recursion timing out) and the stub retries once, landing near the
  paper's 10.6 s;
- silently dropped queries ("No DNS" in Figure 2) burn the stub's full
  retry schedule before :class:`DnsTimeout` is raised.

Censorship applies per the verdict's *scope*: ``resolver`` rules only bite
when the client queries the censoring ISP's own resolver (so a public DNS
server is a valid local-fix), ``path`` rules bite on any resolver queried
through that ISP (on-path injection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..censor.actions import DnsAction
from .engine import Environment
from .flow import FlowContext
from .topology import Host, Network

__all__ = [
    "DnsError",
    "DnsTimeout",
    "NxDomain",
    "ServFail",
    "Refused",
    "DnsConfig",
    "Resolver",
    "resolve",
]


class DnsError(Exception):
    """Base class for resolution failures."""

    kind = "dns-error"

    def __init__(self, qname: str, detail: str = ""):
        super().__init__(f"{self.kind}: {qname} {detail}".rstrip())
        self.qname = qname
        self.detail = detail


class DnsTimeout(DnsError):
    kind = "dns-timeout"


class NxDomain(DnsError):
    kind = "nxdomain"


class ServFail(DnsError):
    kind = "servfail"


class Refused(DnsError):
    kind = "refused"


@dataclass
class DnsConfig:
    """Stub-resolver behaviour knobs (defaults match Table 5 timings)."""

    query_timeout: float = 5.0  # per attempt, for silently dropped queries
    timeout_attempts: int = 2
    servfail_delay: float = 5.25  # resolver-side recursion stall
    servfail_attempts: int = 2
    cache_hit_probability: float = 0.7
    recursion_delay: float = 0.06  # cache-miss upstream walk
    hold_on_margin: float = 0.15  # Hold-On's wait past the expected RTT


@dataclass
class Resolver:
    """A recursive resolver endpoint.

    ``kind`` is ``"isp"`` (the censoring ISP's own, subject to
    resolver-scope tampering) or ``"public"`` (e.g. 8.8.8.8, only subject
    to on-path tampering).
    """

    host: Host
    kind: str = "isp"
    asn: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("isp", "public"):
            raise ValueError(f"unknown resolver kind: {self.kind!r}")


def _verdict_applies(resolver: Resolver, ctx: FlowContext, verdict) -> bool:
    if verdict.scope == "path":
        return True
    return resolver.kind == "isp" and resolver.asn == ctx.isp.asn


def resolve(
    env: Environment,
    network: Network,
    ctx: FlowContext,
    qname: str,
    resolver: Resolver,
    config: DnsConfig = DnsConfig(),
    hold_on: bool = False,
) -> Generator:
    """Process: resolve ``qname`` via ``resolver``; yields, returns IPs.

    Raises :class:`DnsTimeout`, :class:`NxDomain`, :class:`ServFail`, or
    :class:`Refused` on failure.

    ``hold_on`` enables the Hold-On defence against on-path injection
    *races* (a forged reply racing the genuine one): the stub waits out
    the expected-resolution window and keeps the later, legitimate reply.
    It costs a little extra latency on every resolution, which is why it
    is a targeted local fix rather than the default.
    """
    latency = network.latency_between(ctx.client, resolver.host)
    middlebox = ctx.middlebox

    verdict = None
    if middlebox is not None:
        candidate = middlebox.dns_query(env.now, qname, src_ip=ctx.client.ip)
        if candidate.action is not DnsAction.PASS and _verdict_applies(
            resolver, ctx, candidate
        ):
            verdict = candidate

    rtt = latency.sample_rtt(ctx.rng) + ctx.access.access_rtt

    def honest_delay() -> float:
        delay = rtt
        if ctx.rng.random() > config.cache_hit_probability:
            delay += config.recursion_delay * ctx.rng.uniform(0.5, 2.0)
        return delay

    if verdict is None:
        # Honest resolution.
        wait = honest_delay()
        if hold_on:
            # Hold-On waits a safety margin past the expected RTT even
            # when nothing races — the defence's standing cost.
            wait += config.hold_on_margin
        yield env.timeout(wait)
        ips = network.authoritative_ips(qname)
        if not ips:
            raise NxDomain(qname)
        return ips

    if verdict.action is DnsAction.REDIRECT:
        if verdict.injection_race:
            # Forged reply arrives *early* (the injector sits on-path,
            # closer than the resolver); the genuine reply follows.
            forged_at = rtt * ctx.rng.uniform(0.4, 0.7)
            genuine_at = honest_delay()
            if not hold_on:
                yield env.timeout(forged_at)
                return [verdict.redirect_ip]
            yield env.timeout(max(genuine_at, forged_at) + config.hold_on_margin)
            ips = network.authoritative_ips(qname)
            if not ips:
                raise NxDomain(qname)
            return ips
        yield env.timeout(rtt)
        return [verdict.redirect_ip]

    if verdict.action is DnsAction.NXDOMAIN:
        yield env.timeout(rtt)
        raise NxDomain(qname, "(injected)")

    if verdict.action is DnsAction.REFUSED:
        yield env.timeout(rtt)
        raise Refused(qname)

    if verdict.action is DnsAction.SERVFAIL:
        for _attempt in range(config.servfail_attempts):
            yield env.timeout(rtt + config.servfail_delay)
        raise ServFail(qname)

    if verdict.action is DnsAction.TIMEOUT:
        for _attempt in range(config.timeout_attempts):
            yield env.timeout(config.query_timeout)
        raise DnsTimeout(qname)

    raise AssertionError(f"unhandled DNS verdict: {verdict!r}")
