"""Per-flow context and the client load model.

A :class:`FlowContext` carries everything a protocol step needs to know
about *who* is fetching: the client host, its access network, the ISP the
flow was mapped to (relevant for multihoming), the RNG stream, and the
client's load tracker.

The load tracker reproduces the paper's observation (§4.3.1, Figure 5b/c,
after Dean & Barroso and Vulimiri et al.) that redundant requests help at
low load but hurt at high load: every active fetch shares the client's
access bandwidth and processing capacity, so each concurrent request slows
all the others down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Optional

from .topology import AccessNetwork, AutonomousSystem, Host

__all__ = ["ClientLoadTracker", "FlowContext"]


class ClientLoadTracker:
    """Tracks concurrently active requests on one client machine.

    ``factor()`` scales transfer/processing time: 1.0 for a single active
    request, growing by ``penalty`` per extra concurrent request.  The
    default penalty is mild — the effect compounds across a page's many
    embedded objects, which is what makes duplicate requests for large
    pages expensive (Figure 5c) while barely showing for small ones
    (Figure 5b).
    """

    def __init__(
        self,
        penalty: float = 0.18,
        capacity: int = 6,
        over_penalty: float = 0.15,
        max_factor: float = 2.5,
    ):
        self.penalty = penalty
        self.capacity = capacity
        self.over_penalty = over_penalty
        self.max_factor = max_factor
        self.active = 0
        self.peak = 0

    def enter(self) -> None:
        self.active += 1
        self.peak = max(self.peak, self.active)

    def exit(self) -> None:
        if self.active <= 0:
            raise RuntimeError("load tracker underflow")
        self.active -= 1

    def factor(self) -> float:
        """Multiplicative slowdown experienced by each active request.

        Grows with concurrency (shared access link + CPU), steeper past
        ``capacity`` (queueing), and saturates at ``max_factor`` — a real
        client is bounded by its hardware, and an uncapped penalty makes
        open-loop workloads cascade unrealistically.
        """
        excess = max(0, self.active - 1)
        # Convex in the concurrency: a single duplicate costs little, the
        # third and fourth compound (the paper's Figure 6a: two copies are
        # the sweet spot, three inflate the tail).
        slowdown = 1.0 + self.penalty * excess**1.7
        over = max(0, self.active - self.capacity)
        return min(self.max_factor, slowdown * (1.0 + self.over_penalty * over))


@dataclass
class FlowContext:
    """Immutable-ish bundle describing one client-side flow."""

    client: Host
    access: AccessNetwork
    isp: AutonomousSystem
    rng: Random
    load: ClientLoadTracker = field(default_factory=ClientLoadTracker)

    @classmethod
    def for_new_flow(
        cls,
        client: Host,
        access: AccessNetwork,
        rng: Random,
        load: Optional[ClientLoadTracker] = None,
    ) -> "FlowContext":
        """Map a fresh flow onto one of the access network's providers."""
        return cls(
            client=client,
            access=access,
            isp=access.pick_isp(rng),
            rng=rng,
            load=load or ClientLoadTracker(),
        )

    def with_isp(self, isp: AutonomousSystem) -> "FlowContext":
        """Same client/flow state, pinned to a specific provider."""
        return FlowContext(
            client=self.client,
            access=self.access,
            isp=isp,
            rng=self.rng,
            load=self.load,
        )

    @property
    def middlebox(self):
        """The censor middlebox on this flow's path (or None)."""
        return self.isp.censor
