"""Page-load model: main document plus embedded objects, bounded parallelism.

PLT (page load time) is the metric the whole paper optimizes.  Here a page
load is: fetch the main document, then fetch every embedded object with at
most ``max_parallel`` in flight (browsers' classic 6-connections-per-host
rule), PLT being the completion time of the last object.

The *fetcher* is a callable ``url -> process returning FetchResult`` — a
plain transport, or C-Saw's proxy logic deciding per-URL how to fetch (the
paper routes each embedded CDN request through its own measurement, which
is how the pilot study caught CDN blocking).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator, List

from .engine import Environment

__all__ = ["PageLoadResult", "load_page", "Semaphore"]


class Semaphore:
    """Counting semaphore for the event kernel (FIFO waiters)."""

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._active = 0
        self._waiters = deque()

    def acquire(self):
        event = self.env.event()
        if self._active < self.capacity:
            self._active += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            if self._active <= 0:
                raise RuntimeError("semaphore released too many times")
            self._active -= 1


@dataclass
class PageLoadResult:
    """Outcome of loading a full page (document + objects)."""

    url: str
    started: float
    finished: float
    main: "object"  # FetchResult
    objects: List["object"] = field(default_factory=list)

    @property
    def plt(self) -> float:
        return self.finished - self.started

    @property
    def ok(self) -> bool:
        return self.main is not None and self.main.ok

    @property
    def object_failures(self) -> List["object"]:
        return [obj for obj in self.objects if obj.failed]

    def __repr__(self) -> str:
        return (
            f"PageLoadResult({self.url!r}, plt={self.plt:.3f}s, ok={self.ok}, "
            f"objects={len(self.objects)})"
        )


def load_page(
    env: Environment,
    fetcher: Callable[[str], Generator],
    url: str,
    max_parallel: int = 6,
) -> Generator:
    """Process: load ``url`` and its embedded objects; returns PageLoadResult.

    Embedded objects come from the main response's page model.  Object
    failures do not fail the load (browsers render around broken images);
    they are recorded in the result.
    """
    started = env.now
    main = yield env.process(fetcher(url))
    page = main.response.page if (main.response is not None) else None
    if main.failed or page is None or not page.embedded:
        return PageLoadResult(
            url=url, started=started, finished=env.now, main=main
        )

    semaphore = Semaphore(env, max_parallel)

    def fetch_object(ref):
        yield semaphore.acquire()
        try:
            result = yield env.process(fetcher(ref.url))
        finally:
            semaphore.release()
        return result

    workers = [env.process(fetch_object(ref)) for ref in page.embedded]
    gathered = yield env.all_of(workers)
    objects = [gathered[worker] for worker in workers]
    return PageLoadResult(
        url=url,
        started=started,
        finished=env.now,
        main=main,
        objects=objects,
    )
