"""Non-web application services (§8 future work).

The paper leaves "non-web filtering (e.g., messaging, voice, and video
applications, such as Whatsapp)" to future work.  This module supplies
the substrate: an :class:`AppService` is a named service with a pool of
endpoint hosts speaking a non-HTTP protocol on a fixed port.  Censors
block such services the blunt way — by IP — which the ordinary
:func:`repro.simnet.tcp.tcp_connect` path already enforces, so app
connections ride the same middleboxes as web traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from .flow import FlowContext
from .tcp import TcpError, tcp_connect
from .topology import Host
from .world import World

__all__ = ["AppService", "AppConnection", "AppBlocked", "app_connect",
           "build_app_service"]


class AppBlocked(Exception):
    """Every endpoint of the service failed from this vantage."""

    def __init__(self, service: str, failures: List[Exception]):
        super().__init__(f"app-blocked: {service} ({len(failures)} endpoints)")
        self.service = service
        self.failures = failures


@dataclass(frozen=True)
class AppConnection:
    """A working session to one endpoint."""

    service: str
    endpoint: Host
    rtt: float
    via: str = "direct"


@dataclass
class AppService:
    """A messaging/VoIP-style service with several endpoint hosts."""

    name: str
    endpoints: List[Host]
    port: int = 5222

    def __post_init__(self) -> None:
        if not self.endpoints:
            raise ValueError("an app service needs at least one endpoint")

    @property
    def endpoint_ips(self) -> List[str]:
        return [h.ip for h in self.endpoints]


def build_app_service(
    world: World,
    name: str,
    n_endpoints: int = 3,
    location: str = "us-east",
    port: int = 5222,
) -> AppService:
    """Provision a service's endpoint fleet inside a world."""
    endpoints = [
        world.network.add_host(
            name=f"{name}-endpoint-{index}",
            location=location,
            extra_rtt=0.005,
            tags={"role": "app-endpoint", "service": name},
        )
        for index in range(n_endpoints)
    ]
    return AppService(name=name, endpoints=endpoints, port=port)


def app_connect(
    world: World,
    ctx: FlowContext,
    service: AppService,
    shuffle: bool = True,
) -> Generator:
    """Process: establish a session, trying endpoints in (shuffled) order.

    Returns :class:`AppConnection`; raises :class:`AppBlocked` when every
    endpoint fails (the all-IPs-blacklisted case).
    """
    order = list(service.endpoints)
    if shuffle:
        ctx.rng.shuffle(order)
    failures: List[Exception] = []
    for endpoint in order:
        try:
            conn = yield from tcp_connect(
                world.env, world.network, ctx, endpoint.ip, service.port,
                world.tcp_config,
            )
        except TcpError as error:
            failures.append(error)
            continue
        # Application-level hello over the established connection.
        yield world.env.timeout(conn.rtt)
        return AppConnection(
            service=service.name, endpoint=endpoint, rtt=conn.rtt
        )
    raise AppBlocked(service.name, failures)
