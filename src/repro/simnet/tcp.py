"""Simulated TCP connection establishment.

Captures the two failure symptoms censors produce at the IP layer:

- blackholed packets → the client burns its full SYN retry schedule and
  raises :class:`ConnectTimeout` (~21 s with the default schedule, the
  TCP/IP row of Table 5);
- injected resets → :class:`ConnectionReset` after roughly half an RTT.

A successful handshake yields a :class:`TcpConnection` carrying the sampled
path RTT and bottleneck bandwidth for subsequent request/transfer timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..censor.actions import IpAction
from .engine import Environment
from .flow import FlowContext
from .latency import LatencyModel
from .topology import Host, Network

__all__ = [
    "TcpError",
    "ConnectTimeout",
    "ConnectionReset",
    "TcpConfig",
    "TcpConnection",
    "tcp_connect",
]


class TcpError(Exception):
    """Base class for TCP-level failures."""

    kind = "tcp-error"

    def __init__(self, dst_ip: str, detail: str = ""):
        super().__init__(f"{self.kind}: {dst_ip} {detail}".rstrip())
        self.dst_ip = dst_ip
        self.detail = detail


class ConnectTimeout(TcpError):
    kind = "connect-timeout"


class ConnectionReset(TcpError):
    kind = "connection-reset"


@dataclass
class TcpConfig:
    """Handshake knobs.  The default SYN schedule (3 + 6 + 12 s) totals the
    21 s the paper measured for TCP/IP blocking detection (Table 5)."""

    syn_retries: tuple = (3.0, 6.0, 12.0)

    @property
    def connect_timeout_total(self) -> float:
        return sum(self.syn_retries)


@dataclass
class TcpConnection:
    """An established connection: latency/bandwidth context for requests."""

    src: Host
    dst: Host
    dst_ip: str
    rtt: float
    bandwidth_bps: float
    latency: LatencyModel
    established_at: float = 0.0

    def sample_rtt(self, rng) -> float:
        return self.latency.sample_rtt(rng)


def tcp_connect(
    env: Environment,
    network: Network,
    ctx: FlowContext,
    dst_ip: str,
    port: int = 80,
    config: TcpConfig = TcpConfig(),
) -> Generator:
    """Process: three-way handshake to ``dst_ip``; returns TcpConnection.

    Raises :class:`ConnectTimeout` (blackholed / nonexistent destination)
    or :class:`ConnectionReset` (censor-injected RST).
    """
    middlebox = ctx.middlebox
    if middlebox is not None:
        middlebox.observe_flow(env.now, ctx.client.ip, dst_ip)
        verdict = middlebox.packet(env.now, dst_ip, src_ip=ctx.client.ip)
        if verdict.action is IpAction.DROP:
            for delay in config.syn_retries:
                yield env.timeout(delay)
            raise ConnectTimeout(dst_ip, "(censor blackhole)")
        if verdict.action is IpAction.RST:
            # The RST arrives roughly half a round trip after the SYN.
            dst_guess = network.host_for_ip(dst_ip)
            base = (
                network.latency_between(ctx.client, dst_guess).base_rtt
                if dst_guess is not None
                else 0.05
            )
            yield env.timeout(base / 2.0)
            raise ConnectionReset(dst_ip, "(censor RST)")

    dst = network.host_for_ip(dst_ip)
    if dst is None:
        # Route to nowhere (e.g. DNS redirect into private space with no
        # listener): indistinguishable from a blackhole.
        for delay in config.syn_retries:
            yield env.timeout(delay)
        raise ConnectTimeout(dst_ip, "(no such host)")

    latency = network.latency_between(ctx.client, dst)
    rtt = latency.sample_rtt(ctx.rng) + ctx.access.access_rtt
    if latency.sample_loss(ctx.rng):
        # Lost SYN: one retry interval before the handshake completes.
        yield env.timeout(config.syn_retries[0])
    yield env.timeout(rtt)
    return TcpConnection(
        src=ctx.client,
        dst=dst,
        dst_ip=dst_ip,
        rtt=rtt,
        bandwidth_bps=network.path_bandwidth(ctx.client, dst),
        latency=latency,
        established_at=env.now,
    )
