"""Latency, jitter, loss, and transfer-time models.

The reproduction does not ship packets; it computes the *time* each protocol
step takes.  The models here are deliberately simple but capture the pieces
that shape the paper's results:

- per-path RTT with lognormal jitter (congested proxies show heavy tails,
  cf. Figure 1a's Germany-1/UK/Japan curves);
- random loss, surfaced to the TCP model as retransmission delay;
- TCP slow-start: small pages are RTT-bound, large pages bandwidth-bound.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = [
    "LatencyModel",
    "slow_start_rounds",
    "transfer_time",
    "INIT_CWND_BYTES",
    "MSS_BYTES",
]

# Initial congestion window (10 segments of 1460 B, RFC 6928).
MSS_BYTES = 1460
INIT_CWND_BYTES = 10 * MSS_BYTES


@dataclass
class LatencyModel:
    """Samples round-trip times for one path segment.

    ``base_rtt`` is the median RTT in seconds.  ``jitter_sigma`` is the sigma
    of a multiplicative lognormal factor (0 = deterministic).  ``loss`` is
    the per-round packet-loss probability surfaced to the transport.
    """

    base_rtt: float
    jitter_sigma: float = 0.08
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rtt < 0:
            raise ValueError(f"negative base_rtt: {self.base_rtt!r}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {self.loss!r}")
        if self.jitter_sigma < 0:
            raise ValueError(f"negative jitter_sigma: {self.jitter_sigma!r}")

    def sample_rtt(self, rng: random.Random) -> float:
        """One RTT sample: base RTT scaled by lognormal jitter."""
        if self.jitter_sigma == 0:
            return self.base_rtt
        return self.base_rtt * rng.lognormvariate(0.0, self.jitter_sigma)

    def sample_loss(self, rng: random.Random) -> bool:
        """Whether a given round experiences loss."""
        return self.loss > 0 and rng.random() < self.loss

    def combine(self, other: "LatencyModel") -> "LatencyModel":
        """Concatenate two path segments (RTTs add, loss composes)."""
        return LatencyModel(
            base_rtt=self.base_rtt + other.base_rtt,
            jitter_sigma=math.hypot(self.jitter_sigma, other.jitter_sigma),
            loss=1.0 - (1.0 - self.loss) * (1.0 - other.loss),
        )


def slow_start_rounds(size_bytes: int, init_cwnd: int = INIT_CWND_BYTES) -> int:
    """Number of additional round trips TCP slow start needs for a payload.

    0 when the object fits in the initial window; grows logarithmically
    (window doubles each round) otherwise.
    """
    if size_bytes <= 0:
        return 0
    if size_bytes <= init_cwnd:
        return 0
    # Window doubles each RTT: cwnd * (2^r+1 - 1) bytes after r extra rounds.
    return max(0, math.ceil(math.log2(size_bytes / init_cwnd + 1)) )


def transfer_time(
    size_bytes: int,
    rtt: float,
    bandwidth_bps: float,
    init_cwnd: int = INIT_CWND_BYTES,
) -> float:
    """Time to move ``size_bytes`` after the connection is established.

    Models one request round trip, slow-start round trips, and serialization
    at ``bandwidth_bps`` (bits per second).
    """
    if size_bytes < 0:
        raise ValueError(f"negative size: {size_bytes!r}")
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive: {bandwidth_bps!r}")
    rounds = slow_start_rounds(size_bytes, init_cwnd)
    return rtt + rounds * rtt + (size_bytes * 8.0) / bandwidth_bps
