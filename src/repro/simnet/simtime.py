"""Tolerance comparisons for simulated-time floats.

Simulated timestamps are sums of float latencies, so exact ``==`` on
them depends on summation order: any refactor that reassociates a sum
(batching, the three-lane scheduler, vectorized latency draws) can flip
an exact comparison without changing the simulation's semantics.
csaw-lint rule CSL006 bans ``==``/``!=`` on time-like values and points
here instead.
"""

from __future__ import annotations

__all__ = ["TIME_EPS", "time_eq", "time_ne", "time_close"]

#: Half a nanosecond of simulated seconds: far below any modelled latency
#: (the finest grain in ``simnet/latency.py`` is microseconds), far above
#: accumulated float error over a full pilot run.
TIME_EPS = 5e-10


def time_eq(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """True when two simulated timestamps are the same instant."""
    return abs(a - b) <= eps


def time_ne(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """True when two simulated timestamps are distinct instants."""
    return abs(a - b) > eps


#: Alias matching the naming used in analysis code.
time_close = time_eq
