"""The ``World`` facade: one object bundling the whole simulated Internet.

Everything an experiment needs — the event loop, topology, web content,
resolvers, protocol configs, RNG streams — hangs off a single
:class:`World`, so scenario builders and benchmarks read naturally:

    world = World(seed=1)
    isp = world.add_isp(17557, "ISP-A", policy=policy)
    client, access = world.add_client("user-1", [isp])
    ...
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..censor.middlebox import Middlebox
from ..censor.policy import CensorPolicy
from .dns import DnsConfig, Resolver
from .engine import Environment
from .flow import ClientLoadTracker, FlowContext
from .http import HttpConfig
from .rng import RngRegistry
from .tcp import TcpConfig
from .tls import TlsConfig
from .topology import AccessNetwork, AutonomousSystem, Host, Network
from .web import Web

__all__ = ["World"]


class World:
    """A complete simulated Internet for one experiment."""

    def __init__(self, seed: int = 0):
        self.rngs = RngRegistry(seed)
        self.env = Environment()
        self.network = Network(self.rngs)
        self.web = Web(self.network)
        self.dns_config = DnsConfig()
        self.tcp_config = TcpConfig()
        self.tls_config = TlsConfig()
        self.http_config = HttpConfig()
        self.resolvers: Dict[int, Resolver] = {}
        self.public_resolver: Optional[Resolver] = None
        self._transit_as: Optional[AutonomousSystem] = None

    # -- topology construction -------------------------------------------

    def add_isp(
        self,
        asn: int,
        name: str,
        country: str = "pakistan",
        policy: Optional[CensorPolicy] = None,
        resolver_extra_rtt: float = 0.002,
    ) -> AutonomousSystem:
        """Register an ISP with its recursive resolver and censor box."""
        censor = Middlebox(policy=policy, asn=asn) if policy is not None else None
        system = self.network.add_as(asn, name, country, censor=censor)
        resolver_host = self.network.add_host(
            name=f"resolver.as{asn}",
            location=country,
            asn=asn,
            extra_rtt=resolver_extra_rtt,
        )
        self.resolvers[asn] = Resolver(host=resolver_host, kind="isp", asn=asn)
        return system

    def add_public_resolver(
        self, name: str = "dns.google", location: str = "global-anycast"
    ) -> Resolver:
        host = self.network.add_host(name=name, location=location, extra_rtt=0.001)
        self.public_resolver = Resolver(host=host, kind="public")
        return self.public_resolver

    def add_client(
        self,
        name: str,
        isps: List[AutonomousSystem],
        location: str = "pakistan",
        bandwidth_bps: float = 20e6,
        access_rtt: float = 0.004,
    ) -> Tuple[Host, AccessNetwork]:
        """A client machine attached to one or more providers."""
        client = self.network.add_host(
            name=name,
            location=location,
            asn=isps[0].asn if isps else None,
            bandwidth_bps=bandwidth_bps,
        )
        access = AccessNetwork(isps=list(isps), access_rtt=access_rtt)
        return client, access

    # -- flow helpers -------------------------------------------------------

    def new_ctx(
        self,
        client: Host,
        access: AccessNetwork,
        stream: str = "flows",
        load: Optional[ClientLoadTracker] = None,
    ) -> FlowContext:
        """Fresh flow context (picks a provider for multihomed access)."""
        return FlowContext.for_new_flow(
            client, access, self.rngs.stream(stream), load=load
        )

    def isp_resolver(self, ctx: FlowContext) -> Resolver:
        resolver = self.resolvers.get(ctx.isp.asn)
        if resolver is None:
            raise KeyError(f"no resolver registered for AS{ctx.isp.asn}")
        return resolver

    def transit_as(self) -> AutonomousSystem:
        """An uncensored AS used as the vantage of relays/proxies."""
        if self._transit_as is None:
            self._transit_as = self.network.add_as(64512, "transit", "uncensored")
            resolver_host = self.network.add_host(
                name="resolver.transit",
                location="global-anycast",
                asn=64512,
                extra_rtt=0.001,
            )
            self.resolvers[64512] = Resolver(
                host=resolver_host, kind="isp", asn=64512
            )
        return self._transit_as

    def relay_ctx(self, relay_host: Host, stream: str = "relay") -> FlowContext:
        """Flow context for a relay fetching on a client's behalf.

        Relays sit outside the censored region: their flows traverse the
        uncensored transit AS, so nothing is filtered on the second leg.
        """
        transit = self.transit_as()
        access = AccessNetwork(isps=[transit], access_rtt=0.0005)
        return FlowContext(
            client=relay_host,
            access=access,
            isp=transit,
            rng=self.rngs.stream(stream),
            load=ClientLoadTracker(),
        )

    def middlebox_for(self, asn: int) -> Optional[Middlebox]:
        system = self.network.ases.get(asn)
        return system.censor if system else None

    # -- running -------------------------------------------------------------

    def run_process(self, generator: Generator):
        """Launch a process and run the loop until it finishes."""
        process = self.env.process(generator)
        return self.env.run(until=process)
