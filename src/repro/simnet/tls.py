"""Simulated TLS handshake with cleartext SNI.

Censors cannot read HTTPS payloads but do see the Server Name Indication in
the ClientHello (§2.1), so SNI-based filtering — and domain fronting's
evasion of it by putting an innocuous front name in the SNI — fall out of
this layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..censor.actions import TlsAction
from .engine import Environment
from .flow import FlowContext
from .tcp import TcpConnection

__all__ = ["TlsError", "TlsTimeout", "TlsReset", "TlsConfig", "tls_handshake"]


class TlsError(Exception):
    """Base class for TLS handshake failures."""

    kind = "tls-error"

    def __init__(self, sni: Optional[str], detail: str = ""):
        super().__init__(f"{self.kind}: sni={sni!r} {detail}".rstrip())
        self.sni = sni
        self.detail = detail


class TlsTimeout(TlsError):
    kind = "tls-timeout"


class TlsReset(TlsError):
    kind = "tls-reset"


@dataclass
class TlsConfig:
    handshake_round_trips: int = 2  # TLS 1.2 full handshake
    drop_timeout: float = 15.0  # stall before the client gives up


def tls_handshake(
    env: Environment,
    ctx: FlowContext,
    conn: TcpConnection,
    sni: Optional[str],
    config: TlsConfig = TlsConfig(),
) -> Generator:
    """Process: TLS handshake over ``conn`` announcing ``sni``.

    Returns the handshake duration; raises :class:`TlsTimeout` or
    :class:`TlsReset` when the censor interferes.
    """
    middlebox = ctx.middlebox
    if middlebox is not None:
        verdict = middlebox.tls_client_hello(env.now, sni, conn.dst_ip, src_ip=ctx.client.ip)
        if verdict.action is TlsAction.DROP:
            yield env.timeout(config.drop_timeout)
            raise TlsTimeout(sni, "(censor drop)")
        if verdict.action is TlsAction.RST:
            yield env.timeout(conn.rtt / 2.0)
            raise TlsReset(sni, "(censor RST)")

    duration = config.handshake_round_trips * conn.sample_rtt(ctx.rng)
    yield env.timeout(duration)
    return duration
