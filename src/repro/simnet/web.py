"""Web content model: pages, sites, origin servers, CDNs.

A :class:`WebPage` carries both a *logical size* (drives transfer timing;
the paper's experiments use ~50 KB, 95 KB, 316 KB, ~360 KB and ~1.4 MB
pages) and a small synthetic *HTML snippet* (drives block-page
classification).  Pages may embed objects served from the same site or
from CDN hosts — embedded CDN fetches are how the pilot study surfaced
CDN-server blocking (§7.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..urlkit import parse_url
from .topology import Host, Network

__all__ = ["EmbeddedRef", "WebPage", "Site", "Web", "make_normal_html"]


@dataclass(frozen=True)
class EmbeddedRef:
    """A sub-resource referenced by a page (image, script, CDN object)."""

    url: str
    size_bytes: int


@dataclass
class WebPage:
    """One fetchable resource."""

    url: str
    size_bytes: int
    html: str = ""
    embedded: List[EmbeddedRef] = field(default_factory=list)
    category: str = "general"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"page size must be positive: {self.size_bytes!r}")
        if not self.html:
            parsed = parse_url(self.url)
            self.html = make_normal_html(parsed.host, parsed.path, self.embedded)

    @property
    def total_bytes(self) -> int:
        return self.size_bytes + sum(ref.size_bytes for ref in self.embedded)


@dataclass
class Site:
    """A hostname served by one origin host.

    ``catch_all`` (when set) synthesises a page for any unknown path —
    used for CDN nodes and censor block-page servers.
    """

    hostname: str
    host: Host
    pages: Dict[str, WebPage] = field(default_factory=dict)
    catch_all: Optional[Callable[[str], WebPage]] = None
    supports_https: bool = True
    supports_fronting: bool = False
    # Server-side filtering (§8): the *content provider* withholds content
    # from clients in these locations (e.g. government-requested geo
    # filtering).  Enforced by the server, not the on-path censor — a
    # relay outside the region sees the content.
    geo_blocked: Set[str] = field(default_factory=set)

    def add_page(self, page: WebPage) -> None:
        parsed = parse_url(page.url)
        if parsed.host != self.hostname:
            raise ValueError(
                f"page {page.url!r} does not belong to site {self.hostname!r}"
            )
        self.pages[parsed.path] = page

    def page(self, path: str) -> Optional[WebPage]:
        found = self.pages.get(path)
        if found is None and self.catch_all is not None:
            found = self.catch_all(path)
        return found


class Web:
    """Registry of sites; answers "what does this server say to this URL?"."""

    def __init__(self, network: Network):
        self.network = network
        self.sites: Dict[str, Site] = {}
        self._sites_by_ip: Dict[str, List[Site]] = {}

    def add_site(
        self,
        hostname: str,
        location: str,
        asn: Optional[int] = None,
        bandwidth_bps: float = 100e6,
        extra_rtt: float = 0.005,
        jitter_sigma: float = 0.08,
        supports_https: bool = True,
        supports_fronting: bool = False,
        catch_all: Optional[Callable[[str], WebPage]] = None,
        host: Optional[Host] = None,
        geo_blocked: Optional[Set[str]] = None,
    ) -> Site:
        """Create a site (and its origin host unless one is supplied)."""
        hostname = hostname.lower()
        if hostname in self.sites:
            raise ValueError(f"site already exists: {hostname!r}")
        if host is None:
            host = self.network.add_host(
                name=hostname,
                location=location,
                asn=asn,
                bandwidth_bps=bandwidth_bps,
                extra_rtt=extra_rtt,
                jitter_sigma=jitter_sigma,
                register_dns=True,
            )
        else:
            self.network.register_domain(hostname, host.ip)
        site = Site(
            hostname=hostname,
            host=host,
            supports_https=supports_https,
            supports_fronting=supports_fronting,
            catch_all=catch_all,
            geo_blocked=set(geo_blocked or ()),
        )
        self.sites[hostname] = site
        self._sites_by_ip.setdefault(host.ip, []).append(site)
        return site

    def add_page(
        self,
        url: str,
        size_bytes: int,
        html: str = "",
        embedded: Optional[List[EmbeddedRef]] = None,
        category: str = "general",
    ) -> WebPage:
        parsed = parse_url(url)
        site = self.sites.get(parsed.host)
        if site is None:
            raise ValueError(f"no site for {parsed.host!r}; add_site first")
        page = WebPage(
            url=parsed.url,
            size_bytes=size_bytes,
            html=html,
            embedded=list(embedded or []),
            category=category,
        )
        site.add_page(page)
        return page

    def site_for(self, hostname: str) -> Optional[Site]:
        return self.sites.get(hostname.lower())

    def site_serving(self, server: Host, host_header: str) -> Optional[Site]:
        """The site ``server`` selects for ``Host: host_header``.

        Virtual-host match first; otherwise fall back to the server's
        default (only) site — which is what makes the "IP as hostname"
        local-fix work: the Host header carries the IP, no vhost matches,
        and the default site answers.
        """
        candidates = self._sites_by_ip.get(server.ip, [])
        for site in candidates:
            if site.hostname == host_header.lower():
                return site
        if len(candidates) == 1:
            return candidates[0]
        return None

    def page_for(self, server: Host, host_header: str, path: str) -> Optional[WebPage]:
        """What ``server`` returns for ``Host: host_header`` + ``path``."""
        site = self.site_serving(server, host_header)
        return site.page(path) if site is not None else None

    def sites_on_ip(self, ip: str) -> List[Site]:
        return list(self._sites_by_ip.get(ip, []))


def make_normal_html(host: str, path: str, embedded: List[EmbeddedRef]) -> str:
    """A small, ordinary-looking HTML document for a content page."""
    refs = "\n".join(
        f'    <img src="{ref.url}" alt="resource" />' for ref in embedded[:8]
    )
    return (
        "<!DOCTYPE html>\n"
        f"<html>\n<head>\n  <title>{host}{path}</title>\n"
        '  <meta charset="utf-8" />\n'
        f'  <link rel="stylesheet" href="https://{host}/static/site.css" />\n'
        "</head>\n<body>\n"
        f"  <header><h1>Welcome to {host}</h1></header>\n"
        "  <nav><a href='/'>home</a> <a href='/about'>about</a>"
        " <a href='/news'>news</a></nav>\n"
        f"  <main>\n    <article><p>Content for {path} with plenty of"
        " paragraphs, commentary, and ongoing discussion threads."
        "</p></article>\n"
        f"{refs}\n"
        "  </main>\n"
        f"  <footer>&copy; {host} — all rights reserved</footer>\n"
        "</body>\n</html>\n"
    )
