"""Simulated Internet topology: locations, ASes, hosts, access networks.

The topology is deliberately geographic rather than packet-level: a path's
latency is the geodesic RTT between the endpoints' locations plus per-host
processing delay, which is the granularity the paper's PLT arguments operate
at (local-fix < single relay < Tor's three relays).

Censorship attaches to :class:`AutonomousSystem` objects — a flow is subject
to the policy of the AS it exits through (the client's ISP), matching the
paper's distributed-censorship model where individual ISPs deploy filtering
independently (§2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .ipaddr import IpAllocator
from .latency import LatencyModel
from .rng import RngRegistry

__all__ = [
    "AutonomousSystem",
    "Host",
    "AccessNetwork",
    "Network",
    "DEFAULT_GEO_RTT_MS",
]

# Median RTTs (ms) between locations, calibrated so that the measurement
# vantage of the paper's case study (Pakistan) sees Table 2's ping latencies
# to the static-proxy fleet and ~186 ms to YouTube's front-end.
DEFAULT_GEO_RTT_MS: Dict[Tuple[str, str], float] = {
    ("pakistan", "pakistan"): 15.0,
    ("pakistan", "uk"): 228.0,
    ("pakistan", "netherlands"): 172.0,
    ("pakistan", "japan"): 387.0,
    ("pakistan", "us-east"): 329.0,
    ("pakistan", "us-west"): 429.0,
    ("pakistan", "us-central"): 160.0,
    ("pakistan", "germany"): 309.0,
    ("pakistan", "germany-south"): 174.0,
    ("pakistan", "france"): 290.0,
    ("pakistan", "switzerland"): 260.0,
    ("pakistan", "czech"): 240.0,
    ("pakistan", "canada"): 350.0,
    ("pakistan", "singapore"): 120.0,
    ("pakistan", "global-anycast"): 186.0,
    ("uk", "netherlands"): 15.0,
    ("uk", "us-east"): 80.0,
    ("uk", "germany"): 20.0,
    ("netherlands", "germany"): 12.0,
    ("netherlands", "us-east"): 85.0,
    ("germany", "germany-south"): 8.0,
    ("us-east", "us-west"): 70.0,
    ("us-east", "us-central"): 40.0,
    ("us-west", "us-central"): 40.0,
    ("us-east", "canada"): 25.0,
    ("japan", "singapore"): 75.0,
    ("japan", "us-west"): 110.0,
    ("france", "germany"): 15.0,
    ("france", "uk"): 12.0,
    ("switzerland", "germany"): 10.0,
    ("czech", "germany"): 12.0,
}
# Fallbacks when a pair is not listed explicitly.
_SAME_LOCATION_RTT_MS = 12.0
_DEFAULT_INTER_RTT_MS = 250.0


@dataclass
class AutonomousSystem:
    """An ISP/AS.  ``censor`` (if set) filters flows exiting through it."""

    asn: int
    name: str
    country: str
    censor: Any = None  # censor.policy.CensorPolicy; Any avoids a cycle.

    def __hash__(self) -> int:
        return hash(self.asn)

    def __repr__(self) -> str:
        return f"AS{self.asn}({self.name})"


@dataclass
class Host:
    """A named endpoint: origin server, proxy, relay, resolver, or client."""

    name: str
    ip: str
    location: str
    asn: Optional[int] = None
    extra_rtt: float = 0.0  # processing / load delay added per round trip
    jitter_sigma: float = 0.08
    bandwidth_bps: float = 50e6
    tags: Dict[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.ip)

    def __repr__(self) -> str:
        return f"Host({self.name}@{self.ip}, {self.location})"


@dataclass
class AccessNetwork:
    """A client's attachment point: one or more upstream ISPs.

    Multihomed networks map each new flow to a random provider, which is
    exactly the behaviour that confuses a naive blocking cache (§4.4).
    """

    isps: List[AutonomousSystem]
    access_rtt: float = 0.004  # last-mile RTT in seconds
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)

    def __post_init__(self) -> None:
        if not self.isps:
            raise ValueError("access network needs at least one ISP")

    @property
    def multihomed(self) -> bool:
        return len(self.isps) > 1

    def pick_isp(self, rng) -> AutonomousSystem:
        """ISP used for a fresh flow (uniform among providers)."""
        if len(self.isps) == 1:
            return self.isps[0]
        return rng.choice(self.isps)


class Network:
    """Registry of ASes and hosts plus the latency oracle between them."""

    def __init__(self, rngs: Optional[RngRegistry] = None):
        # Bare Network() is an ad-hoc/test convenience; every worker
        # path threads a spec-derived registry in (world.py passes the
        # World's own, seeded from the scenario seed).
        self.rngs = rngs or RngRegistry(0)  # csaw-analyze: disable=CSA102
        self._geo: Dict[Tuple[str, str], float] = dict(DEFAULT_GEO_RTT_MS)
        self.ases: Dict[int, AutonomousSystem] = {}
        self.hosts_by_ip: Dict[str, Host] = {}
        self.hosts_by_name: Dict[str, Host] = {}
        self.dns_records: Dict[str, List[str]] = {}
        self._ips = IpAllocator()

    # -- construction -----------------------------------------------------

    def add_as(
        self, asn: int, name: str, country: str, censor: Any = None
    ) -> AutonomousSystem:
        if asn in self.ases:
            raise ValueError(f"AS{asn} already registered")
        system = AutonomousSystem(asn=asn, name=name, country=country, censor=censor)
        self.ases[asn] = system
        return system

    def add_host(
        self,
        name: str,
        location: str,
        asn: Optional[int] = None,
        ip: Optional[str] = None,
        extra_rtt: float = 0.0,
        jitter_sigma: float = 0.08,
        bandwidth_bps: float = 50e6,
        register_dns: bool = False,
        tags: Optional[Dict[str, Any]] = None,
    ) -> Host:
        """Create and register a host; optionally publish an A record."""
        if name in self.hosts_by_name:
            raise ValueError(f"host name already registered: {name!r}")
        if asn is not None and asn not in self.ases:
            raise ValueError(f"unknown AS{asn} for host {name!r}")
        host = Host(
            name=name,
            ip=ip or self._ips.allocate(),
            location=location,
            asn=asn,
            extra_rtt=extra_rtt,
            jitter_sigma=jitter_sigma,
            bandwidth_bps=bandwidth_bps,
            tags=dict(tags or {}),
        )
        if host.ip in self.hosts_by_ip:
            raise ValueError(f"IP already registered: {host.ip!r}")
        self.hosts_by_ip[host.ip] = host
        self.hosts_by_name[name] = host
        if register_dns:
            self.register_domain(name, host.ip)
        return host

    def register_domain(self, hostname: str, ip: str) -> None:
        """Publish an authoritative A record (appends for multi-A records)."""
        self.dns_records.setdefault(hostname.lower(), []).append(ip)

    def authoritative_ips(self, hostname: str) -> List[str]:
        """Authoritative answer for a hostname ([] when non-existent)."""
        return list(self.dns_records.get(hostname.lower(), []))

    def set_geo_rtt(self, a: str, b: str, rtt_ms: float) -> None:
        self._geo[(a, b)] = rtt_ms

    # -- lookup -----------------------------------------------------------

    def host_for_ip(self, ip: str) -> Optional[Host]:
        return self.hosts_by_ip.get(ip)

    def host_for_name(self, name: str) -> Optional[Host]:
        return self.hosts_by_name.get(name)

    # -- latency oracle -----------------------------------------------------

    def geo_rtt(self, loc_a: str, loc_b: str) -> float:
        """Median RTT in *seconds* between two locations."""
        if loc_a == loc_b:
            ms = self._geo.get((loc_a, loc_b), _SAME_LOCATION_RTT_MS)
        else:
            ms = self._geo.get(
                (loc_a, loc_b), self._geo.get((loc_b, loc_a), _DEFAULT_INTER_RTT_MS)
            )
        return ms / 1000.0

    def latency_between(self, a: Host, b: Host) -> LatencyModel:
        """Latency model for the path between two hosts."""
        base = self.geo_rtt(a.location, b.location) + a.extra_rtt + b.extra_rtt
        sigma = max(a.jitter_sigma, b.jitter_sigma)
        return LatencyModel(base_rtt=base, jitter_sigma=sigma)

    def path_bandwidth(self, a: Host, b: Host) -> float:
        """Bottleneck bandwidth between two hosts (bits per second)."""
        return min(a.bandwidth_bps, b.bandwidth_bps)
