"""URL parsing and base/derived relationships.

C-Saw's local database is keyed by URL and its aggregation scheme (§4.4)
reasons about *base* URLs (``http://www.foo.com/``) versus *derived* URLs
(``http://www.foo.com/a.html``).  This module centralises that vocabulary
so the simulator, the proxy, and the database all agree on it.

Only the subset of URL syntax the reproduction needs is supported:
``scheme://host[:port]/path`` with http/https schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache


__all__ = [
    "ParsedUrl",
    "parse_url",
    "normalize_url",
    "base_url",
    "is_base_url",
    "is_derived_of",
    "registered_domain",
]

_DEFAULT_PORTS = {"http": 80, "https": 443}


@dataclass(frozen=True)
class ParsedUrl:
    scheme: str
    host: str
    port: int
    path: str

    @property
    def origin(self) -> str:
        """scheme://host[:port] with default ports elided."""
        if _DEFAULT_PORTS.get(self.scheme) == self.port:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    @property
    def url(self) -> str:
        return f"{self.origin}{self.path}"

    @property
    def is_base(self) -> bool:
        return self.path == "/"

    def base(self) -> "ParsedUrl":
        return replace(self, path="/")

    def with_scheme(self, scheme: str) -> "ParsedUrl":
        if scheme not in _DEFAULT_PORTS:
            raise ValueError(f"unsupported scheme: {scheme!r}")
        port = self.port
        if port == _DEFAULT_PORTS[self.scheme]:
            port = _DEFAULT_PORTS[scheme]
        return replace(self, scheme=scheme, port=port)

    def with_host(self, host: str) -> "ParsedUrl":
        return replace(self, host=host.lower())

    def __str__(self) -> str:
        return self.url


@lru_cache(maxsize=4096)
def parse_url(url: str) -> ParsedUrl:
    """Parse ``scheme://host[:port]/path`` (path defaults to ``/``).

    Memoized: the local database and proxy call this on every lookup with a
    small working set of URLs, and ``ParsedUrl`` is frozen so sharing one
    instance across callers is safe.
    """
    if "://" not in url:
        raise ValueError(f"URL missing scheme: {url!r}")
    scheme, rest = url.split("://", 1)
    scheme = scheme.lower()
    if scheme not in _DEFAULT_PORTS:
        raise ValueError(f"unsupported scheme: {scheme!r} in {url!r}")
    if "/" in rest:
        authority, path = rest.split("/", 1)
        path = "/" + path
    else:
        authority, path = rest, "/"
    if not authority:
        raise ValueError(f"URL missing host: {url!r}")
    if ":" in authority:
        host, port_text = authority.rsplit(":", 1)
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"bad port in URL: {url!r}") from None
        if not 0 < port < 65536:
            raise ValueError(f"bad port in URL: {url!r}")
    else:
        host, port = authority, _DEFAULT_PORTS[scheme]
    return ParsedUrl(scheme=scheme, host=host.lower(), port=port, path=path)


@lru_cache(maxsize=4096)
def normalize_url(url: str) -> str:
    """Canonical string form (lowercased host, default port elided)."""
    return parse_url(url).url


def base_url(url: str) -> str:
    """The base URL (path ``/``) of ``url``."""
    return parse_url(url).base().url


def is_base_url(url: str) -> bool:
    return parse_url(url).is_base


def is_derived_of(derived: str, base: str) -> bool:
    """True when ``derived`` shares origin with ``base`` and extends it.

    ``base`` may itself be a non-root path (prefix semantics, used by the
    local_DB's longest-prefix matching).
    """
    d, b = parse_url(derived), parse_url(base)
    if (d.scheme, d.host, d.port) != (b.scheme, b.host, b.port):
        return False
    if b.path == "/":
        return True
    return d.path == b.path or d.path.startswith(
        b.path if b.path.endswith("/") else b.path + "/"
    )


def registered_domain(host: str) -> str:
    """Crude eTLD+1: last two labels (enough for the synthetic corpus)."""
    labels = host.lower().rstrip(".").split(".")
    if len(labels) <= 2:
        return ".".join(labels)
    return ".".join(labels[-2:])
