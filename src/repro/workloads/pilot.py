"""The deployment/pilot study (§7.4, Table 7), simulated.

The paper released C-Saw to 123 consenting users across residential,
enterprise, and University networks in Pakistan (16 ASes) for three
months, with no target list — users browsed naturally.  We rebuild that:

- a censored region of ``n_ases`` ISPs, each with its own filtering stack
  over the corpus's porn/political/religious domains (mechanism sampled
  per (AS, domain), so the same domain blocks differently across ASes);
- a couple of ISPs additionally block a shared CDN hostname — only ever
  fetched as *embedded objects*, so discovering it requires C-Saw's
  per-URL measurement of page subresources (the paper's CDN finding);
- ``n_users`` C-Saw clients browsing the corpus with a bias toward
  censored content, registering, reporting, and periodically syncing
  with the global database.

:func:`run_pilot` returns a :class:`PilotReport` with the Table-7 rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..censor.actions import (
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
)
from ..censor.blockpages import DEFAULT_BLOCKPAGE_HTML
from ..censor.policy import CensorPolicy, Matcher, Rule
from ..circumvent import LanternNetwork, TorNetwork
from ..core import CSawClient, CSawConfig, ServerDB
from ..simnet.web import WebPage
from ..simnet.world import World
from ..urlkit import parse_url, registered_domain
from .corpus import Corpus, build_corpus
from .scenarios import BLOCKED_CATEGORIES

__all__ = [
    "PilotConfig",
    "PilotReport",
    "PilotStudy",
    "run_pilot",
    "pilot_sweep",
    "summarize_sweep",
]

# Mechanism mix per (AS, domain); weights target the Table-7 proportions
# (block pages ~48 %, DNS ~38 %, TCP timeouts ~11 %, the rest exotic).
_MECHANISMS: List[Tuple[str, float]] = [
    ("blockpage-redirect", 0.31),
    ("blockpage-iframe", 0.14),
    ("dns-redirect", 0.16),
    ("dns-nxdomain", 0.09),
    ("dns-servfail", 0.09),
    ("dns-timeout", 0.08),
    ("ip-drop", 0.08),
    ("http-drop", 0.05),
]


@dataclass
class PilotConfig:
    seed: int = 7
    n_users: int = 123
    n_ases: int = 16
    n_sites: int = 1700
    duration_days: float = 90.0
    requests_per_user: int = 80
    blocked_visit_bias: float = 3.0  # over-weighting of censored categories
    page_load_fraction: float = 0.15  # full page loads (embedded objects)
    sync_interval: float = 24 * 3600.0
    cdn_blocking_ases: int = 2  # ISPs that also block a CDN hostname

    @property
    def duration(self) -> float:
        return self.duration_days * 24 * 3600.0


@dataclass
class PilotReport:
    """Table 7 — insights from the deployment study."""

    users: int
    unique_blocked_urls: int
    unique_blocked_domains: int
    unique_ases: int
    distinct_block_types: int
    urls_dns_blocked: int
    urls_tcp_timeout: int
    urls_blockpage: int
    unique_updates: int
    cdn_domains_detected: int
    # Sync-plane traffic: how the periodic pulls split between full
    # snapshots and incremental deltas, and the rows that travelled.
    full_syncs: int = 0
    delta_syncs: int = 0
    sync_rows_received: int = 0
    # Where page-load time went, summed over every client's finished
    # sessions (stage → sim-seconds).  Kept out of :meth:`rows` so the
    # Table-7 tuple shape stays stable; rendered by :meth:`plt_rows`.
    plt_stage_seconds: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, int]]:
        return [
            ("No. of users", self.users),
            ("No. of unique blocked URLs accessed", self.unique_blocked_urls),
            ("No. of unique blocked domains accessed", self.unique_blocked_domains),
            ("No. of unique ASes", self.unique_ases),
            ("Distinct types of blocking observed", self.distinct_block_types),
            ("No. of URLs experiencing DNS blocking", self.urls_dns_blocked),
            ("No. of URLs experiencing TCP connection timeout", self.urls_tcp_timeout),
            ("No. of URLs for which a block page was returned", self.urls_blockpage),
            ("No. of unique updates", self.unique_updates),
            ("CDN domains found blocked (§7.4 finding)", self.cdn_domains_detected),
            ("Full blocked-list syncs served", self.full_syncs),
            ("Delta blocked-list syncs served", self.delta_syncs),
            ("Sync rows transferred", self.sync_rows_received),
        ]

    def plt_rows(self) -> List[Tuple[str, float, float]]:
        """Per-stage PLT decomposition: (stage, seconds, share-of-total).

        Sorted by descending time (ties by stage name) — the paper-§6
        "where does page-load time go" view over the whole deployment.
        """
        total = sum(self.plt_stage_seconds.values())
        return [
            (stage, seconds, seconds / total if total > 0 else 0.0)
            for stage, seconds in sorted(
                self.plt_stage_seconds.items(),
                key=lambda item: (-item[1], item[0]),
            )
        ]


class PilotStudy:
    """Builds and drives the simulated deployment."""

    def __init__(self, config: Optional[PilotConfig] = None):
        self.config = config or PilotConfig()
        self.world = World(seed=self.config.seed)
        self.server = ServerDB(entry_ttl=None)
        self.corpus: Optional[Corpus] = None
        self.clients: List[CSawClient] = []
        self.blocked_domains: List[str] = []
        self.cdn_blocked: List[str] = []

    # -- construction ---------------------------------------------------------

    def build(self) -> "PilotStudy":
        config = self.config
        world = self.world
        rng = world.rngs.stream("pilot")
        world.add_public_resolver()

        self.corpus = build_corpus(
            n_sites=config.n_sites, seed=config.seed, cdn_probability=0.5
        )
        self.corpus.materialize(world)
        self.blocked_domains = self.corpus.domains_in_categories(
            BLOCKED_CATEGORIES
        )

        tor = TorNetwork.build(world, n_relays=40)
        lantern = LanternNetwork.build(world, n_proxies=12)

        # One block-page server per censoring region style.
        blockpage_host = self._blockpage_server()

        ases = []
        for index in range(config.n_ases):
            asn = 30000 + index
            policy = self._build_policy(rng, asn, blockpage_host.ip, index)
            ases.append(world.add_isp(asn, f"PK-ISP-{index}", policy=policy))

        for index in range(config.n_users):
            isp = ases[index % len(ases)]
            name = f"pilot-user-{index}"
            transports = [
                t
                for t in self._user_transports(name, tor, lantern)
            ]
            client = CSawClient(
                world,
                name,
                [isp],
                transports=transports,
                server_db=self.server,
                config=CSawConfig(
                    probe_probability=0.1,
                    report_interval=config.sync_interval,
                    download_interval=config.sync_interval,
                    record_ttl=14 * 24 * 3600.0,
                ),
            )
            self.clients.append(client)
        return self

    def _user_transports(self, name, tor, lantern):
        from ..circumvent import (
            HttpsTransport,
            IpAsHostnameTransport,
            LanternTransport,
            PublicDnsTransport,
            TorTransport,
        )

        return [
            PublicDnsTransport(),
            HttpsTransport(),
            IpAsHostnameTransport(),
            TorTransport(tor.client(f"tor/{name}")),
            LanternTransport(lantern, user_stream=f"lantern/{name}"),
        ]

    def _blockpage_server(self):
        html = DEFAULT_BLOCKPAGE_HTML

        def factory(path: str) -> WebPage:
            return WebPage(
                url=f"http://block.pk-filter.example{path}",
                size_bytes=max(900, len(html)),
                html=html,
                category="blockpage",
            )

        site = self.world.web.add_site(
            "block.pk-filter.example",
            location="pakistan",
            supports_https=False,
            catch_all=factory,
        )
        return site.host

    def _build_policy(
        self, rng, asn: int, blockpage_ip: str, index: int
    ) -> CensorPolicy:
        names = [m for m, _w in _MECHANISMS]
        weights = [w for _m, w in _MECHANISMS]
        by_mechanism: Dict[str, Set[str]] = {name: set() for name in names}
        for domain in self.blocked_domains:
            mechanism = rng.choices(names, weights=weights)[0]
            by_mechanism[mechanism].add(domain)
        # A couple of ISPs also block a CDN host (the §7.4 discovery).
        if index < self.config.cdn_blocking_ases and self.corpus is not None:
            cdn = self.corpus.cdn_hostnames[0]
            by_mechanism["ip-drop"].add(cdn)
            if cdn not in self.cdn_blocked:
                self.cdn_blocked.append(cdn)

        policy = CensorPolicy(name=f"AS{asn}")
        verdicts = {
            "blockpage-redirect": dict(
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_REDIRECT, blockpage_ip=blockpage_ip
                )
            ),
            "blockpage-iframe": dict(
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_IFRAME, blockpage_ip=blockpage_ip
                )
            ),
            "dns-redirect": dict(
                dns=DnsVerdict(DnsAction.REDIRECT, redirect_ip="10.66.66.66")
            ),
            "dns-nxdomain": dict(dns=DnsVerdict(DnsAction.NXDOMAIN)),
            "dns-servfail": dict(dns=DnsVerdict(DnsAction.SERVFAIL)),
            "dns-timeout": dict(dns=DnsVerdict(DnsAction.TIMEOUT)),
            "http-drop": dict(http=HttpVerdict(HttpAction.DROP)),
        }
        for mechanism, domains in by_mechanism.items():
            if not domains:
                continue
            if mechanism == "ip-drop":
                ips = {
                    self.world.network.hosts_by_name[d].ip
                    for d in domains
                    if d in self.world.network.hosts_by_name
                }
                policy.add_rule(
                    Rule(
                        matcher=Matcher(domains=set(domains), ips=ips),
                        ip=IpVerdict(IpAction.DROP),
                        label=mechanism,
                    )
                )
            else:
                policy.add_rule(
                    Rule(
                        matcher=Matcher(domains=set(domains)),
                        label=mechanism,
                        **verdicts[mechanism],
                    )
                )
        return policy

    # -- driving -----------------------------------------------------------------

    def _user_process(self, client: CSawClient, user_rng):
        world = self.world
        config = self.config
        corpus = self.corpus
        # Staggered install over the first week.
        yield world.env.timeout(user_rng.uniform(0, 7 * 24 * 3600.0))
        yield from client.install()
        client.start_background(until=config.duration)

        n_requests = max(5, int(user_rng.gauss(config.requests_per_user, 20)))
        mean_gap = config.duration / (n_requests + 1)
        for _ in range(n_requests):
            yield world.env.timeout(user_rng.expovariate(1.0 / mean_gap))
            if world.env.now >= config.duration:
                break
            url = self._sample_url(user_rng)
            if user_rng.random() < config.page_load_fraction:
                yield world.env.process(client.load_page(url))
            else:
                response = yield from client.request(url)
                yield response.measurement_process

    def _sample_url(self, rng) -> str:
        corpus = self.corpus
        site = corpus.sample_site(rng)
        # Bias toward censored content (pilot users sought blocked sites).
        for _ in range(4):
            if site.category in BLOCKED_CATEGORIES:
                break
            if rng.random() < 1.0 / self.config.blocked_visit_bias:
                break
            site = corpus.sample_site(rng)
        path = rng.choice(site.page_paths)
        return f"http://{site.hostname}{path}"

    def run(self) -> PilotReport:
        if not self.clients:
            self.build()
        world = self.world
        for index, client in enumerate(self.clients):
            user_rng = world.rngs.fork(f"user-{index}").stream("behaviour")
            world.env.process(self._user_process(client, user_rng))
        world.env.run()
        return self.report()

    # -- reporting -----------------------------------------------------------------

    def report(self) -> PilotReport:
        entries = self.server.all_entries()
        urls = {e.url for e in entries}
        reg_domains = {registered_domain(parse_url(e.url).host) for e in entries}
        # Ordered dict-as-sets (the localdb.py idiom): only counts escape
        # today, but hash-ordered sets here would leak into any future
        # listing of block types/URLs in the report.
        block_types: Dict[str, None] = {}
        dns_urls: Dict[str, None] = {}
        tcp_urls: Dict[str, None] = {}
        bp_urls: Dict[str, None] = {}
        for entry in entries:
            for stage in entry.stages:
                block_types[stage.value] = None
                if stage.stage == "dns":
                    dns_urls[entry.url] = None
                elif stage.value == "tcp-timeout":
                    tcp_urls[entry.url] = None
                elif stage.value == "block-page":
                    bp_urls[entry.url] = None
        cdn_detected = {
            parse_url(e.url).host
            for e in entries
            if parse_url(e.url).host in set(self.cdn_blocked)
        }
        reporting = [c.reporting for c in self.clients if c.reporting]
        plt_stage_seconds: Dict[str, float] = {}
        for client in self.clients:
            for stage, seconds in client.measurement.stage_seconds.items():
                plt_stage_seconds[stage] = (
                    plt_stage_seconds.get(stage, 0.0) + seconds
                )
        return PilotReport(
            users=self.server.client_count,
            unique_blocked_urls=len(urls),
            unique_blocked_domains=len(reg_domains),
            unique_ases=len({e.asn for e in entries}),
            distinct_block_types=len(block_types),
            urls_dns_blocked=len(dns_urls),
            urls_tcp_timeout=len(tcp_urls),
            urls_blockpage=len(bp_urls),
            unique_updates=self.server.update_count,
            cdn_domains_detected=len(cdn_detected),
            full_syncs=sum(r.full_syncs for r in reporting),
            delta_syncs=sum(r.delta_syncs for r in reporting),
            sync_rows_received=sum(r.sync_rows_received for r in reporting),
            plt_stage_seconds=plt_stage_seconds,
        )


def run_pilot(config: Optional[PilotConfig] = None) -> PilotReport:
    """Convenience wrapper: build, run, report."""
    return PilotStudy(config).run()


def _pilot_trial(seed: int, **config_kwargs) -> PilotReport:
    """Top-level (picklable) trial body for :func:`pilot_sweep`."""
    return run_pilot(PilotConfig(seed=seed, **config_kwargs))


def pilot_sweep(
    n_trials: int = 3,
    root_seed: int = 7,
    workers: Optional[int] = None,
    **config_kwargs,
) -> List[PilotReport]:
    """Run the pilot study over ``n_trials`` independently-seeded worlds.

    Trials fan out across processes via :mod:`repro.runner` (worker count
    from ``workers`` / ``REPRO_RUNNER_WORKERS`` / CPU count); each world's
    seed is derived from ``(root_seed, trial index)`` so the sweep is
    reproducible for any worker count.  Reports come back in trial order.
    """
    from ..runner import merge_values, run_seed_sweep

    results = run_seed_sweep(
        _pilot_trial, root_seed, n_trials, name="pilot",
        workers=workers, **config_kwargs,
    )
    merged = merge_values(results)
    return [merged[result.name] for result in results]


def summarize_sweep(reports: List[PilotReport]) -> List[Tuple[str, float, int, int]]:
    """Table-7 rows aggregated across a sweep: (label, mean, min, max)."""
    rows: List[Tuple[str, float, int, int]] = []
    per_report = [report.rows() for report in reports]
    for column, (label, _value) in enumerate(per_report[0]):
        values = [rows_[column][1] for rows_ in per_report]
        rows.append((label, sum(values) / len(values), min(values), max(values)))
    return rows
