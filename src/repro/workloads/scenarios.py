"""Canned experiment worlds.

:func:`pakistan_case_study` rebuilds the paper's measurement setting
(§2.3, Table 1): a University/home vantage in Pakistan behind two large
ISPs with *different* filtering stacks —

- **ISP-A** (AS 17557): HTTP-level blocking, redirecting blocked URLs to a
  block page;
- **ISP-B** (AS 38193): multi-stage blocking for YouTube (DNS resolution
  to a local host *and* HTTP/HTTPS request drops) and iframe block pages
  for everything else.

The world also hosts everything the evaluation compares against: a Tor
relay population, a Lantern proxy pool, the ten static proxies of
Table 2, a domain-fronting front, a public resolver, and the five
specially-blocked sites used to calibrate detection times (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..censor.actions import (
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
    TlsAction,
    TlsVerdict,
)
from ..censor.blockpages import DEFAULT_BLOCKPAGE_HTML
from ..censor.policy import CensorPolicy, Matcher, Rule
from ..circumvent import (
    DomainFrontingTransport,
    HttpsTransport,
    IpAsHostnameTransport,
    LanternNetwork,
    LanternTransport,
    PublicDnsTransport,
    StaticProxyTransport,
    TorNetwork,
    TorTransport,
    Transport,
    build_proxy_fleet,
)
from ..simnet.topology import AutonomousSystem, Host
from ..simnet.web import WebPage
from ..simnet.world import World

__all__ = ["CaseStudyScenario", "pakistan_case_study", "BLOCKED_CATEGORIES"]

BLOCKED_CATEGORIES = ("porn", "political", "religious")

ISP_A_ASN = 17557
ISP_B_ASN = 38193
CLEAN_ASN = 9541

YOUTUBE = "www.youtube.com"
FRONT = "www.google.com"
PORN_SITE = "www.hotstuff-videos.com"
SMALL_UNBLOCKED = "www.smallnews.example.com"
LARGE_UNBLOCKED = "www.bigmedia.example.com"

# The five Table-5 calibration sites, one per blocking mechanism.
TABLE5_SITES = {
    "tcp-ip": "www.blocked-tcpip.example.com",
    "dns-servfail": "www.blocked-dnsfail.example.com",
    "dns-refused": "www.blocked-dnsrefused.example.com",
    "http-blockpage": "www.blocked-http.example.com",
    "tcp-ip+dns": "www.blocked-multi.example.com",
}


@dataclass
class CaseStudyScenario:
    """Everything the evaluation needs, in one bundle."""

    world: World
    isp_a: AutonomousSystem
    isp_b: AutonomousSystem
    isp_clean: AutonomousSystem
    blockpage_a: Host
    blockpage_b: Host
    tor: TorNetwork
    lantern: LanternNetwork
    proxy_transports: List[StaticProxyTransport]
    front_hostname: str = FRONT
    urls: Dict[str, str] = field(default_factory=dict)

    def make_transports(
        self,
        client_name: str,
        include: Optional[List[str]] = None,
        tor_rotation: float = 600.0,
        tor_exit_location: Optional[str] = None,
    ) -> List[Transport]:
        """Per-client transport set (Tor circuits and Lantern trust are
        per-user state, so these cannot be shared between clients)."""
        from ..circumvent.holdon import HoldOnTransport

        catalogue = {
            "public-dns": lambda: PublicDnsTransport(),
            "hold-on": lambda: HoldOnTransport(),
            "https": lambda: HttpsTransport(),
            "ip-as-hostname": lambda: IpAsHostnameTransport(),
            "domain-fronting": lambda: DomainFrontingTransport(self.front_hostname),
            "tor": lambda: TorTransport(
                self.tor.client(
                    f"tor/{client_name}",
                    rotation_period=tor_rotation,
                    exit_location=tor_exit_location,
                )
            ),
            "lantern": lambda: LanternTransport(
                self.lantern, user_stream=f"lantern/{client_name}"
            ),
        }
        names = include if include is not None else list(catalogue)
        return [catalogue[name]() for name in names]

    def tor_transport(self, client_name: str, **kwargs) -> TorTransport:
        return self.make_transports(client_name, include=["tor"], **kwargs)[0]

    def lantern_transport(self, client_name: str) -> LanternTransport:
        return self.make_transports(client_name, include=["lantern"])[0]


def _blockpage_site(world: World, hostname: str, html: str) -> Host:
    page_factory = lambda path: WebPage(  # noqa: E731 - tiny closure
        url=f"http://{hostname}{path}",
        size_bytes=max(900, len(html)),
        html=html,
        category="blockpage",
    )
    site = world.web.add_site(
        hostname,
        location="pakistan",
        supports_https=False,
        catch_all=page_factory,
    )
    return site.host


def pakistan_case_study(
    seed: int = 1,
    n_tor_relays: int = 40,
    n_lantern_proxies: int = 10,
    with_proxy_fleet: bool = True,
) -> CaseStudyScenario:
    """Build the full case-study world (§2.3 / Table 1 / §7)."""
    world = World(seed=seed)
    world.add_public_resolver()

    # --- content sites -----------------------------------------------------
    world.web.add_site(
        YOUTUBE, location="global-anycast", supports_https=True,
        supports_fronting=True, bandwidth_bps=200e6,
    )
    world.web.add_page(f"http://{YOUTUBE}/", size_bytes=360_000, category="video")
    world.web.add_site(FRONT, location="global-anycast", bandwidth_bps=400e6)
    world.web.add_page(f"http://{FRONT}/", size_bytes=15_000)
    world.web.add_site(PORN_SITE, location="us-east")
    world.web.add_page(f"http://{PORN_SITE}/", size_bytes=50_000, category="porn")
    world.web.add_site(SMALL_UNBLOCKED, location="netherlands")
    world.web.add_page(f"http://{SMALL_UNBLOCKED}/", size_bytes=95_000)
    world.web.add_site(LARGE_UNBLOCKED, location="us-east")
    world.web.add_page(f"http://{LARGE_UNBLOCKED}/", size_bytes=316_000)
    for hostname in TABLE5_SITES.values():
        world.web.add_site(hostname, location="us-east")
        world.web.add_page(f"http://{hostname}/", size_bytes=300_000)

    # --- block-page servers ---------------------------------------------------
    blockpage_a = _blockpage_site(
        world, "block.isp-a.pk", DEFAULT_BLOCKPAGE_HTML
    )
    blockpage_b = _blockpage_site(
        world,
        "block.isp-b.pk",
        DEFAULT_BLOCKPAGE_HTML.replace("ISP-A", "ISP-B"),
    )

    # --- censor policies (Table 1) -----------------------------------------------
    blocked_content = Matcher(
        domains={PORN_SITE, "hotstuff-videos.com"},
        keywords={"porn", "xxx", "adult-videos"},
    )

    policy_a = CensorPolicy(name="ISP-A")
    policy_a.add_rule(
        Rule(
            matcher=Matcher(domains={"youtube.com"}),
            http=HttpVerdict(
                HttpAction.BLOCKPAGE_REDIRECT, blockpage_ip=blockpage_a.ip
            ),
            label="youtube",
        )
    )
    policy_a.add_rule(
        Rule(
            matcher=blocked_content,
            http=HttpVerdict(
                HttpAction.BLOCKPAGE_REDIRECT, blockpage_ip=blockpage_a.ip
            ),
            label="content",
        )
    )
    # Table-5 calibration rules live on ISP-A (the measurement vantage).
    tcpip_ip = world.network.hosts_by_name[TABLE5_SITES["tcp-ip"]].ip
    multi_ip = world.network.hosts_by_name[TABLE5_SITES["tcp-ip+dns"]].ip
    policy_a.add_rule(
        Rule(
            matcher=Matcher(domains={TABLE5_SITES["tcp-ip"]}, ips={tcpip_ip}),
            ip=IpVerdict(IpAction.DROP),
            label="table5-tcpip",
        )
    )
    policy_a.add_rule(
        Rule(
            matcher=Matcher(domains={TABLE5_SITES["dns-servfail"]}),
            dns=DnsVerdict(DnsAction.SERVFAIL),
            label="table5-servfail",
        )
    )
    policy_a.add_rule(
        Rule(
            matcher=Matcher(domains={TABLE5_SITES["dns-refused"]}),
            dns=DnsVerdict(DnsAction.REFUSED),
            label="table5-refused",
        )
    )
    policy_a.add_rule(
        Rule(
            matcher=Matcher(domains={TABLE5_SITES["http-blockpage"]}),
            http=HttpVerdict(
                HttpAction.BLOCKPAGE_REDIRECT, blockpage_ip=blockpage_a.ip
            ),
            label="table5-http",
        )
    )
    policy_a.add_rule(
        Rule(
            matcher=Matcher(domains={TABLE5_SITES["tcp-ip+dns"]}, ips={multi_ip}),
            dns=DnsVerdict(DnsAction.SERVFAIL),
            ip=IpVerdict(IpAction.DROP),
            label="table5-multi",
        )
    )

    policy_b = CensorPolicy(name="ISP-B")
    # ISP-B's DPI also drops requests addressed to YouTube's IP literally
    # (Host: <ip>), so the ip-as-hostname trick fails there and C-Saw is
    # pushed to domain fronting — the paper's HTTPS/DF-at-ISP-B story.
    youtube_ip = world.network.hosts_by_name[YOUTUBE].ip
    policy_b.add_rule(
        Rule(
            matcher=Matcher(domains={"youtube.com"}, keywords={youtube_ip}),
            dns=DnsVerdict(DnsAction.REDIRECT, redirect_ip="10.11.12.13"),
            http=HttpVerdict(HttpAction.DROP),
            tls=TlsVerdict(TlsAction.DROP),
            label="youtube-multistage",
        )
    )
    policy_b.add_rule(
        Rule(
            matcher=blocked_content,
            http=HttpVerdict(
                HttpAction.BLOCKPAGE_IFRAME, blockpage_ip=blockpage_b.ip
            ),
            label="content",
        )
    )

    isp_a = world.add_isp(ISP_A_ASN, "ISP-A", policy=policy_a)
    isp_b = world.add_isp(ISP_B_ASN, "ISP-B", policy=policy_b)
    isp_clean = world.add_isp(CLEAN_ASN, "ISP-Clean")

    # --- circumvention infrastructure ----------------------------------------------
    tor = TorNetwork.build(world, n_relays=n_tor_relays)
    lantern = LanternNetwork.build(world, n_proxies=n_lantern_proxies)
    proxies = build_proxy_fleet(world) if with_proxy_fleet else []

    urls = {
        "youtube": f"http://{YOUTUBE}/",
        "porn": f"http://{PORN_SITE}/",
        "small-unblocked": f"http://{SMALL_UNBLOCKED}/",
        "large-unblocked": f"http://{LARGE_UNBLOCKED}/",
    }
    urls.update(
        {f"table5/{key}": f"http://{host}/" for key, host in TABLE5_SITES.items()}
    )

    return CaseStudyScenario(
        world=world,
        isp_a=isp_a,
        isp_b=isp_b,
        isp_clean=isp_clean,
        blockpage_a=blockpage_a,
        blockpage_b=blockpage_b,
        tor=tor,
        lantern=lantern,
        proxy_transports=proxies,
        urls=urls,
    )


@dataclass
class CentralizedScenario:
    """A country with *centralized* censorship (§2): every ISP shares one
    national filtering policy, so all traffic of the same type sees the
    same kind of blocking — the contrast case to the distributed
    Pakistan world above."""

    world: World
    isps: List[AutonomousSystem]
    policy: CensorPolicy
    blockpage: Host
    tor: TorNetwork
    lantern: LanternNetwork
    urls: Dict[str, str] = field(default_factory=dict)

    def make_transports(self, client_name: str) -> List[Transport]:
        from ..circumvent import (
            HttpsTransport as _Https,
            LanternTransport as _Lantern,
            PublicDnsTransport as _PublicDns,
            TorTransport as _Tor,
        )

        return [
            _PublicDns(),
            _Https(),
            _Tor(self.tor.client(f"tor/{client_name}")),
            _Lantern(self.lantern, user_stream=f"lantern/{client_name}"),
        ]


def centralized_country(
    seed: int = 1, n_isps: int = 4, country: str = "pakistan"
) -> CentralizedScenario:
    """Build a centrally-censored country: one policy object shared by
    every ISP (think Iran/South Korea in §2)."""
    world = World(seed=seed)
    world.add_public_resolver()

    world.web.add_site(YOUTUBE, location="global-anycast", supports_https=True,
                       supports_fronting=True)
    world.web.add_page(f"http://{YOUTUBE}/", size_bytes=360_000,
                       category="video")
    world.web.add_site(SMALL_UNBLOCKED, location="netherlands")
    world.web.add_page(f"http://{SMALL_UNBLOCKED}/", size_bytes=95_000)

    blockpage = _blockpage_site(
        world, "block.national-filter.example", DEFAULT_BLOCKPAGE_HTML
    )
    policy = CensorPolicy(name="national")
    policy.add_rule(
        Rule(
            matcher=Matcher(domains={"youtube.com"}),
            http=HttpVerdict(
                HttpAction.BLOCKPAGE_REDIRECT, blockpage_ip=blockpage.ip
            ),
            label="national-youtube",
        )
    )

    isps = [
        world.add_isp(50000 + index, f"{country}-ISP-{index}",
                      country=country, policy=policy)
        for index in range(n_isps)
    ]
    tor = TorNetwork.build(world, n_relays=30)
    lantern = LanternNetwork.build(world, n_proxies=8)
    return CentralizedScenario(
        world=world,
        isps=isps,
        policy=policy,
        blockpage=blockpage,
        tor=tor,
        lantern=lantern,
        urls={
            "youtube": f"http://{YOUTUBE}/",
            "small-unblocked": f"http://{SMALL_UNBLOCKED}/",
        },
    )
