"""Canned experiment worlds (spec-backed wrappers).

:func:`pakistan_case_study` rebuilds the paper's measurement setting
(§2.3, Table 1): a University/home vantage in Pakistan behind two large
ISPs with *different* filtering stacks —

- **ISP-A** (AS 17557): HTTP-level blocking, redirecting blocked URLs to a
  block page;
- **ISP-B** (AS 38193): multi-stage blocking for YouTube (DNS resolution
  to a local host *and* HTTP/HTTPS request drops) and iframe block pages
  for everything else.

Since the scenario-DSL redesign both worlds are *data*: the builders
here are thin wrappers that compile
:func:`repro.scenarios.library.pakistan_spec` /
:func:`~repro.scenarios.library.centralized_spec` and re-bundle the
result into the historical dataclasses.  Same seed, same world,
bit-for-bit (``tests/test_scenario_dsl.py`` holds the golden
fingerprints) — only the construction path changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circumvent import (
    DomainFrontingTransport,
    HttpsTransport,
    IpAsHostnameTransport,
    LanternNetwork,
    LanternTransport,
    PublicDnsTransport,
    StaticProxyTransport,
    TorNetwork,
    TorTransport,
    Transport,
)
from ..scenarios.compiler import ScenarioCompiler
from ..scenarios.library import (
    CLEAN_ASN,
    FRONT,
    ISP_A_ASN,
    ISP_B_ASN,
    LARGE_UNBLOCKED,
    PORN_SITE,
    SMALL_UNBLOCKED,
    TABLE5_SITES,
    YOUTUBE,
    centralized_spec,
    pakistan_spec,
)
from ..simnet.topology import AutonomousSystem, Host
from ..simnet.world import World

__all__ = ["CaseStudyScenario", "pakistan_case_study", "BLOCKED_CATEGORIES"]

BLOCKED_CATEGORIES = ("porn", "political", "religious")


@dataclass
class CaseStudyScenario:
    """Everything the evaluation needs, in one bundle."""

    world: World
    isp_a: AutonomousSystem
    isp_b: AutonomousSystem
    isp_clean: AutonomousSystem
    blockpage_a: Host
    blockpage_b: Host
    tor: TorNetwork
    lantern: LanternNetwork
    proxy_transports: List[StaticProxyTransport]
    front_hostname: str = FRONT
    urls: Dict[str, str] = field(default_factory=dict)

    def make_transports(
        self,
        client_name: str,
        include: Optional[List[str]] = None,
        tor_rotation: float = 600.0,
        tor_exit_location: Optional[str] = None,
    ) -> List[Transport]:
        """Per-client transport set (Tor circuits and Lantern trust are
        per-user state, so these cannot be shared between clients)."""
        from ..circumvent.holdon import HoldOnTransport

        catalogue = {
            "public-dns": lambda: PublicDnsTransport(),
            "hold-on": lambda: HoldOnTransport(),
            "https": lambda: HttpsTransport(),
            "ip-as-hostname": lambda: IpAsHostnameTransport(),
            "domain-fronting": lambda: DomainFrontingTransport(self.front_hostname),
            "tor": lambda: TorTransport(
                self.tor.client(
                    f"tor/{client_name}",
                    rotation_period=tor_rotation,
                    exit_location=tor_exit_location,
                )
            ),
            "lantern": lambda: LanternTransport(
                self.lantern, user_stream=f"lantern/{client_name}"
            ),
        }
        names = include if include is not None else list(catalogue)
        return [catalogue[name]() for name in names]

    def tor_transport(self, client_name: str, **kwargs) -> TorTransport:
        return self.make_transports(client_name, include=["tor"], **kwargs)[0]

    def lantern_transport(self, client_name: str) -> LanternTransport:
        return self.make_transports(client_name, include=["lantern"])[0]


def pakistan_case_study(
    seed: int = 1,
    n_tor_relays: int = 40,
    n_lantern_proxies: int = 10,
    with_proxy_fleet: bool = True,
) -> CaseStudyScenario:
    """Build the full case-study world (§2.3 / Table 1 / §7)."""
    spec = pakistan_spec(
        seed=seed,
        n_tor_relays=n_tor_relays,
        n_lantern_proxies=n_lantern_proxies,
        with_proxy_fleet=with_proxy_fleet,
    )
    compiled = ScenarioCompiler().compile(spec)
    return CaseStudyScenario(
        world=compiled.world,
        isp_a=compiled.isps[ISP_A_ASN],
        isp_b=compiled.isps[ISP_B_ASN],
        isp_clean=compiled.isps[CLEAN_ASN],
        blockpage_a=compiled.blockpages["block.isp-a.pk"],
        blockpage_b=compiled.blockpages["block.isp-b.pk"],
        tor=compiled.tor,
        lantern=compiled.lantern,
        proxy_transports=compiled.proxies,
        urls=dict(spec.urls),
    )


@dataclass
class CentralizedScenario:
    """A country with *centralized* censorship (§2): every ISP shares one
    national filtering policy, so all traffic of the same type sees the
    same kind of blocking — the contrast case to the distributed
    Pakistan world above."""

    world: World
    isps: List[AutonomousSystem]
    policy: object  # the shared CensorPolicy
    blockpage: Host
    tor: TorNetwork
    lantern: LanternNetwork
    urls: Dict[str, str] = field(default_factory=dict)

    def make_transports(self, client_name: str) -> List[Transport]:
        return [
            PublicDnsTransport(),
            HttpsTransport(),
            TorTransport(self.tor.client(f"tor/{client_name}")),
            LanternTransport(self.lantern, user_stream=f"lantern/{client_name}"),
        ]


def centralized_country(
    seed: int = 1, n_isps: int = 4, country: str = "pakistan"
) -> CentralizedScenario:
    """Build a centrally-censored country: one policy object shared by
    every ISP (think Iran/South Korea in §2)."""
    spec = centralized_spec(seed=seed, n_isps=n_isps, country=country)
    compiled = ScenarioCompiler().compile(spec)
    return CentralizedScenario(
        world=compiled.world,
        isps=[compiled.isps[a.asn] for a in spec.ases],
        policy=compiled.policies["national"],
        blockpage=compiled.blockpages["block.national-filter.example"],
        tor=compiled.tor,
        lantern=compiled.lantern,
        urls=dict(spec.urls),
    )
