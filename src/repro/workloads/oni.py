"""ONI-style blocking-type distributions (Figure 2).

The paper's Figure 2 plots, for eight ASes in Yemen, Indonesia, Vietnam,
and Kyrgyzstan, the fraction of censored pages experiencing each blocking
symptom: ``No DNS``, ``DNS Redir``, ``No HTTP Resp``, ``RST``, and
``Block Page w/o Redir`` — motivating C-Saw with the heterogeneity of
mechanisms across ISPs and countries.

Without the (retired) ONI dataset we *regenerate the setting*: each AS
gets a ground-truth mechanism mixture qualitatively matched to the
figure, a censored-domain list is materialized behind it, and the
reported fractions are produced by running C-Saw's own detection
flowchart from a vantage inside each AS — so the bench exercises the real
measurement pipeline, not just the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..censor.actions import (
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
)
from ..censor.blockpages import DEFAULT_BLOCKPAGE_HTML
from ..censor.policy import CensorPolicy, Matcher, Rule
from ..core.detection import measure_direct_path
from ..core.records import BlockType
from ..simnet.web import WebPage
from ..simnet.world import World

__all__ = ["OniAsSpec", "ONI_AS_SPECS", "OniSweep", "run_oni_sweep", "FIG2_CATEGORIES"]

FIG2_CATEGORIES = [
    "No DNS",
    "DNS Redir",
    "No HTTP Resp",
    "RST",
    "Block Page w/o Redir",
]


@dataclass(frozen=True)
class OniAsSpec:
    """Ground-truth blocking-type mixture for one AS (sums to 1)."""

    asn: int
    country: str
    mix: Tuple[float, float, float, float, float]  # FIG2_CATEGORIES order

    def __post_init__(self) -> None:
        if abs(sum(self.mix) - 1.0) > 1e-6:
            raise ValueError(f"mix must sum to 1: {self.mix!r}")


# Qualitative shapes from Figure 2: Yemen heavy on block pages, Indonesian
# ASes dominated by DNS redirection, Vietnam mostly silent DNS drops, and
# Kyrgyzstan showing RSTs alongside HTTP drops.
ONI_AS_SPECS: List[OniAsSpec] = [
    OniAsSpec(30873, "Yemen", (0.05, 0.10, 0.15, 0.05, 0.65)),
    OniAsSpec(4795, "Indonesia", (0.05, 0.70, 0.10, 0.00, 0.15)),
    OniAsSpec(18403, "Vietnam", (0.70, 0.05, 0.20, 0.05, 0.00)),
    OniAsSpec(45543, "Vietnam", (0.55, 0.10, 0.30, 0.05, 0.00)),
    OniAsSpec(45899, "Vietnam", (0.60, 0.05, 0.25, 0.10, 0.00)),
    OniAsSpec(8511, "Kyrgyzstan", (0.10, 0.10, 0.30, 0.40, 0.10)),
    OniAsSpec(12997, "Indonesia", (0.10, 0.55, 0.10, 0.05, 0.20)),
    OniAsSpec(8449, "Yemen", (0.10, 0.15, 0.20, 0.05, 0.50)),
]

# Map observed BlockTypes onto the figure's categories.
_CATEGORY_OF = {
    BlockType.DNS_TIMEOUT: "No DNS",
    BlockType.DNS_NXDOMAIN: "No DNS",
    BlockType.DNS_SERVFAIL: "No DNS",
    BlockType.DNS_REFUSED: "No DNS",
    BlockType.DNS_REDIRECT: "DNS Redir",
    BlockType.IP_TIMEOUT: "No HTTP Resp",
    BlockType.HTTP_TIMEOUT: "No HTTP Resp",
    BlockType.IP_RST: "RST",
    BlockType.HTTP_RST: "RST",
    BlockType.BLOCK_PAGE: "Block Page w/o Redir",
}


class OniSweep:
    """Builds the eight-AS world and measures each from the inside."""

    def __init__(self, seed: int = 13, domains_per_as: int = 60):
        self.seed = seed
        self.domains_per_as = domains_per_as
        self.world = World(seed=seed)
        self._specs = ONI_AS_SPECS
        self._domains: Dict[int, List[str]] = {}
        self._built = False

    def build(self) -> "OniSweep":
        world = self.world
        world.add_public_resolver()
        rng = world.rngs.stream("oni")

        html = DEFAULT_BLOCKPAGE_HTML
        blockpage = world.web.add_site(
            "block.oni.example",
            location="pakistan",
            supports_https=False,
            catch_all=lambda path: WebPage(
                url=f"http://block.oni.example{path}",
                size_bytes=max(900, len(html)),
                html=html,
                category="blockpage",
            ),
        )

        category_rules = {
            "No DNS": lambda m, ips: Rule(
                matcher=m, dns=DnsVerdict(DnsAction.TIMEOUT)
            ),
            "DNS Redir": lambda m, ips: Rule(
                matcher=m,
                dns=DnsVerdict(DnsAction.REDIRECT, redirect_ip="10.77.77.77"),
                http=HttpVerdict(HttpAction.DROP),
            ),
            "No HTTP Resp": lambda m, ips: Rule(
                matcher=m, ip=IpVerdict(IpAction.DROP)
            ),
            "RST": lambda m, ips: Rule(matcher=m, ip=IpVerdict(IpAction.RST)),
            "Block Page w/o Redir": lambda m, ips: Rule(
                matcher=m,
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_IFRAME, blockpage_ip=blockpage.host.ip
                ),
            ),
        }

        for spec in self._specs:
            domains = []
            policy = CensorPolicy(name=f"AS{spec.asn}")
            for index in range(self.domains_per_as):
                hostname = f"censored{index}.as{spec.asn}.example"
                world.web.add_site(hostname, location="us-east")
                world.web.add_page(f"http://{hostname}/", size_bytes=120_000)
                domains.append(hostname)
                category = rng.choices(FIG2_CATEGORIES, weights=spec.mix)[0]
                host_ip = world.network.hosts_by_name[hostname].ip
                matcher = Matcher(domains={hostname}, ips={host_ip})
                policy.add_rule(category_rules[category](matcher, {host_ip}))
            self._domains[spec.asn] = domains
            world.add_isp(spec.asn, f"AS{spec.asn}", country=spec.country,
                          policy=policy)
        self._built = True
        return self

    def run(self) -> Dict[int, Dict[str, float]]:
        """Measure every censored domain from inside its AS.

        Returns {asn: {category: fraction}} as C-Saw's detector saw it.
        """
        if not self._built:
            self.build()
        world = self.world
        fractions: Dict[int, Dict[str, float]] = {}
        for spec in self._specs:
            isp = world.network.ases[spec.asn]
            client, access = world.add_client(f"oni-probe-{spec.asn}", [isp])
            counts = {category: 0 for category in FIG2_CATEGORIES}
            measured = 0
            for domain in self._domains[spec.asn]:
                ctx = world.new_ctx(client, access, stream=f"oni/{spec.asn}")
                outcome = world.run_process(
                    measure_direct_path(world, ctx, f"http://{domain}/")
                )
                if not outcome.stages:
                    continue
                category = _classify(outcome.stages)
                if category is not None:
                    counts[category] += 1
                    measured += 1
            fractions[spec.asn] = {
                category: (counts[category] / measured if measured else 0.0)
                for category in FIG2_CATEGORIES
            }
        return fractions

    def ground_truth(self) -> Dict[int, Dict[str, float]]:
        return {
            spec.asn: dict(zip(FIG2_CATEGORIES, spec.mix)) for spec in self._specs
        }

    def spec_for(self, asn: int) -> OniAsSpec:
        for spec in self._specs:
            if spec.asn == asn:
                return spec
        raise KeyError(asn)


def _classify(stages: List[BlockType]) -> Optional[str]:
    """First-stage symptom decides the Figure-2 category (DNS beats later
    stages, mirroring how ONI labeled multi-symptom measurements)."""
    for stage in stages:
        category = _CATEGORY_OF.get(stage)
        if category is not None:
            return category
    return None


def run_oni_sweep(seed: int = 13, domains_per_as: int = 60):
    sweep = OniSweep(seed=seed, domains_per_as=domains_per_as)
    return sweep.run(), sweep.ground_truth()
