"""Workloads: synthetic corpus, canned scenarios, pilot study, events."""

from .corpus import CATEGORY_MIX, Corpus, SiteSpec, build_corpus
from .events import (
    BlockingEvent,
    BlockingWave,
    WaveObservation,
    run_blocking_wave,
)
from .oni import FIG2_CATEGORIES, ONI_AS_SPECS, OniSweep, run_oni_sweep
from .pilot import (
    PilotConfig,
    PilotReport,
    PilotStudy,
    pilot_sweep,
    run_pilot,
    summarize_sweep,
)
from .scenarios import (
    BLOCKED_CATEGORIES,
    CaseStudyScenario,
    CentralizedScenario,
    centralized_country,
    pakistan_case_study,
)

__all__ = [
    "CATEGORY_MIX",
    "Corpus",
    "SiteSpec",
    "build_corpus",
    "BlockingEvent",
    "BlockingWave",
    "WaveObservation",
    "run_blocking_wave",
    "FIG2_CATEGORIES",
    "ONI_AS_SPECS",
    "OniSweep",
    "run_oni_sweep",
    "PilotConfig",
    "PilotReport",
    "PilotStudy",
    "pilot_sweep",
    "run_pilot",
    "summarize_sweep",
    "BLOCKED_CATEGORIES",
    "CaseStudyScenario",
    "CentralizedScenario",
    "centralized_country",
    "pakistan_case_study",
]
