"""Synthetic web corpus: an Alexa-like population of sites.

C-Saw measures whatever its users browse, so experiments need a browsable
web: sites with Zipf-distributed popularity, categories (the censored ones
— porn, political, religious — mirror the paper's Pakistan case study),
multiple pages per site, and embedded objects served partly from shared
CDN hosts (the vector through which the pilot study discovered CDN
blocking, §7.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..simnet.web import EmbeddedRef
from ..simnet.world import World

__all__ = ["SiteSpec", "Corpus", "build_corpus", "CATEGORY_MIX"]

CATEGORY_MIX: List[Tuple[str, float]] = [
    ("general", 0.30),
    ("news", 0.15),
    ("social", 0.10),
    ("video", 0.10),
    ("shopping", 0.10),
    ("porn", 0.10),
    ("political", 0.08),
    ("religious", 0.07),
]

_SITE_LOCATIONS = [
    ("us-east", 0.3),
    ("us-west", 0.1),
    ("uk", 0.1),
    ("netherlands", 0.1),
    ("germany", 0.1),
    ("global-anycast", 0.2),
    ("singapore", 0.1),
]


@dataclass
class SiteSpec:
    """Blueprint for one site before materialization."""

    hostname: str
    category: str
    rank: int  # 1 = most popular
    location: str
    page_paths: List[str]
    page_sizes: Dict[str, int]
    cdn_refs: Dict[str, List[EmbeddedRef]]

    @property
    def base_url(self) -> str:
        return f"http://{self.hostname}/"

    def page_urls(self) -> List[str]:
        return [f"http://{self.hostname}{path}" for path in self.page_paths]


@dataclass
class Corpus:
    """A generated site population, optionally materialized into a world."""

    sites: List[SiteSpec]
    cdn_hostnames: List[str]
    zipf_exponent: float = 0.9
    _weights: Optional[List[float]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._weights = [
            1.0 / (site.rank ** self.zipf_exponent) for site in self.sites
        ]

    def sites_in_category(self, category: str) -> List[SiteSpec]:
        return [s for s in self.sites if s.category == category]

    def domains_in_categories(self, categories: Sequence[str]) -> List[str]:
        wanted = set(categories)
        return [s.hostname for s in self.sites if s.category in wanted]

    def sample_site(self, rng: random.Random) -> SiteSpec:
        return rng.choices(self.sites, weights=self._weights)[0]

    def sample_page_url(self, rng: random.Random) -> str:
        site = self.sample_site(rng)
        path = rng.choice(site.page_paths)
        return f"http://{site.hostname}{path}"

    def materialize(self, world: World) -> None:
        """Create every site, page, and CDN node inside ``world``."""
        for cdn in self.cdn_hostnames:
            if world.web.site_for(cdn) is None:
                world.web.add_site(
                    cdn,
                    location="global-anycast",
                    bandwidth_bps=200e6,
                    extra_rtt=0.002,
                    catch_all=_cdn_object_factory(cdn),
                )
        for spec in self.sites:
            if world.web.site_for(spec.hostname) is not None:
                continue
            world.web.add_site(
                spec.hostname,
                location=spec.location,
                supports_https=True,
                supports_fronting=spec.category in ("video", "social"),
            )
            for path in spec.page_paths:
                world.web.add_page(
                    f"http://{spec.hostname}{path}",
                    size_bytes=spec.page_sizes[path],
                    embedded=spec.cdn_refs.get(path, []),
                    category=spec.category,
                )


def _cdn_object_factory(cdn_hostname: str):
    import zlib

    from ..simnet.web import WebPage

    def factory(path: str) -> WebPage:
        # Deterministic pseudo-size derived from the path (stable across
        # processes, unlike built-in hash()).
        size = 8_000 + (zlib.crc32(f"{cdn_hostname}{path}".encode()) % 40_000)
        return WebPage(
            url=f"http://{cdn_hostname}{path}",
            size_bytes=size,
            html="",  # binary-ish object; html irrelevant
            category="cdn-object",
        )

    return factory


def build_corpus(
    n_sites: int = 300,
    seed: int = 0,
    n_cdns: int = 3,
    category_mix: Optional[List[Tuple[str, float]]] = None,
    cdn_probability: float = 0.5,
) -> Corpus:
    """Generate ``n_sites`` site blueprints (deterministic in ``seed``)."""
    rng = random.Random(seed)
    mix = category_mix or CATEGORY_MIX
    categories = [c for c, _w in mix]
    cat_weights = [w for _c, w in mix]
    loc_names = [l for l, _w in _SITE_LOCATIONS]
    loc_weights = [w for _l, w in _SITE_LOCATIONS]
    cdns = [f"cdn{i}.contentcache.net" for i in range(n_cdns)]

    tlds = ["com", "org", "net", "info", "pk"]
    sites = []
    for rank in range(1, n_sites + 1):
        category = rng.choices(categories, weights=cat_weights)[0]
        hostname = f"www.{category}{rank}.{rng.choice(tlds)}"
        n_pages = rng.randint(1, 6)
        paths = ["/"] + [
            f"/{rng.choice(['news', 'watch', 'article', 'page', 'media'])}/{i}"
            for i in range(1, n_pages)
        ]
        sizes = {}
        cdn_refs: Dict[str, List[EmbeddedRef]] = {}
        for path in paths:
            sizes[path] = int(
                min(1_500_000, max(10_000, rng.lognormvariate(11.4, 0.8)))
            )
            refs = []
            if rng.random() < cdn_probability:
                for obj in range(rng.randint(1, 5)):
                    cdn = rng.choice(cdns)
                    refs.append(
                        EmbeddedRef(
                            url=f"http://{cdn}/{hostname}{path if path != '/' else ''}/obj{obj}.jpg",
                            size_bytes=rng.randint(5_000, 60_000),
                        )
                    )
            if refs:
                cdn_refs[path] = refs
        sites.append(
            SiteSpec(
                hostname=hostname,
                category=category,
                rank=rank,
                location=rng.choices(loc_names, weights=loc_weights)[0],
                page_paths=paths,
                page_sizes=sizes,
                cdn_refs=cdn_refs,
            )
        )
    return Corpus(sites=sites, cdn_hostnames=cdns)
