"""“C-Saw in the wild” (§7.5): a time-varying blocking wave.

During the November 2017 protests, Pakistani ISPs blocked Twitter and
Instagram — each AS with its own mechanism, at its own time.  C-Saw users
who tried the services produced a timeline of (time, AS, service,
symptom) measurements in the global database.

:func:`run_blocking_wave` replays that.  Since the scenario-DSL redesign
the wave world is data — :func:`repro.scenarios.library.wave_spec` —
and :class:`BlockingWave` is a compatibility wrapper that compiles the
spec and drives it through :mod:`repro.scenarios.runner`; same-seed
output is bit-identical to the pre-redesign imperative builder (the
golden fingerprints in ``tests/data/scenario_golden.json`` prove it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core import CSawClient, ServerDB
from ..scenarios.compiler import CompiledScenario, ScenarioCompiler
from ..scenarios.library import INSTAGRAM, TWITTER, WAVE_ASNS, wave_spec
from ..scenarios.runner import SYMPTOM_LABELS, drive_clients, symptom_for
from ..scenarios.spec import EventSpec, SpecError
from ..simnet.rng import RngRegistry
from ..simnet.world import World

__all__ = ["BlockingEvent", "WaveObservation", "BlockingWave", "run_blocking_wave"]

# Symptom labels in the paper's snapshot vocabulary (now shared with the
# scenario runner; kept under the historical name for importers).
_SYMPTOM_LABEL = SYMPTOM_LABELS

# Legacy shorthand mechanisms -> scenario-DSL mechanism lists.
_LEGACY_MECHANISMS = {
    "http-drop": ("http-drop",),
    "blockpage": ("blockpage-redirect",),
    "dns": ("dns-redirect", "http-drop"),
}


@dataclass(frozen=True)
class BlockingEvent:
    """One censor action: an AS starts blocking a domain at a given time."""

    time: float
    asn: int
    domain: str
    mechanism: str  # "http-drop" | "blockpage" | "dns"

    def to_spec(self) -> EventSpec:
        mechanisms = _LEGACY_MECHANISMS.get(self.mechanism)
        if mechanisms is None:
            raise SpecError(f"unknown mechanism: {self.mechanism!r}")
        return EventSpec(
            time=self.time,
            asn=self.asn,
            domain=self.domain,
            mechanisms=mechanisms,
            redirect_ip="10.66.66.66",
            label=self.domain,
        )


@dataclass(frozen=True)
class WaveObservation:
    """One detection as it landed in the global DB."""

    detected_at: float
    asn: int
    service: str
    symptom: str

    def render(self) -> str:
        hours = self.detected_at / 3600.0
        return (
            f"{self.service} found blocked at t+{hours:.1f}h from "
            f"AS {self.asn} (Response: {self.symptom})"
        )


class BlockingWave:
    """Builds the four-AS world (via :func:`wave_spec`) and replays the
    blocking timeline."""

    DEFAULT_ASNS = WAVE_ASNS

    def __init__(
        self,
        seed: int = 5,
        users_per_as: int = 4,
        browse_interval: float = 1800.0,
        duration: float = 36 * 3600.0,
    ):
        self.seed = seed
        self.users_per_as = users_per_as
        self.browse_interval = browse_interval
        self.duration = duration
        self.events: List[BlockingEvent] = []
        self.world: Optional[World] = None
        self.server: Optional[ServerDB] = None
        self.clients: List[CSawClient] = []
        self._compiled: Optional[CompiledScenario] = None

    def default_timeline(self) -> List[BlockingEvent]:
        """The paper's snapshot: Twitter first (two ASes, different
        mechanisms), Instagram the next morning via DNS in three ASes."""
        h = 3600.0
        return [
            BlockingEvent(time=13.5 * h, asn=38193, domain=TWITTER, mechanism="http-drop"),
            BlockingEvent(time=13.55 * h, asn=17557, domain=TWITTER, mechanism="blockpage"),
            BlockingEvent(time=28.8 * h, asn=38193, domain=INSTAGRAM, mechanism="dns"),
            BlockingEvent(time=33.1 * h, asn=59257, domain=INSTAGRAM, mechanism="dns"),
            BlockingEvent(time=33.5 * h, asn=45773, domain=INSTAGRAM, mechanism="dns"),
        ]

    # -- construction ---------------------------------------------------------

    def build(self, events: Optional[List[BlockingEvent]] = None) -> "BlockingWave":
        self.events = events if events is not None else self.default_timeline()
        spec = wave_spec(
            seed=self.seed,
            users_per_as=self.users_per_as,
            browse_interval=self.browse_interval,
            duration=self.duration,
            events=[event.to_spec() for event in self.events],
        )
        self._compiled = ScenarioCompiler().compile(spec)
        self.world = self._compiled.world
        self.server = self._compiled.server
        self.clients = self._compiled.clients
        return self

    # -- driving -----------------------------------------------------------------

    def run(self) -> List[WaveObservation]:
        if not self.clients:
            self.build()
        drive_clients(self._compiled)
        return self.observations()

    # -- results -------------------------------------------------------------------

    def observations(self) -> List[WaveObservation]:
        found = []
        for entry in self.server.all_entries():
            service = "Twitter" if "twitter" in entry.url else "Instagram"
            found.append(
                WaveObservation(
                    detected_at=entry.first_measured_at,
                    asn=entry.asn,
                    service=service,
                    symptom=symptom_for(entry.stages),
                )
            )
        return sorted(found, key=lambda o: o.detected_at)


def run_blocking_wave(seed: int = 5, **kwargs) -> List[WaveObservation]:
    return BlockingWave(seed=seed, **kwargs).run()


def staggered_rollout(
    domains: List[str],
    asns: List[int],
    start: float,
    lag: float,
    mechanism: str = "blockpage",
    rng=None,
) -> List[BlockingEvent]:
    """A national directive enforced with per-ISP lag.

    Real distributed censorship rolls out unevenly: the regulator issues
    one order, each ISP applies it hours apart (the §7.5 snapshot shows
    exactly this).  Returns one :class:`BlockingEvent` per (AS, domain),
    each AS draws its lag as ``start + U[0, lag]``.  Pass a seeded
    ``random.Random`` (or an ``RngRegistry`` stream) to tie the draws to
    an experiment seed; the default is the registry's seed-0
    ``"staggered-rollout"`` stream, so even the no-arg call is
    reproducible and covered by CSL001.  (The declarative counterpart is
    a ``[rolling]`` section in a scenario spec.)
    """
    if rng is None:
        rng = RngRegistry(seed=0).stream("staggered-rollout")
    events = []
    for asn in asns:
        offset = rng.uniform(0.0, lag)
        for domain in domains:
            events.append(
                BlockingEvent(
                    time=start + offset,
                    asn=asn,
                    domain=domain,
                    mechanism=mechanism,
                )
            )
    return events
