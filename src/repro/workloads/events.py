"""“C-Saw in the wild” (§7.5): a time-varying blocking wave.

During the November 2017 protests, Pakistani ISPs blocked Twitter and
Instagram — each AS with its own mechanism, at its own time.  C-Saw users
who tried the services produced a timeline of (time, AS, service,
symptom) measurements in the global database.

:func:`run_blocking_wave` replays that: four ASes, per-AS blocking events
scheduled mid-simulation, a handful of users per AS browsing both
services, and the resulting global-DB snapshot rendered as the paper's
bullet list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..censor.actions import DnsAction, DnsVerdict, HttpAction, HttpVerdict
from ..censor.blockpages import DEFAULT_BLOCKPAGE_HTML
from ..censor.policy import CensorPolicy, Matcher, Rule
from ..circumvent import (
    HttpsTransport,
    LanternNetwork,
    LanternTransport,
    PublicDnsTransport,
    TorNetwork,
    TorTransport,
)
from ..core import CSawClient, CSawConfig, ServerDB
from ..simnet.rng import RngRegistry
from ..simnet.web import WebPage
from ..simnet.world import World

__all__ = ["BlockingEvent", "WaveObservation", "BlockingWave", "run_blocking_wave"]

TWITTER = "twitter.com"
INSTAGRAM = "www.instagram.com"

# Symptom labels in the paper's snapshot vocabulary.
_SYMPTOM_LABEL = {
    "http-get-timeout": "HTTP_GET_TIMEOUT",
    "block-page": "HTTP_GET_BLOCKPAGE",
    "dns-redirect": "DNS blocking",
    "dns-nxdomain": "DNS blocking",
    "dns-servfail": "DNS blocking",
    "dns-timeout": "DNS blocking",
    "tcp-timeout": "TCP/IP blocking",
}


@dataclass(frozen=True)
class BlockingEvent:
    """One censor action: an AS starts blocking a domain at a given time."""

    time: float
    asn: int
    domain: str
    mechanism: str  # "http-drop" | "blockpage" | "dns"


@dataclass(frozen=True)
class WaveObservation:
    """One detection as it landed in the global DB."""

    detected_at: float
    asn: int
    service: str
    symptom: str

    def render(self) -> str:
        hours = self.detected_at / 3600.0
        return (
            f"{self.service} found blocked at t+{hours:.1f}h from "
            f"AS {self.asn} (Response: {self.symptom})"
        )


class BlockingWave:
    """Builds the four-AS world and replays the blocking timeline."""

    DEFAULT_ASNS = (38193, 17557, 59257, 45773)

    def __init__(
        self,
        seed: int = 5,
        users_per_as: int = 4,
        browse_interval: float = 1800.0,
        duration: float = 36 * 3600.0,
    ):
        self.seed = seed
        self.users_per_as = users_per_as
        self.browse_interval = browse_interval
        self.duration = duration
        self.world = World(seed=seed)
        self.server = ServerDB(entry_ttl=None)
        self.events: List[BlockingEvent] = []
        self._policies: Dict[int, CensorPolicy] = {}
        self._blockpage_ip: Optional[str] = None
        self.clients: List[CSawClient] = []

    def default_timeline(self) -> List[BlockingEvent]:
        """The paper's snapshot: Twitter first (two ASes, different
        mechanisms), Instagram the next morning via DNS in three ASes."""
        h = 3600.0
        return [
            BlockingEvent(time=13.5 * h, asn=38193, domain=TWITTER, mechanism="http-drop"),
            BlockingEvent(time=13.55 * h, asn=17557, domain=TWITTER, mechanism="blockpage"),
            BlockingEvent(time=28.8 * h, asn=38193, domain=INSTAGRAM, mechanism="dns"),
            BlockingEvent(time=33.1 * h, asn=59257, domain=INSTAGRAM, mechanism="dns"),
            BlockingEvent(time=33.5 * h, asn=45773, domain=INSTAGRAM, mechanism="dns"),
        ]

    # -- construction ---------------------------------------------------------

    def build(self, events: Optional[List[BlockingEvent]] = None) -> "BlockingWave":
        world = self.world
        self.events = events if events is not None else self.default_timeline()
        world.add_public_resolver()

        for service, size in ((TWITTER, 250_000), (INSTAGRAM, 500_000)):
            world.web.add_site(service, location="us-east", bandwidth_bps=300e6)
            world.web.add_page(f"http://{service}/", size_bytes=size)

        html = DEFAULT_BLOCKPAGE_HTML
        site = world.web.add_site(
            "block.pta.example",
            location="pakistan",
            supports_https=False,
            catch_all=lambda path: WebPage(
                url=f"http://block.pta.example{path}",
                size_bytes=max(900, len(html)),
                html=html,
                category="blockpage",
            ),
        )
        self._blockpage_ip = site.host.ip

        tor = TorNetwork.build(world, n_relays=30)
        lantern = LanternNetwork.build(world, n_proxies=8)

        for asn in self.DEFAULT_ASNS:
            policy = CensorPolicy(name=f"AS{asn}")
            self._policies[asn] = policy
            isp = world.add_isp(asn, f"AS{asn}", policy=policy)
            for index in range(self.users_per_as):
                name = f"wave-user-{asn}-{index}"
                client = CSawClient(
                    world,
                    name,
                    [isp],
                    transports=[
                        PublicDnsTransport(),
                        HttpsTransport(),
                        TorTransport(tor.client(f"tor/{name}")),
                        LanternTransport(lantern, user_stream=f"lantern/{name}"),
                    ],
                    server_db=self.server,
                    config=CSawConfig(
                        record_ttl=4 * 3600.0,  # short TTL: re-measure often
                        report_interval=1800.0,
                        download_interval=1800.0,
                    ),
                )
                self.clients.append(client)
        return self

    def _rule_for(self, event: BlockingEvent) -> Rule:
        matcher = Matcher(domains={event.domain})
        if event.mechanism == "http-drop":
            return Rule(matcher=matcher, http=HttpVerdict(HttpAction.DROP),
                        label=event.domain)
        if event.mechanism == "blockpage":
            return Rule(
                matcher=matcher,
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_REDIRECT, blockpage_ip=self._blockpage_ip
                ),
                label=event.domain,
            )
        if event.mechanism == "dns":
            return Rule(
                matcher=matcher,
                dns=DnsVerdict(DnsAction.REDIRECT, redirect_ip="10.66.66.66"),
                http=HttpVerdict(HttpAction.DROP),
                label=event.domain,
            )
        raise ValueError(f"unknown mechanism: {event.mechanism!r}")

    # -- driving -----------------------------------------------------------------

    def _censor_process(self):
        env = self.world.env
        for event in sorted(self.events, key=lambda e: e.time):
            yield env.timeout(max(0.0, event.time - env.now))
            self._policies[event.asn].add_rule(self._rule_for(event))

    def _user_process(self, client: CSawClient, rng):
        env = self.world.env
        yield env.timeout(rng.uniform(0, 600))
        yield from client.install()
        client.start_background(until=self.duration)
        while env.now < self.duration:
            yield env.timeout(rng.expovariate(1.0 / self.browse_interval))
            url = f"http://{rng.choice([TWITTER, INSTAGRAM])}/"
            response = yield from client.request(url)
            yield response.measurement_process

    def run(self) -> List[WaveObservation]:
        if not self.clients:
            self.build()
        world = self.world
        world.env.process(self._censor_process())
        for index, client in enumerate(self.clients):
            rng = world.rngs.fork(f"wave-{index}").stream("behaviour")
            world.env.process(self._user_process(client, rng))
        world.env.run()
        return self.observations()

    # -- results -------------------------------------------------------------------

    def observations(self) -> List[WaveObservation]:
        found = []
        for entry in self.server.all_entries():
            service = "Twitter" if "twitter" in entry.url else "Instagram"
            symptom = "unknown"
            for stage in entry.stages:
                label = _SYMPTOM_LABEL.get(stage.value)
                if label is not None:
                    symptom = label
                    if label == "DNS blocking":
                        break
            found.append(
                WaveObservation(
                    detected_at=entry.first_measured_at,
                    asn=entry.asn,
                    service=service,
                    symptom=symptom,
                )
            )
        return sorted(found, key=lambda o: o.detected_at)


def run_blocking_wave(seed: int = 5, **kwargs) -> List[WaveObservation]:
    return BlockingWave(seed=seed, **kwargs).run()


def staggered_rollout(
    domains: List[str],
    asns: List[int],
    start: float,
    lag: float,
    mechanism: str = "blockpage",
    rng=None,
) -> List[BlockingEvent]:
    """A national directive enforced with per-ISP lag.

    Real distributed censorship rolls out unevenly: the regulator issues
    one order, each ISP applies it hours apart (the §7.5 snapshot shows
    exactly this).  Returns one :class:`BlockingEvent` per (AS, domain),
    each AS draws its lag as ``start + U[0, lag]``.  Pass a seeded
    ``random.Random`` (or an ``RngRegistry`` stream) to tie the draws to
    an experiment seed; the default is the registry's seed-0
    ``"staggered-rollout"`` stream, so even the no-arg call is
    reproducible and covered by CSL001.
    """
    if rng is None:
        rng = RngRegistry(seed=0).stream("staggered-rollout")
    events = []
    for asn in asns:
        offset = rng.uniform(0.0, lag)
        for domain in domains:
            events.append(
                BlockingEvent(
                    time=start + offset,
                    asn=asn,
                    domain=domain,
                    mechanism=mechanism,
                )
            )
    return events
