"""Parallel experiment runner: fan independent trials across processes.

Every multi-configuration experiment in this repo (ablation arms, Figure-5
redundancy modes, multi-seed pilot sweeps) has the same shape: N fully
independent trials, each building its own world from its own seed, whose
results are then merged into one table.  This module gives that shape a
first-class API:

- :class:`TrialSpec` names one trial — a picklable top-level callable plus
  kwargs;
- :func:`derive_seed` maps ``(root_seed, *parts)`` to a stable 63-bit seed
  via SHA-256, so per-trial seeds depend only on the trial's identity,
  never on scheduling order or worker count;
- :func:`run_trials` executes the specs — across a
  ``ProcessPoolExecutor`` when more than one worker is available, serially
  otherwise — and returns :class:`TrialResult`\\ s **in spec order** with
  wall-clock timings and captured tracebacks.

Determinism contract: results are identical for any worker count, because
each trial carries its own seed and no state is shared between trials.
Worker count resolves from the ``REPRO_RUNNER_WORKERS`` environment
variable, falling back to ``os.cpu_count()``.

Trial callables must be importable top-level functions (the pool pickles
them by reference); closures and lambdas only work with ``workers=1``.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "TrialSpec",
    "TrialResult",
    "RunnerError",
    "derive_seed",
    "resolve_workers",
    "run_trials",
    "run_seed_sweep",
    "merge_values",
]

_WORKERS_ENV = "REPRO_RUNNER_WORKERS"


def derive_seed(root_seed: int, *parts: object) -> int:
    """Stable 63-bit seed for a trial identified by ``(root_seed, *parts)``.

    SHA-256 over the textual identity, so adding/removing/reordering
    *other* trials never changes this trial's seed — the property that
    keeps sweep outputs reproducible as experiments grow.
    """
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode())
    for part in parts:
        digest.update(b"\x1f")
        digest.update(str(part).encode())
    return int.from_bytes(digest.digest()[:8], "big") >> 1


@dataclass(frozen=True)
class TrialSpec:
    """One independent unit of work."""

    name: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial: value or captured traceback, plus timing."""

    name: str
    value: Any = None
    seconds: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class RunnerError(RuntimeError):
    """Raised by :func:`merge_values` when any trial failed."""

    def __init__(self, failures: Sequence[TrialResult]):
        self.failures = list(failures)
        names = ", ".join(f.name for f in self.failures)
        detail = "\n\n".join(f.error or "" for f in self.failures)
        super().__init__(f"{len(self.failures)} trial(s) failed: {names}\n{detail}")


def _execute(spec: TrialSpec) -> TrialResult:
    """Run one spec, never letting the exception cross the process boundary
    raw (tracebacks pickle reliably; arbitrary exception objects may not)."""
    start = time.perf_counter()
    try:
        value = spec.fn(**spec.kwargs)
    except Exception:
        return TrialResult(
            name=spec.name,
            seconds=time.perf_counter() - start,
            error=traceback.format_exc(),
        )
    return TrialResult(
        name=spec.name, value=value, seconds=time.perf_counter() - start
    )


def resolve_workers(n_trials: int, workers: Optional[int] = None) -> int:
    """Effective worker count: explicit arg > env var > cpu count."""
    if workers is None:
        env = os.environ.get(_WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{_WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    return max(1, min(workers, n_trials))


def run_trials(
    specs: Sequence[TrialSpec], workers: Optional[int] = None
) -> List[TrialResult]:
    """Execute ``specs`` and return results in spec order.

    ``workers=1`` (or a single spec, or a 1-CPU host) runs everything in
    this process — no pool overhead, closures allowed.  Anything greater
    fans out over a ``ProcessPoolExecutor``; ``executor.map`` preserves
    input order regardless of completion order.
    """
    specs = list(specs)
    if not specs:
        return []
    n_workers = resolve_workers(len(specs), workers)
    if n_workers == 1:
        return [_execute(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_execute, specs))


def run_seed_sweep(
    fn: Callable[..., Any],
    root_seed: int,
    n_trials: int,
    name: str = "trial",
    workers: Optional[int] = None,
    **kwargs: Any,
) -> List[TrialResult]:
    """Run ``fn(seed=..., **kwargs)`` for ``n_trials`` derived seeds."""
    specs = [
        TrialSpec(
            name=f"{name}[{index}]",
            fn=fn,
            kwargs={"seed": derive_seed(root_seed, name, index), **kwargs},
        )
        for index in range(n_trials)
    ]
    return run_trials(specs, workers=workers)


def merge_values(results: Iterable[TrialResult]) -> Dict[str, Any]:
    """``{name: value}`` over successful results; raise if any failed."""
    results = list(results)
    failures = [r for r in results if not r.ok]
    if failures:
        raise RunnerError(failures)
    return {r.name: r.value for r in results}
