"""Parallel experiment runner (see :mod:`repro.runner.core`)."""

from .core import (
    RunnerError,
    TrialResult,
    TrialSpec,
    derive_seed,
    merge_values,
    resolve_workers,
    run_seed_sweep,
    run_trials,
)

__all__ = [
    "RunnerError",
    "TrialResult",
    "TrialSpec",
    "derive_seed",
    "merge_values",
    "resolve_workers",
    "run_seed_sweep",
    "run_trials",
]
