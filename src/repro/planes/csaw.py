"""The original C-Saw plane: in-browser redundant requests (§3–§5).

High fidelity (full per-stage evidence, no systematic misclassification),
CAPTCHA-registered identities, but expensive per reporter — only the
incentivized fraction of a population carries it.  This is the
refactored pre-plane reporter path: under a single-plane mix the fleet
layer reproduces the pre-refactor pipeline bit for bit
(``tests/data/plane_golden.json``), so every draw below must match what
``ClientCohort.start_wave`` historically did inline.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

from ..core.fleet import WAVE_STAGES
from ..core.globaldb import ReportItem
from ..core.voting import DEFAULT_PLANE
from .base import MeasurementPlane, PlaneProfile

__all__ = ["CSawBrowserPlane"]


class CSawBrowserPlane(MeasurementPlane):
    """In-browser redundant-request reporters: the paper's own plane."""

    per_reporter_items = False

    def __init__(self, fraction: float, name: str = DEFAULT_PLANE):
        super().__init__(fraction)
        self.profile = PlaneProfile(
            name=name,
            kind="csaw",
            fidelity=1.0,
            registered=True,
            false_signal=0.0,
            cost_per_report=512.0,  # full stage evidence + session overhead
        )

    def detection_delays(
        self,
        count: int,
        rng: random.Random,
        default_window: Tuple[float, float],
    ) -> Iterable[float]:
        # Users notice blocking as they browse: uniform over the cohort's
        # detection window, one draw per reporter in reporter order (the
        # exact pre-refactor sequence).
        lo, hi = default_window
        return (rng.uniform(lo, hi) for _ in range(count))

    def wave_items(
        self, urls: Sequence[str], asn: int, onset: float, rng: random.Random
    ) -> List[ReportItem]:
        # Full-evidence observation shared by every reporter of the AS:
        # the redundant-request session surfaces both blocking stages.
        name = self.profile.name
        return [
            ReportItem(
                url=url,
                asn=asn,
                stages=WAVE_STAGES,
                measured_at=onset,
                plane=name,
            )
            for url in urls
        ]
