"""Pluggable measurement planes feeding the global_DB (DESIGN.md §13).

Public surface: the :class:`MeasurementPlane` protocol, the three
shipped planes, and the kind registry the scenario compiler and spec
validator resolve against.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from .base import DEFAULT_PLANE, MeasurementPlane, PlaneProfile
from .csaw import CSawBrowserPlane
from .encore import EncoreProbePlane
from .problist import GeneratedProbeListPlane

__all__ = [
    "DEFAULT_PLANE",
    "MeasurementPlane",
    "PlaneProfile",
    "CSawBrowserPlane",
    "EncoreProbePlane",
    "GeneratedProbeListPlane",
    "PLANE_KINDS",
    "build_plane",
]


def _build_csaw(spec: Mapping[str, Any]) -> CSawBrowserPlane:
    return CSawBrowserPlane(
        fraction=spec["fraction"], name=spec.get("name", DEFAULT_PLANE)
    )


def _build_encore(spec: Mapping[str, Any]) -> EncoreProbePlane:
    return EncoreProbePlane(
        fraction=spec["fraction"],
        miss_rate=spec.get("miss_rate", 0.2),
        name=spec.get("name", "encore"),
    )


def _build_problist(spec: Mapping[str, Any]) -> GeneratedProbeListPlane:
    return GeneratedProbeListPlane(
        fraction=spec["fraction"],
        probe_interval=spec.get("probe_interval", 600.0),
        coverage=spec.get("coverage", 0.7),
        list_size=spec.get("list_size", 50),
        corpus_sites=spec.get("corpus_sites", 120),
        name=spec.get("name", "problist"),
    )


#: kind -> factory taking a mapping of spec fields (PlaneSpec.as_dict()
#: or a plain dict); the scenario compiler and spec validation both
#: resolve plane kinds here, so adding a plane is one registry entry.
PLANE_KINDS: Dict[str, Callable[[Mapping[str, Any]], MeasurementPlane]] = {
    "csaw": _build_csaw,
    "encore": _build_encore,
    "problist": _build_problist,
}


def build_plane(spec: Mapping[str, Any]) -> MeasurementPlane:
    """Instantiate one plane from its spec-field mapping."""
    kind = spec.get("kind", "csaw")
    factory = PLANE_KINDS.get(kind)
    if factory is None:
        raise ValueError(
            f"unknown plane kind {kind!r} (known: {sorted(PLANE_KINDS)})"
        )
    return factory(spec)
