"""The measurement-plane protocol: how reports get made.

C-Saw's original signal comes from one *plane* — in-browser redundant
requests issued by incentivized, CAPTCHA-registered users.  Related work
contributes two more (PAPERS.md): Encore-style lightweight cross-origin
probes (cheap, high-volume, unregistered, but a coarse reachable-vs-not
signal that mistakes block pages for content) and automatically
generated per-AS probe lists (Tang et al.) scheduled onto a small
vantage population.  A :class:`MeasurementPlane` captures everything the
server and the fleet layer need to know about one such source:

- **report generation** — which wave URLs a reporter observes, with what
  stage evidence, and when it posts (``wave_items`` /
  ``reporter_items`` / ``detection_delays``);
- **fidelity / false-signal profile** — the voting weight the plane's
  reports deserve and the misclassification it is known for
  (:class:`PlaneProfile.fidelity`, ``false_signal``);
- **volume / cost profile** — how many reporters a population yields and
  what one report costs on the wire (``reporter_count``,
  ``cost_per_report``);
- **registration semantics** — whether identities are CAPTCHA-gated and
  persistent, or ephemeral and mass-creatable (``register_reporters``,
  :class:`PlaneProfile.registered`).

Provenance is threaded end to end: every :class:`ReportItem` a plane
produces carries ``plane=profile.name``, the server's
:class:`~repro.core.voting.VotingLedger` keeps per-plane vote
statistics, and consumers may weight the confidence criterion by plane
fidelity (``weights={name: fidelity}``).  The single-plane case is the
degenerate configuration and is bit-identical to the pre-refactor
pipeline (``tests/data/plane_golden.json``).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.globaldb import ReportItem, ServerDB
from ..core.voting import DEFAULT_PLANE

__all__ = ["DEFAULT_PLANE", "PlaneProfile", "MeasurementPlane"]


@dataclass(frozen=True)
class PlaneProfile:
    """The identity and trade-off card of one measurement plane."""

    #: Provenance tag carried by every ReportItem this plane produces.
    name: str
    #: Plane family: "csaw" | "encore" | "problist" (registry key).
    kind: str
    #: Voting weight in [0, 1] a consumer should give this plane's
    #: reports — the per-plane-aware confidence criterion multiplies
    #: each plane's (votes, reporters) by its weight before thresholds.
    fidelity: float
    #: Whether identities are CAPTCHA-gated and persistent (C-Saw users)
    #: or ephemeral/mass-creatable (Encore page visitors).
    registered: bool
    #: Expected fraction of genuinely blocked URLs this plane fails to
    #: report (its known false-signal mode), 0.0 for full-evidence planes.
    false_signal: float = 0.0
    #: Estimated wire cost of one report, bytes (volume/cost model).
    cost_per_report: float = 256.0


class MeasurementPlane(ABC):
    """One source of blocked-URL reports feeding the global_DB.

    The fleet layer drives a plane per blocking wave and per AS shard:
    ``reporter_count`` sizes the plane's reporter subpopulation,
    ``register_reporters`` issues identities per the plane's
    registration semantics, ``detection_delays`` draws each reporter's
    post time, and ``wave_items``/``reporter_items`` produce the
    :class:`ReportItem` lists (the fidelity model).  The session layer
    (``ReportingService``) uses ``report_items`` to tag client-path
    uploads with the plane's provenance.

    All randomness comes from the ``rng`` arguments the caller passes —
    planes hold no RNG state of their own, which keeps fleet storms
    worker-count invariant.
    """

    profile: PlaneProfile

    #: True when each reporter of an AS observes its *own* item subset
    #: (e.g. Encore's per-vantage misclassification draws); False when
    #: one shared per-shard list serves every reporter (the C-Saw wave
    #: fast path — built once, posted by all).
    per_reporter_items: bool = False

    # -- volume model ----------------------------------------------------------

    def __init__(self, fraction: float):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"{type(self).__name__}: fraction must be in (0,1]: {fraction!r}"
            )
        self.fraction = fraction

    def reporter_count(self, population: int) -> int:
        """How many of ``population`` clients report through this plane."""
        return max(1, round(population * self.fraction))

    # -- registration semantics ------------------------------------------------

    def register_reporters(
        self, server: ServerDB, now: float, count: int
    ) -> List[str]:
        """Issue ``count`` identities (CAPTCHA-gated unless the profile
        says otherwise), staggered by 1 ms as the fleet layer always
        registered its wave reporters."""
        profile = self.profile
        return [
            server.register(
                now=now + 0.001 * i,
                plane=profile.name,
                captcha_gated=profile.registered,
            )
            for i in range(count)
        ]

    # -- report generation -----------------------------------------------------

    @abstractmethod
    def detection_delays(
        self,
        count: int,
        rng: random.Random,
        default_window: Tuple[float, float],
    ) -> Iterable[float]:
        """Per-reporter delay from wave onset to post time (draw order
        is part of the plane's contract — the fleet consumes these
        straight into a record array)."""

    @abstractmethod
    def wave_items(
        self, urls: Sequence[str], asn: int, onset: float, rng: random.Random
    ) -> List[ReportItem]:
        """The plane's observation of a blocking wave: one shared item
        list (full coverage planes) or the superset ``reporter_items``
        refines per reporter."""

    def reporter_items(
        self, shared: List[ReportItem], rng: random.Random
    ) -> List[ReportItem]:
        """One reporter's own observation (only consulted when
        ``per_reporter_items`` is True)."""
        return shared

    def report_items(self, records) -> List[ReportItem]:
        """Client-path uploads: local_DB records -> provenance-tagged
        :class:`ReportItem` list (used by ``ReportingService``)."""
        name = self.profile.name
        return [
            ReportItem(
                url=record.url,
                asn=record.asn,
                stages=tuple(record.stages),
                measured_at=record.measured_at,
                plane=name,
            )
            for record in records
        ]

    # -- voting ----------------------------------------------------------------

    @staticmethod
    def vote_weights(
        planes: Sequence["MeasurementPlane"],
    ) -> Optional[Dict[str, float]]:
        """The per-plane weight map a confidence-criterion consumer
        should apply for this mix; None for the uniform single-plane
        degenerate case (exactly today's unweighted criterion)."""
        if len(planes) <= 1 and all(
            plane.profile.fidelity >= 1.0 for plane in planes
        ):
            return None
        return {plane.profile.name: plane.profile.fidelity for plane in planes}
