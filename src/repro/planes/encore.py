"""Encore-style cross-origin probe plane (PAPERS.md).

Encore piggybacks tiny cross-origin fetches on unwitting page visitors:
essentially free per measurement, so the reporting fraction can be an
order of magnitude above C-Saw's incentivized users, and no registration
friction (identities are ephemeral — ``registered=False`` skips the
CAPTCHA gate).  The price is fidelity: the signal is a coarse
reachable-vs-not dichotomy (a single timeout stage, no DNS/block-page
decomposition), and censors serving block *pages* defeat it outright —
the probe gets an HTTP 200 and counts the URL as reachable.  That
misclassification is the plane's configurable false-signal knob
(``miss_rate``): each vantage independently drops each genuinely blocked
URL with that probability, so Encore's per-reporter item lists differ
(``per_reporter_items=True``).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

from ..core.globaldb import ReportItem
from ..core.records import BlockType
from .base import MeasurementPlane, PlaneProfile

__all__ = ["EncoreProbePlane", "ENCORE_STAGES"]

#: The dichotomy Encore can actually observe: the cross-origin fetch
#: timed out.  No stage decomposition — one coarse evidence code.
ENCORE_STAGES: Tuple[BlockType, ...] = (BlockType.HTTP_TIMEOUT,)

#: Probes fire on page load, not on browsing-driven discovery — the
#: post-onset delay window is much shorter than a C-Saw user's.
PROBE_WINDOW: Tuple[float, float] = (2.0, 60.0)


class EncoreProbePlane(MeasurementPlane):
    """High-volume, unregistered, coarse-signal probe reporters."""

    per_reporter_items = True

    def __init__(
        self,
        fraction: float,
        miss_rate: float = 0.2,
        name: str = "encore",
    ):
        super().__init__(fraction)
        if not 0.0 <= miss_rate < 1.0:
            raise ValueError(
                f"EncoreProbePlane: miss_rate must be in [0,1): {miss_rate!r}"
            )
        self.miss_rate = miss_rate
        self.profile = PlaneProfile(
            name=name,
            kind="encore",
            fidelity=0.5,  # coarse dichotomy: weight its votes at half
            registered=False,
            false_signal=miss_rate,
            cost_per_report=64.0,  # one cross-origin GET, no session
        )

    def detection_delays(
        self,
        count: int,
        rng: random.Random,
        default_window: Tuple[float, float],
    ) -> Iterable[float]:
        lo, hi = PROBE_WINDOW
        return (rng.uniform(lo, hi) for _ in range(count))

    def wave_items(
        self, urls: Sequence[str], asn: int, onset: float, rng: random.Random
    ) -> List[ReportItem]:
        # The superset one vantage *could* observe; reporter_items thins
        # it per vantage by the blockpage-misclassification draw.
        name = self.profile.name
        return [
            ReportItem(
                url=url,
                asn=asn,
                stages=ENCORE_STAGES,
                measured_at=onset,
                plane=name,
            )
            for url in urls
        ]

    def reporter_items(
        self, shared: List[ReportItem], rng: random.Random
    ) -> List[ReportItem]:
        # Block pages answer the probe with content: with probability
        # miss_rate this vantage classifies the URL as reachable and
        # never reports it.  Draw order: one uniform per shared item.
        if self.miss_rate <= 0.0:
            return shared
        miss = self.miss_rate
        return [item for item in shared if rng.random() >= miss]
