"""Generated per-AS probe-list plane (Tang et al., PAPERS.md).

Instead of waiting for users to stumble onto blocked pages, build a
probe list per AS from the observed URL corpus (the censorship-prone
categories of :func:`repro.workloads.corpus.build_corpus`) and schedule
a small vantage population to walk it.  Fidelity is high for URLs *on*
the list (the vantage runs a full measurement, same stage evidence as
C-Saw), but coverage is partial: a wave URL absent from the generated
list is invisible to this plane (``coverage`` models list-generation
recall).  Detection is scan-scheduled, not browsing-driven — a vantage
notices the block on its next pass over the list, so delays are uniform
over the probe interval rather than a human-reaction window.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.fleet import WAVE_STAGES
from ..core.globaldb import ReportItem
from .base import MeasurementPlane, PlaneProfile

__all__ = ["GeneratedProbeListPlane"]


class GeneratedProbeListPlane(MeasurementPlane):
    """Scheduled vantages probing a corpus-derived per-AS URL list."""

    per_reporter_items = False

    def __init__(
        self,
        fraction: float,
        probe_interval: float = 600.0,
        coverage: float = 0.7,
        list_size: int = 50,
        corpus_sites: int = 120,
        corpus_seed: int = 0,
        name: str = "problist",
    ):
        super().__init__(fraction)
        if not 0.0 < coverage <= 1.0:
            raise ValueError(
                f"GeneratedProbeListPlane: coverage must be in (0,1]: {coverage!r}"
            )
        if probe_interval <= 0.0:
            raise ValueError(
                f"GeneratedProbeListPlane: probe_interval must be > 0: "
                f"{probe_interval!r}"
            )
        self.probe_interval = probe_interval
        self.coverage = coverage
        self.list_size = list_size
        self.corpus_sites = corpus_sites
        self.corpus_seed = corpus_seed
        self._standing: Optional[Tuple[str, ...]] = None
        self.profile = PlaneProfile(
            name=name,
            kind="problist",
            fidelity=0.9,  # full evidence, but a scheduled scan can be
            registered=True,  # fingerprinted/poisoned by an aware censor
            false_signal=1.0 - coverage,
            cost_per_report=512.0,
        )

    def standing_list(self) -> Tuple[str, ...]:
        """The corpus-derived standing probe list (censored categories).

        Built lazily — the corpus is only paid for when a problist plane
        actually runs — and deterministically from ``corpus_seed``, so
        sharded fleet workers regenerate the identical list.
        """
        if self._standing is None:
            from ..workloads.corpus import build_corpus

            corpus = build_corpus(
                n_sites=self.corpus_sites, seed=self.corpus_seed
            )
            domains = corpus.domains_in_categories(
                ("porn", "political", "religious")
            )
            self._standing = tuple(
                f"http://{domain}/" for domain in sorted(domains)
            )[: self.list_size]
        return self._standing

    def detection_delays(
        self,
        count: int,
        rng: random.Random,
        default_window: Tuple[float, float],
    ) -> Iterable[float]:
        # Scheduled scans: each vantage's next pass over its list lands
        # uniformly within one probe interval of the wave onset.
        interval = self.probe_interval
        return (rng.uniform(0.0, interval) for _ in range(count))

    def wave_items(
        self, urls: Sequence[str], asn: int, onset: float, rng: random.Random
    ) -> List[ReportItem]:
        # List-generation recall: each wave URL made it onto the
        # generated per-AS list with probability ``coverage`` (one draw
        # per URL, shard-shared — the list is common to every vantage of
        # the AS).  Listed URLs get a full-evidence scheduled probe.
        name = self.profile.name
        coverage = self.coverage
        return [
            ReportItem(
                url=url,
                asn=asn,
                stages=WAVE_STAGES,
                measured_at=onset,
                plane=name,
            )
            for url in urls
            if coverage >= 1.0 or rng.random() < coverage
        ]
