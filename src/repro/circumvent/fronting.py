"""Domain fronting local-fix (§2.2, Fifield et al.).

The DNS query and the TLS SNI carry the *front* name (unblocked, high
collateral damage); the encrypted Host header carries the real, blocked
destination.  We model the front-end as a relay with a fast CDN-internal
leg to the backend, which is how real fronting infrastructure behaves.
"""

from __future__ import annotations

from typing import Generator

from ..simnet.flow import FlowContext
from ..simnet.http import HttpResponse
from ..simnet.latency import transfer_time
from ..simnet.world import World
from ..urlkit import parse_url
from .base import FetchResult, Transport, classify_failure, fetch_pipeline

__all__ = ["DomainFrontingTransport"]


class DomainFrontingTransport(Transport):
    """Front requests for blocked sites through ``front_hostname``."""

    name = "domain-fronting"
    is_local_fix = True

    def __init__(self, front_hostname: str, cdn_internal_rtt: float = 0.03):
        self.front_hostname = front_hostname.lower()
        self.cdn_internal_rtt = cdn_internal_rtt

    def available_for(self, world: World, url: str) -> bool:
        target = world.web.site_for(parse_url(url).host)
        front = world.web.site_for(self.front_hostname)
        return (
            target is not None
            and target.supports_fronting
            and front is not None
            and front.supports_https
        )

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        env = world.env
        started = env.now
        parsed = parse_url(url)

        def failed(error: Exception) -> FetchResult:
            return FetchResult(
                url=url,
                transport=self.name,
                started=started,
                finished=env.now,
                error=error,
                failure_stage=classify_failure(error),
            )

        front_site = world.web.site_for(self.front_hostname)
        if front_site is None:
            raise RuntimeError(f"front {self.front_hostname!r} not in this world")

        # DNS + TCP + TLS all speak the *front* name; only the front's IP
        # and SNI are visible to the censor.
        front_url = f"https://{self.front_hostname}/"
        pipeline = yield from fetch_pipeline(
            world,
            ctx,
            front_url,
            transport_name=f"{self.name}/front",
            sni=self.front_hostname,
        )
        if pipeline.failed:
            return failed(pipeline.error or RuntimeError("front unreachable"))

        # The front relays to the backend over CDN-internal links.
        backend = world.web.site_for(parsed.host)
        page = backend.page(parsed.path) if backend is not None else None
        if page is None:
            # Front answers, backend has no such resource.
            yield env.timeout(self.cdn_internal_rtt)
            return failed(RuntimeError(f"fronted resource missing: {url}"))
        internal = self.cdn_internal_rtt + transfer_time(
            page.size_bytes, self.cdn_internal_rtt, front_site.host.bandwidth_bps
        )
        yield env.timeout(internal)

        # Stream the body back to the client over the fronted connection.
        front_latency = world.network.latency_between(ctx.client, front_site.host)
        rtt = front_latency.sample_rtt(ctx.rng) + ctx.access.access_rtt
        tunnel_bw = world.network.path_bandwidth(ctx.client, front_site.host)
        yield env.timeout(
            transfer_time(page.size_bytes, rtt, tunnel_bw) * ctx.load.factor()
        )

        response = HttpResponse(
            status=200,
            url=url,
            html=page.html,
            size_bytes=page.size_bytes,
            server_ip=front_site.host.ip,
            page=page,
        )
        return FetchResult(
            url=url,
            transport=self.name,
            started=started,
            finished=env.now,
            response=response,
        )
