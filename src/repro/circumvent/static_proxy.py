"""Static HTTPS proxies spread around the world (§2.3, Figure 1a, Table 2).

Each proxy is a single relay at a fixed location.  Proxies differ in path
latency and load: the paper observed that some (Germany-1, UK, Japan)
showed widely varying PLTs, suggesting on-path congestion or server load —
modeled as per-host jitter and extra processing delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..simnet.flow import FlowContext
from ..simnet.topology import Host
from ..simnet.world import World
from .base import Transport
from .relay import relay_fetch

__all__ = ["StaticProxyTransport", "build_proxy_fleet", "PROXY_FLEET_SPEC"]


class StaticProxyTransport(Transport):
    """Tunnel all requests through one fixed proxy host."""

    is_local_fix = False
    uses_relay = True

    def __init__(self, proxy_host: Host, bandwidth_cap_bps: Optional[float] = None):
        self.proxy_host = proxy_host
        self.bandwidth_cap_bps = bandwidth_cap_bps
        self.name = f"proxy:{proxy_host.name}"

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        result = yield from relay_fetch(
            world,
            ctx,
            url,
            self.proxy_host,
            transport_name=self.name,
            bandwidth_cap_bps=self.bandwidth_cap_bps,
        )
        return result


@dataclass(frozen=True)
class ProxySpec:
    """Where a fleet proxy lives and how loaded it is."""

    label: str
    location: str
    extra_rtt: float = 0.005
    jitter_sigma: float = 0.10
    bandwidth_bps: float = 30e6


# The ten proxies of Figure 1a / Table 2.  The high-variance ones the paper
# calls out (Germany-1, UK, Japan) carry heavy jitter and load.
PROXY_FLEET_SPEC: List[ProxySpec] = [
    ProxySpec("UK", "uk", extra_rtt=0.030, jitter_sigma=0.55, bandwidth_bps=12e6),
    ProxySpec("Netherlands", "netherlands", jitter_sigma=0.12),
    ProxySpec("Japan", "japan", extra_rtt=0.025, jitter_sigma=0.50, bandwidth_bps=15e6),
    ProxySpec("US-1", "us-east", jitter_sigma=0.15),
    ProxySpec("US-2", "us-west", jitter_sigma=0.18),
    ProxySpec("US-3", "us-central", jitter_sigma=0.12),
    ProxySpec("Germany-1", "germany", extra_rtt=0.035, jitter_sigma=0.60, bandwidth_bps=10e6),
    ProxySpec("Germany-2", "germany-south", jitter_sigma=0.12),
    ProxySpec("France-1", "france", jitter_sigma=0.14),
    ProxySpec("France-2", "france", extra_rtt=0.010, jitter_sigma=0.20),
]


def build_proxy_fleet(
    world: World, specs: Optional[List[ProxySpec]] = None
) -> List[StaticProxyTransport]:
    """Instantiate the proxy fleet as hosts + transports in ``world``."""
    transports = []
    for spec in specs or PROXY_FLEET_SPEC:
        host = world.network.add_host(
            name=f"proxy-{spec.label.lower()}",
            location=spec.location,
            extra_rtt=spec.extra_rtt,
            jitter_sigma=spec.jitter_sigma,
            bandwidth_bps=spec.bandwidth_bps,
            tags={"role": "static-proxy", "label": spec.label},
        )
        transports.append(StaticProxyTransport(host))
    return transports
