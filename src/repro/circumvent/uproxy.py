"""uProxy-style friend relay (§2.2).

uProxy "leverages trust relationships but runs as a browser extension":
the user relays through exactly one trusted friend outside the censored
region.  Unlike Lantern's pooled volunteers, a single friend's machine
is only *sometimes* on — availability flaps, which is the interesting
failure mode this transport contributes to the circumvention mix.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..simnet.flow import FlowContext
from ..simnet.tcp import ConnectTimeout
from ..simnet.topology import Host
from ..simnet.world import World
from .base import FetchResult, Transport
from .relay import relay_fetch

__all__ = ["FriendProxyTransport"]


class FriendProxyTransport(Transport):
    """Relay through one trusted friend's machine."""

    name = "uproxy"
    provides_anonymity = False  # the friend knows exactly who you are
    uses_relay = True

    def __init__(
        self,
        friend_host: Host,
        online_probability: float = 0.8,
        rng=None,
        session_length: float = 1800.0,
    ):
        if not 0.0 <= online_probability <= 1.0:
            raise ValueError(
                f"online_probability must be in [0, 1]: {online_probability!r}"
            )
        self.friend_host = friend_host
        self.online_probability = online_probability
        self.session_length = session_length
        self._rng = rng
        # (decided_at, online) — the friend's presence re-rolls per session.
        self._presence: Optional[tuple] = None

    def _online(self, world: World, ctx: FlowContext) -> bool:
        rng = self._rng or ctx.rng
        now = world.env.now
        if (
            self._presence is None
            or now - self._presence[0] >= self.session_length
        ):
            self._presence = (now, rng.random() < self.online_probability)
        return self._presence[1]

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        if not self._online(world, ctx):
            # The friend's laptop is closed: indistinguishable from a
            # dead relay — a connect timeout after the SYN schedule.
            yield world.env.timeout(world.tcp_config.connect_timeout_total)
            return FetchResult(
                url=url,
                transport=self.name,
                started=world.env.now
                - world.tcp_config.connect_timeout_total,
                finished=world.env.now,
                error=ConnectTimeout(self.friend_host.ip, "(friend offline)"),
                failure_stage="tcp",
            )
        result = yield from relay_fetch(
            world,
            ctx,
            url,
            self.friend_host,
            transport_name=self.name,
            bandwidth_cap_bps=self.friend_host.bandwidth_bps,
        )
        return result
