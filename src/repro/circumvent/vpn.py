"""VPN circumvention (§2.2).

A VPN is a single-relay full tunnel: the censor sees only the encrypted
flow to the VPN endpoint.  Censors respond by blacklisting VPN server IPs
or ports — modeled as ordinary IP-stage rules against the endpoint.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..simnet.flow import FlowContext
from ..simnet.topology import Host
from ..simnet.world import World
from .base import Transport
from .relay import relay_fetch

__all__ = ["VpnTransport"]


class VpnTransport(Transport):
    """Tunnel everything through one VPN endpoint."""

    provides_anonymity = True  # hides the destination from the local censor
    uses_relay = True

    def __init__(self, endpoint: Host, bandwidth_cap_bps: Optional[float] = None):
        self.endpoint = endpoint
        self.bandwidth_cap_bps = bandwidth_cap_bps
        self.name = f"vpn:{endpoint.name}"

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        result = yield from relay_fetch(
            world,
            ctx,
            url,
            self.endpoint,
            transport_name=self.name,
            # The VPN handshake is chunkier than a TLS CONNECT.
            setup_overhead_rtts=1.5,
            bandwidth_cap_bps=self.bandwidth_cap_bps,
        )
        return result
