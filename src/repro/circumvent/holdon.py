"""Hold-On local-fix against on-path DNS injection (§2.2, Duan et al.).

Public DNS servers defeat *resolver-based* tampering but not on-path
*injection*, where the censor races a forged reply against the genuine
one.  Hold-On keeps the query window open past the expected RTT and keeps
the later, legitimate reply — paying a small latency tax on every
resolution, which is why C-Saw only reaches for it when the observed
blocking is DNS-stage and public DNS alone did not fix it.
"""

from __future__ import annotations

from typing import Generator

from ..simnet.flow import FlowContext
from ..simnet.world import World
from .base import Transport, fetch_pipeline

__all__ = ["HoldOnTransport"]


class HoldOnTransport(Transport):
    name = "hold-on"
    is_local_fix = True

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        result = yield from fetch_pipeline(
            world,
            ctx,
            url,
            transport_name=self.name,
            resolver=world.public_resolver,  # None -> the ISP resolver
            dns_hold_on=True,
        )
        return result
