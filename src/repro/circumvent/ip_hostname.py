"""“IP as hostname” local-fix (§2.3, Figure 1c).

Typing the server's IP address instead of its hostname into the URL defeats
keyword/hostname filters: the cleartext GET then carries no blocked name.
The client must already know the IP (here: learned out of band / from a
previous resolution), and the trick fails against IP blacklists — both
captured below.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..simnet.flow import FlowContext
from ..simnet.world import World
from ..urlkit import parse_url
from .base import Transport, fetch_pipeline

__all__ = ["IpAsHostnameTransport"]


class IpAsHostnameTransport(Transport):
    name = "ip-as-hostname"
    is_local_fix = True

    def __init__(self):
        # hostname -> ip learned from earlier successful resolutions.
        self._known_ips: Dict[str, str] = {}

    def learn_ip(self, hostname: str, ip: str) -> None:
        """Record an address seen in an (uncensored) resolution."""
        self._known_ips[hostname.lower()] = ip

    def _ip_for(self, world: World, hostname: str) -> Optional[str]:
        known = self._known_ips.get(hostname.lower())
        if known is not None:
            return known
        # Out-of-band knowledge (a friend abroad, a DNS cache, etc.): the
        # authoritative record, *not* a resolution through the censor.
        ips = world.network.authoritative_ips(hostname)
        return ips[0] if ips else None

    def available_for(self, world: World, url: str) -> bool:
        return self._ip_for(world, parse_url(url).host) is not None

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        parsed = parse_url(url)
        ip = self._ip_for(world, parsed.host)
        if ip is None:
            raise RuntimeError(f"no known IP for {parsed.host!r}")
        # The URL the wire sees is http://<ip>/<path>: no DNS query at all,
        # Host header carries the bare IP.
        result = yield from fetch_pipeline(
            world,
            ctx,
            url,
            transport_name=self.name,
            dst_ip=ip,
            host_header=ip,
            sni=ip if parsed.scheme == "https" else None,
        )
        return result
