"""The direct path: no circumvention, fully exposed to the censor.

Also the measurement probe C-Saw sends alongside circumvented requests —
the direct path is where blocking symptoms are observed.
"""

from __future__ import annotations

from typing import Generator

from ..simnet.flow import FlowContext
from ..simnet.world import World
from .base import Transport, fetch_pipeline

__all__ = ["DirectTransport"]


class DirectTransport(Transport):
    """Plain fetch via the client's ISP resolver and the real endpoint."""

    name = "direct"
    is_local_fix = False  # not a fix at all; baseline path
    provides_anonymity = False

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        result = yield from fetch_pipeline(
            world, ctx, url, transport_name=self.name
        )
        return result
