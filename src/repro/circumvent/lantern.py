"""Lantern simulator: trust-based single-relay HTTPS proxies (§2.2).

Two layers:

- :class:`LanternTransport` — the raw relay path through a trusted proxy.
  Proxies are discovered through a social trust graph, *not* chosen for
  latency, so the tunnel often takes a geographically long path — the
  source of Lantern's ~1.5× PLT penalty in Figure 1c.
- :class:`LanternSystem` — the end-to-end baseline used in §7.3: try the
  direct path first, detect blocking, then relay — always relaying for
  URLs it has learned are blocked (no local fixes, no adaptivity).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..simnet.flow import FlowContext
from ..simnet.http import HttpResponse
from ..simnet.topology import Host
from ..simnet.world import World
from ..urlkit import parse_url
from .base import Transport, fetch_pipeline
from .relay import relay_fetch

__all__ = ["LanternNetwork", "LanternTransport", "LanternSystem"]

_PROXY_LOCATIONS: List[Tuple[str, float]] = [
    ("us-east", 0.25),
    ("us-west", 0.15),
    ("uk", 0.12),
    ("germany", 0.15),
    ("netherlands", 0.10),
    ("france", 0.08),
    ("canada", 0.08),
    ("japan", 0.07),
]


class LanternNetwork:
    """Volunteer proxy population plus the trust graph over it."""

    def __init__(self, world: World, proxies: List[Host]):
        if not proxies:
            raise ValueError("Lantern needs at least one proxy")
        self.world = world
        self.proxies = proxies

    @classmethod
    def build(
        cls,
        world: World,
        n_proxies: int = 12,
        stream: str = "lantern-network",
        locations: Optional[List[Tuple[str, float]]] = None,
    ) -> "LanternNetwork":
        rng = world.rngs.stream(stream)
        locations = locations or _PROXY_LOCATIONS
        names = [loc for loc, _w in locations]
        weights = [w for _loc, w in locations]
        proxies = []
        for index in range(n_proxies):
            location = rng.choices(names, weights=weights)[0]
            proxies.append(
                world.network.add_host(
                    name=f"lantern-proxy-{index}",
                    location=location,
                    extra_rtt=0.008,
                    jitter_sigma=0.20,
                    bandwidth_bps=min(25e6, 5e6 * rng.lognormvariate(0.0, 0.6)),
                    tags={"role": "lantern-proxy"},
                )
            )
        return cls(world, proxies)

    def trusted_for(self, stream: str, degree: int = 3) -> List[Host]:
        """The proxies one user can reach through friend-of-friend trust.

        A small random subset: trust, not proximity, decides reachability —
        which is exactly why Lantern paths are long.
        """
        rng = self.world.rngs.stream(stream)
        degree = min(degree, len(self.proxies))
        return rng.sample(self.proxies, degree)


class LanternTransport(Transport):
    """Relay through the user's trusted Lantern proxies (sticky choice)."""

    name = "lantern"
    provides_anonymity = False  # Lantern explicitly trades anonymity away
    uses_relay = True

    def __init__(self, network: LanternNetwork, user_stream: str = "lantern-user"):
        self.network = network
        self.rng = network.world.rngs.stream(user_stream)
        self.trusted = network.trusted_for(f"{user_stream}/trust")
        self._current: Optional[Host] = None

    def _proxy(self) -> Host:
        if self._current is None:
            self._current = self.rng.choice(self.trusted)
        return self._current

    def rotate_proxy(self) -> None:
        """Switch to another trusted proxy (after a failure)."""
        alternatives = [p for p in self.trusted if p is not self._current]
        if alternatives:
            self._current = self.rng.choice(alternatives)

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        proxy = self._proxy()
        result = yield from relay_fetch(
            world,
            ctx,
            url,
            proxy,
            transport_name=self.name,
            bandwidth_cap_bps=proxy.bandwidth_bps,
        )
        if result.failed and result.failure_stage in ("tcp", "tls"):
            self.rotate_proxy()
        return result


def _default_looks_blocked(response: HttpResponse) -> bool:
    """Lantern's own crude blocking check on a direct response."""
    if response.status >= 400:
        return True
    lowered = response.html.lower()
    return response.size_bytes < 1200 and (
        "blocked" in lowered or "denied" in lowered or "<iframe" in lowered
    )


class LanternSystem:
    """The Lantern baseline as a whole-system fetch policy (§7.3).

    Per blocked hostname, Lantern remembers to relay.  For unknown URLs it
    pays a detection cost on the direct path first.  It never uses local
    fixes — that is C-Saw's edge over it.
    """

    name = "lantern-system"

    def __init__(
        self,
        transport: LanternTransport,
        looks_blocked: Callable[[HttpResponse], bool] = _default_looks_blocked,
        proxy_all: bool = False,
    ):
        self.transport = transport
        self.looks_blocked = looks_blocked
        # Full-proxy mode: tunnel everything, blocked or not (how Lantern
        # was operated in the paper's §7.3 comparison — Figure 7b shows it
        # relaying even unblocked pages).
        self.proxy_all = proxy_all
        self._blocked_hosts: Dict[str, bool] = {}

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        host = parse_url(url).host
        if self.proxy_all or self._blocked_hosts.get(host):
            result = yield from self.transport.fetch(world, ctx, url)
            return result

        direct = yield from fetch_pipeline(
            world, ctx, url, transport_name="lantern-direct"
        )
        blocked = direct.failed or (
            direct.response is not None and self.looks_blocked(direct.response)
        )
        if not blocked:
            return direct
        self._blocked_hosts[host] = True
        result = yield from self.transport.fetch(world, ctx, url)
        return result
