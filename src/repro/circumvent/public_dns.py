"""Public/global DNS local-fix (§2.2, §4.3.2).

Defeats resolver-based DNS tampering by asking a public resolver instead of
the ISP's.  Useless against on-path DNS injection (``scope="path"``
verdicts) and against non-DNS blocking stages — C-Saw's detector knows the
difference and picks accordingly.
"""

from __future__ import annotations

from typing import Generator

from ..simnet.flow import FlowContext
from ..simnet.world import World
from .base import Transport, fetch_pipeline

__all__ = ["PublicDnsTransport"]


class PublicDnsTransport(Transport):
    name = "public-dns"
    is_local_fix = True

    def available_for(self, world: World, url: str) -> bool:
        return world.public_resolver is not None

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        if world.public_resolver is None:
            raise RuntimeError("no public resolver registered in this world")
        result = yield from fetch_pipeline(
            world,
            ctx,
            url,
            transport_name=self.name,
            resolver=world.public_resolver,
        )
        return result
