"""Shared machinery for relay-based circumvention (proxies, Lantern, VPN).

A relay fetch has two legs: the client's (censored) leg to the relay, and
the relay's (clean) leg to the origin.  The censor only sees the first leg
— the relay's IP and the TLS SNI the tunnel announces — which is exactly
why relays circumvent blocking and also why censors respond by
blacklisting relay IPs.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..simnet.flow import FlowContext
from ..simnet.latency import transfer_time
from ..simnet.tcp import TcpError, tcp_connect
from ..simnet.tls import TlsError, tls_handshake
from ..simnet.topology import Host
from ..simnet.world import World
from .base import FetchResult, classify_failure, fetch_pipeline

__all__ = ["relay_fetch"]


def relay_fetch(
    world: World,
    ctx: FlowContext,
    url: str,
    relay_host: Host,
    *,
    transport_name: str,
    sni: Optional[str] = None,
    use_tls: bool = True,
    bandwidth_cap_bps: Optional[float] = None,
    relay_stream: str = "relay",
    setup_overhead_rtts: float = 0.5,
) -> Generator:
    """Process: fetch ``url`` through a single relay; returns FetchResult.

    ``sni`` is what the censor sees in the ClientHello on the client→relay
    leg (defaults to the relay's own hostname).  ``bandwidth_cap_bps``
    models a loaded relay throttling the tunnel.
    """
    env = world.env
    started = env.now

    def failed(error: Exception) -> FetchResult:
        return FetchResult(
            url=url,
            transport=transport_name,
            started=started,
            finished=env.now,
            error=error,
            failure_stage=classify_failure(error),
        )

    # --- leg 1: client -> relay (censored) --------------------------------
    try:
        conn = yield from tcp_connect(
            env, world.network, ctx, relay_host.ip, 443, world.tcp_config
        )
    except TcpError as error:
        return failed(error)

    if use_tls:
        announce = sni if sni is not None else relay_host.name
        try:
            yield from tls_handshake(env, ctx, conn, announce, world.tls_config)
        except TlsError as error:
            return failed(error)

    # Tunnel establishment chatter (CONNECT round trip and the like).
    yield env.timeout(setup_overhead_rtts * conn.rtt)

    # --- leg 2: relay -> origin (clean) ------------------------------------
    relay_ctx = world.relay_ctx(relay_host, stream=relay_stream)
    inner = yield from fetch_pipeline(
        world, relay_ctx, url, transport_name=f"{transport_name}/origin"
    )
    if inner.failed and inner.response is None:
        # Origin unreachable even from the relay; surface the relay's error.
        return FetchResult(
            url=url,
            transport=transport_name,
            started=started,
            finished=env.now,
            error=inner.error,
            failure_stage=inner.failure_stage,
        )

    # --- return leg: stream the response back through the tunnel ----------
    response = inner.response
    tunnel_bw = world.network.path_bandwidth(ctx.client, relay_host)
    if bandwidth_cap_bps is not None:
        tunnel_bw = min(tunnel_bw, bandwidth_cap_bps)
    return_rtt = conn.sample_rtt(ctx.rng)
    duration = transfer_time(
        response.size_bytes, return_rtt, tunnel_bw
    ) * ctx.load.factor()
    yield env.timeout(duration)

    return FetchResult(
        url=url,
        transport=transport_name,
        started=started,
        finished=env.now,
        response=response,
        redirects=inner.redirects,
    )
