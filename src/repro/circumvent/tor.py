"""Tor simulator: relays, bandwidth-weighted 3-hop circuits, rotation.

Captures the properties the paper's evaluation leans on:

- circuits traverse entry → middle → exit relays, so path latency is the
  *sum* of hop RTTs — typically several times the direct RTT (§2.3,
  Figure 1b);
- relay selection is weighted by perceived bandwidth (Wacek et al. [56]),
  so fat relays attract circuits;
- circuits rotate roughly every 10 minutes, re-rolling the latency dice;
- effective throughput is bounded by the slowest relay and its load;
- censors block Tor by blacklisting entry/bridge IPs (§8) — the entry
  connection goes through the censor middlebox like any other flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..simnet.flow import FlowContext
from ..simnet.latency import transfer_time
from ..simnet.tcp import TcpError, tcp_connect
from ..simnet.topology import Host
from ..simnet.world import World
from .base import FetchResult, Transport, classify_failure, fetch_pipeline

__all__ = ["TorRelay", "TorCircuit", "TorNetwork", "TorClient", "TorTransport"]

# Default relay geography, loosely following the public consensus: heavy in
# Europe/US, thinner elsewhere.
_DEFAULT_RELAY_LOCATIONS: List[Tuple[str, float]] = [
    ("germany", 0.22),
    ("netherlands", 0.14),
    ("france", 0.12),
    ("us-east", 0.14),
    ("us-west", 0.08),
    ("us-central", 0.06),
    ("uk", 0.08),
    ("switzerland", 0.06),
    ("czech", 0.04),
    ("canada", 0.04),
    ("japan", 0.02),
]


@dataclass
class TorRelay:
    host: Host
    bandwidth_bps: float
    is_exit: bool

    @property
    def location(self) -> str:
        return self.host.location


@dataclass
class TorCircuit:
    entry: TorRelay
    middle: TorRelay
    exit: TorRelay
    built_at: float
    used: bool = False

    @property
    def relays(self) -> List[TorRelay]:
        return [self.entry, self.middle, self.exit]

    @property
    def min_bandwidth_bps(self) -> float:
        return min(r.bandwidth_bps for r in self.relays)

    def __repr__(self) -> str:
        path = "→".join(r.host.name for r in self.relays)
        return f"TorCircuit({path}, exit@{self.exit.location})"


class TorNetwork:
    """A synthetic relay population inside one world.

    ``bridges`` are unlisted entry relays: they do not appear in the
    public consensus (:meth:`public_relay_ips`), so a censor blacklisting
    every known relay still misses them — the paper's §8 hope that C-Saw
    "rides on Tor's successes in achieving blocking resistance".
    """

    def __init__(
        self,
        world: World,
        relays: List[TorRelay],
        bridges: Optional[List[TorRelay]] = None,
    ):
        if len(relays) < 3:
            raise ValueError("a Tor network needs at least 3 relays")
        self.world = world
        self.relays = relays
        self.bridges = list(bridges or [])
        self.exits = [r for r in relays if r.is_exit]
        if not self.exits:
            raise ValueError("a Tor network needs at least one exit relay")

    def public_relay_ips(self) -> List[str]:
        """Every consensus-listed relay address (what a censor can scrape)."""
        return [r.host.ip for r in self.relays]

    def add_bridges(self, count: int, stream: str = "tor-bridges") -> List[TorRelay]:
        """Provision unlisted bridge relays."""
        rng = self.world.rngs.stream(stream)
        created = []
        for index in range(count):
            location = rng.choices(
                [l for l, _w in _DEFAULT_RELAY_LOCATIONS],
                weights=[w for _l, w in _DEFAULT_RELAY_LOCATIONS],
            )[0]
            bandwidth = min(30e6, 2e6 * rng.lognormvariate(0.0, 0.9))
            host = self.world.network.add_host(
                name=f"tor-bridge-{len(self.bridges) + index}",
                location=location,
                extra_rtt=0.004,
                jitter_sigma=0.45,
                bandwidth_bps=bandwidth,
                tags={"role": "tor-bridge"},
            )
            created.append(
                TorRelay(host=host, bandwidth_bps=bandwidth, is_exit=False)
            )
        self.bridges.extend(created)
        return created

    @classmethod
    def build(
        cls,
        world: World,
        n_relays: int = 60,
        exit_fraction: float = 0.35,
        stream: str = "tor-network",
        locations: Optional[List[Tuple[str, float]]] = None,
    ) -> "TorNetwork":
        """Generate a relay population with lognormal bandwidths."""
        rng = world.rngs.stream(stream)
        locations = locations or _DEFAULT_RELAY_LOCATIONS
        names = [loc for loc, _w in locations]
        weights = [w for _loc, w in locations]
        relays = []
        for index in range(n_relays):
            location = rng.choices(names, weights=weights)[0]
            # Effective per-circuit bandwidth: median ~3 Mbps, long tail in
            # both directions (Tor throughput is notoriously variable).
            bandwidth = min(60e6, 3e6 * rng.lognormvariate(0.0, 1.2))
            host = world.network.add_host(
                name=f"tor-relay-{index}",
                location=location,
                extra_rtt=0.004,
                # Queueing at relays makes per-hop RTTs highly variable;
                # summed over three hops this is the dominant source of
                # Tor's PLT spread (Figures 1b and 6a).
                jitter_sigma=0.45,
                bandwidth_bps=bandwidth,
                tags={"role": "tor-relay"},
            )
            relays.append(
                TorRelay(
                    host=host,
                    bandwidth_bps=bandwidth,
                    is_exit=rng.random() < exit_fraction,
                )
            )
        return cls(world, relays)

    def sample_circuit(
        self,
        rng,
        now: float,
        exit_location: Optional[str] = None,
        use_bridges: bool = False,
    ) -> TorCircuit:
        """Bandwidth-weighted selection of three distinct relays.

        With ``use_bridges`` the entry hop comes from the unlisted bridge
        pool instead of the public consensus.
        """
        exits = self.exits
        if exit_location is not None:
            pinned = [r for r in exits if r.location == exit_location]
            if pinned:
                exits = pinned
        exit_relay = _weighted_choice(rng, exits)
        middle_pool = [r for r in self.relays if r is not exit_relay]
        middle = _weighted_choice(rng, middle_pool)
        if use_bridges:
            if not self.bridges:
                raise ValueError("no bridges provisioned; call add_bridges()")
            entry = _weighted_choice(rng, self.bridges)
        else:
            entry_pool = [r for r in middle_pool if r is not middle]
            entry = _weighted_choice(rng, entry_pool)
        return TorCircuit(entry=entry, middle=middle, exit=exit_relay, built_at=now)

    def client(
        self,
        stream: str,
        rotation_period: float = 600.0,
        exit_location: Optional[str] = None,
        use_bridges: bool = False,
    ) -> "TorClient":
        return TorClient(
            self,
            stream=stream,
            rotation_period=rotation_period,
            exit_location=exit_location,
            use_bridges=use_bridges,
        )


def _weighted_choice(rng, relays: List[TorRelay]) -> TorRelay:
    if not relays:
        raise ValueError("empty relay pool")
    total = sum(r.bandwidth_bps for r in relays)
    pick = rng.random() * total
    acc = 0.0
    for relay in relays:
        acc += relay.bandwidth_bps
        if pick <= acc:
            return relay
    return relays[-1]


class TorClient:
    """Per-user circuit state: current circuit plus rotation policy."""

    def __init__(
        self,
        network: TorNetwork,
        stream: str = "tor-client",
        rotation_period: float = 600.0,
        exit_location: Optional[str] = None,
        use_bridges: bool = False,
    ):
        self.network = network
        self.rng = network.world.rngs.stream(stream)
        self.rotation_period = rotation_period
        self.exit_location = exit_location
        self.use_bridges = use_bridges
        self._circuit: Optional[TorCircuit] = None

    def circuit(self, now: float) -> Tuple[TorCircuit, bool]:
        """Current circuit and whether it was freshly built."""
        current = self._circuit
        if current is None or now - current.built_at >= self.rotation_period:
            self._circuit = self.network.sample_circuit(
                self.rng, now, self.exit_location, use_bridges=self.use_bridges
            )
            return self._circuit, True
        return current, False

    def new_circuit(self, now: float) -> TorCircuit:
        """Force an independent fresh circuit (redundant-request use)."""
        self._circuit = self.network.sample_circuit(
            self.rng, now, self.exit_location, use_bridges=self.use_bridges
        )
        return self._circuit


class TorTransport(Transport):
    """Fetch URLs through a TorClient's circuits."""

    name = "tor"
    provides_anonymity = True
    uses_relay = True

    def __init__(
        self,
        client: TorClient,
        fresh_circuit_per_fetch: bool = False,
        prebuilt_circuits: bool = True,
    ):
        self.client = client
        self.fresh_circuit_per_fetch = fresh_circuit_per_fetch
        self.prebuilt_circuits = prebuilt_circuits

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        env = world.env
        started = env.now

        def failed(error: Exception) -> FetchResult:
            return FetchResult(
                url=url,
                transport=self.name,
                started=started,
                finished=env.now,
                error=error,
                failure_stage=classify_failure(error),
            )

        if self.fresh_circuit_per_fetch:
            circuit, fresh = self.client.new_circuit(env.now), True
        else:
            circuit, fresh = self.client.circuit(env.now)
        # Tor pre-builds circuits in the background, so construction is
        # not user-visible; ``prebuilt_circuits=False`` disables the pool
        # (e.g. to study cold-start behaviour).
        if self.prebuilt_circuits:
            fresh = False

        # --- censored leg: client -> entry relay ---------------------------
        try:
            conn = yield from tcp_connect(
                env, world.network, ctx, circuit.entry.host.ip, 443,
                world.tcp_config,
            )
        except TcpError as error:
            return failed(error)

        net = world.network
        rng = ctx.rng
        hop_em = net.latency_between(circuit.entry.host, circuit.middle.host)
        hop_mx = net.latency_between(circuit.middle.host, circuit.exit.host)
        rtt_em = hop_em.sample_rtt(rng)
        rtt_mx = hop_mx.sample_rtt(rng)

        if fresh:
            # Telescoping circuit build: each extension is a handshake over
            # all previous hops.
            build = (
                1.5 * conn.rtt
                + 1.5 * (conn.rtt + rtt_em)
                + 1.5 * (conn.rtt + rtt_em + rtt_mx)
            )
            yield env.timeout(build)

        # Request travels the three hops to the exit.
        yield env.timeout((conn.rtt + rtt_em + rtt_mx) / 2.0)

        # --- exit relay fetches the origin ---------------------------------
        exit_ctx = world.relay_ctx(circuit.exit.host, stream="tor-exit")
        inner = yield from fetch_pipeline(
            world, exit_ctx, url, transport_name="tor/exit"
        )
        if inner.failed and inner.response is None:
            return FetchResult(
                url=url,
                transport=self.name,
                started=started,
                finished=env.now,
                error=inner.error,
                failure_stage=inner.failure_stage,
            )

        # --- response streams back through the circuit ---------------------
        response = inner.response
        circuit_rtt = conn.rtt + rtt_em + rtt_mx
        # Relay load: each relay serves many circuits; this one gets a
        # slice.  The wide range reflects Tor's notoriously variable
        # throughput — the spread that makes redundant copies over
        # separate circuits worthwhile (Figure 6a).
        load_share = rng.uniform(0.15, 1.0)
        bandwidth = min(
            circuit.min_bandwidth_bps * load_share,
            world.network.path_bandwidth(ctx.client, circuit.entry.host),
        )
        yield env.timeout(
            transfer_time(response.size_bytes, circuit_rtt, bandwidth)
            * ctx.load.factor()
        )
        circuit.used = True

        return FetchResult(
            url=url,
            transport=self.name,
            started=started,
            finished=env.now,
            response=response,
            redirects=inner.redirects,
        )
