"""HTTP→HTTPS local-fix (§4.3.2).

When the censor only filters cleartext HTTP (the paper's ISP-A), simply
requesting the same resource over TLS hides the URL.  The SNI still leaks
the hostname, so SNI-filtering censors (ISP-B) defeat this fix — which is
when domain fronting takes over.
"""

from __future__ import annotations

from typing import Generator

from ..simnet.flow import FlowContext
from ..simnet.world import World
from ..urlkit import parse_url
from .base import Transport, fetch_pipeline

__all__ = ["HttpsTransport"]


class HttpsTransport(Transport):
    name = "https"
    is_local_fix = True

    def available_for(self, world: World, url: str) -> bool:
        site = world.web.site_for(parse_url(url).host)
        return site is not None and site.supports_https

    def fetch(self, world: World, ctx: FlowContext, url: str) -> Generator:
        https_url = parse_url(url).with_scheme("https").url
        result = yield from fetch_pipeline(
            world, ctx, https_url, transport_name=self.name
        )
        return result
