"""Circumvention substrate: direct path, local fixes, and relay systems."""

from .base import FetchResult, Transport, classify_failure, fetch_pipeline
from .direct import DirectTransport
from .fronting import DomainFrontingTransport
from .holdon import HoldOnTransport
from .https_fix import HttpsTransport
from .ip_hostname import IpAsHostnameTransport
from .lantern import LanternNetwork, LanternSystem, LanternTransport
from .public_dns import PublicDnsTransport
from .relay import relay_fetch
from .static_proxy import PROXY_FLEET_SPEC, StaticProxyTransport, build_proxy_fleet
from .tor import TorClient, TorCircuit, TorNetwork, TorRelay, TorTransport
from .uproxy import FriendProxyTransport
from .vpn import VpnTransport

__all__ = [
    "FetchResult",
    "Transport",
    "classify_failure",
    "fetch_pipeline",
    "DirectTransport",
    "DomainFrontingTransport",
    "HoldOnTransport",
    "HttpsTransport",
    "IpAsHostnameTransport",
    "LanternNetwork",
    "LanternSystem",
    "LanternTransport",
    "PublicDnsTransport",
    "relay_fetch",
    "PROXY_FLEET_SPEC",
    "StaticProxyTransport",
    "build_proxy_fleet",
    "TorClient",
    "TorCircuit",
    "TorNetwork",
    "TorRelay",
    "TorTransport",
    "FriendProxyTransport",
    "VpnTransport",
]
