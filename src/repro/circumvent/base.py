"""Transport interface shared by the direct path and every circumvention
method, plus the direct fetch pipeline they compose.

A transport's ``fetch`` is a simulation process that *never raises for
network reasons*: all failures are folded into the returned
:class:`FetchResult` together with the protocol stage they occurred at —
exactly the observations C-Saw's detection flowchart (Figure 4) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..simnet.dns import DnsError, Resolver, resolve
from ..simnet.flow import FlowContext
from ..simnet.http import HttpResponse, HttpTimeout, http_exchange
from ..simnet.tcp import ConnectionReset, TcpError, tcp_connect
from ..simnet.tls import TlsError, tls_handshake
from ..simnet.world import World
from ..urlkit import parse_url

__all__ = [
    "FetchResult",
    "Transport",
    "classify_failure",
    "fetch_pipeline",
]


def classify_failure(error: Exception) -> str:
    """Protocol stage a failure belongs to: dns | tcp | tls | http | other.

    Thin delegator to :mod:`repro.core.taxonomy`, the single source of
    truth for failure classification.  Imported lazily: ``repro.core``
    eagerly imports this module, so a top-level import would be circular.
    """
    from ..core.taxonomy import failure_class

    return failure_class(error)


@dataclass
class FetchResult:
    """Outcome of one URL fetch attempt through one transport."""

    url: str
    transport: str
    started: float
    finished: float
    response: Optional[HttpResponse] = None
    error: Optional[Exception] = None
    failure_stage: Optional[str] = None
    redirects: List[HttpResponse] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return self.finished - self.started

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.response is not None
            and self.response.status < 400
        )

    @property
    def failed(self) -> bool:
        return not self.ok

    def __repr__(self) -> str:
        status = self.response.status if self.response else None
        return (
            f"FetchResult({self.url!r}, via={self.transport}, ok={self.ok}, "
            f"status={status}, stage={self.failure_stage}, "
            f"elapsed={self.elapsed:.3f}s)"
        )


class Transport:
    """One way of fetching a URL (direct path, local-fix, or relay)."""

    #: registry identifier; subclasses must override
    name: str = "abstract"
    #: local fixes are preferred over relay-based methods (§4.3.2)
    is_local_fix: bool = False
    #: whether the method hides the user from the censor (Tor, VPN)
    provides_anonymity: bool = False
    #: relay methods add a relay between client and origin
    uses_relay: bool = False

    def available_for(self, world: World, url: str) -> bool:
        """Whether this method can even be attempted for ``url``."""
        return True

    def fetch(
        self, world: World, ctx: FlowContext, url: str
    ) -> Generator:
        """Process returning a :class:`FetchResult`.  Must not raise for
        network failures (fold them into the result)."""
        raise NotImplementedError

    def traced_fetch(
        self, world: World, ctx: FlowContext, url: str, trace=None
    ) -> Generator:
        """Process: :meth:`fetch` wrapped with per-attempt trace events.

        With a :class:`~repro.core.trace.SessionTrace`, emits an
        ``attempt`` event when the fetch starts and a ``result`` event
        (duration + ok/failure stage) when it completes, onto the
        ``transport:<name>`` stage.  With ``trace=None`` — or a trace
        whose recording is disabled (TraceMode off, or an unsampled
        session) — it is exactly ``fetch``: emission never touches the
        simulation schedule, and the disabled path skips the event
        bookkeeping entirely.
        """
        if trace is None or not trace.enabled:
            result = yield from self.fetch(world, ctx, url)
            return result
        # Stage label kept in sync with repro.core.trace.transport_stage
        # (string literal here: repro.core imports this module eagerly).
        stage = "transport:" + self.name
        started = trace.attempt(stage, self.name)
        result = yield from self.fetch(world, ctx, url)
        trace.result(
            stage, started, self.name,
            "ok" if result.ok else (result.failure_stage or "failed"),
        )
        return result

    def __repr__(self) -> str:
        return f"<Transport {self.name}>"


def fetch_pipeline(
    world: World,
    ctx: FlowContext,
    url: str,
    *,
    transport_name: str,
    resolver: Optional[Resolver] = None,
    dst_ip: Optional[str] = None,
    sni: Optional[str] = None,
    host_header: Optional[str] = None,
    max_redirects: int = 3,
    dns_hold_on: bool = False,
) -> Generator:
    """The canonical client-side fetch: DNS → TCP → (TLS) → HTTP.

    Keyword overrides implement the local fixes: ``resolver`` switches to a
    public DNS server, ``dst_ip`` skips resolution entirely, ``sni`` and
    ``host_header`` decouple the wire-visible names from the real
    destination (domain fronting, IP-as-hostname).

    Returns a :class:`FetchResult`; never raises for network failures.
    """
    env = world.env
    started = env.now
    parsed = parse_url(url)
    redirects: List[HttpResponse] = []

    def failed(error: Exception) -> FetchResult:
        return FetchResult(
            url=url,
            transport=transport_name,
            started=started,
            finished=env.now,
            error=error,
            failure_stage=classify_failure(error),
            redirects=redirects,
        )

    current = parsed
    current_sni = sni
    current_host_header = host_header
    current_dst = dst_ip
    for _hop in range(max_redirects + 1):
        # --- DNS -----------------------------------------------------------
        if current_dst is not None:
            ip = current_dst
        else:
            use_resolver = resolver or world.isp_resolver(ctx)
            try:
                ips = yield from resolve(
                    env, world.network, ctx, current.host,
                    use_resolver, world.dns_config, hold_on=dns_hold_on,
                )
            except DnsError as error:
                return failed(error)
            ip = ips[0]

        # --- TCP -----------------------------------------------------------
        try:
            conn = yield from tcp_connect(
                env, world.network, ctx, ip, current.port, world.tcp_config
            )
        except TcpError as error:
            return failed(error)

        # --- TLS -----------------------------------------------------------
        if current.scheme == "https":
            announce = current_sni if current_sni is not None else current.host
            try:
                yield from tls_handshake(env, ctx, conn, announce, world.tls_config)
            except TlsError as error:
                return failed(error)

        # --- HTTP ----------------------------------------------------------
        header_host = current_host_header or current.host
        try:
            response = yield from http_exchange(
                env, world.network, world.web, ctx, conn,
                current.scheme, header_host, current.path,
                world.http_config,
            )
        except (HttpTimeout, ConnectionReset) as error:
            return failed(error)

        if response.is_redirect and response.location:
            redirects.append(response)
            current = parse_url(response.location)
            # Redirect targets are fetched with their own names.
            current_sni = None
            current_host_header = None
            current_dst = None
            continue

        return FetchResult(
            url=url,
            transport=transport_name,
            started=started,
            finished=env.now,
            response=response,
            redirects=redirects,
        )

    return failed(HttpTimeout(url, "(redirect loop)"))
