"""ScenarioRunner: execute a compiled scenario and check expectations.

Four execution modes, resolved from the spec:

- ``clients`` — full C-Saw populations browsing through the simulated
  Internet while timed blocking events land (the §7.5 wave shape);
- ``probe`` — no workload, just direct-path measurements from every
  vantage the expectations name (Table-1-style verdict worlds);
- ``cohort`` — fleet-scale mean-field cohorts via :mod:`repro.core.fleet`,
  optionally sharded across processes via :mod:`repro.runner`;
- ``attack`` — adversarial reporter populations driven straight at
  ``ServerDB``/``VotingLedger`` and judged by the reputation analyzer.

The client driver reproduces the legacy :class:`BlockingWave` loop
draw-for-draw (same stream names, same jitter, same think-time), which
is what lets the old entrypoints become thin wrappers with bit-identical
same-seed output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.records import BlockType
from .compiler import CompiledScenario, ScenarioCompiler
from .expect import ExpectationReport, evaluate
from .spec import ScenarioSpec, SpecError

__all__ = [
    "SYMPTOM_LABELS",
    "symptom_for",
    "ProbeVerdict",
    "ScenarioObservation",
    "ReputationOutcome",
    "ScenarioOutcome",
    "ScenarioRunner",
    "drive_clients",
]

# Symptom labels in the paper's snapshot vocabulary (§7.5).
SYMPTOM_LABELS = {
    "http-get-timeout": "HTTP_GET_TIMEOUT",
    "block-page": "HTTP_GET_BLOCKPAGE",
    "dns-redirect": "DNS blocking",
    "dns-nxdomain": "DNS blocking",
    "dns-servfail": "DNS blocking",
    "dns-timeout": "DNS blocking",
    "tcp-timeout": "TCP/IP blocking",
}


def symptom_for(stages) -> str:
    """Collapse a stage list onto one snapshot label (DNS wins)."""
    symptom = "unknown"
    for stage in stages:
        label = SYMPTOM_LABELS.get(stage.value)
        if label is not None:
            symptom = label
            if label == "DNS blocking":
                break
    return symptom


@dataclass(frozen=True)
class ProbeVerdict:
    """Direct-path measurement outcome from one vantage."""

    status: str
    stages: Tuple[str, ...]
    suspected_blockpage: bool
    detection_time: float


@dataclass(frozen=True)
class ScenarioObservation:
    """One global-DB detection, in snapshot vocabulary."""

    detected_at: float
    asn: int
    url: str
    symptom: str


@dataclass
class ReputationOutcome:
    """What the reputation pass concluded about each attack group."""

    flagged: Tuple[str, ...]  # flagged reporter UUIDs, registration order
    roles: Dict[str, str]  # group -> role
    flag_counts: Dict[str, Tuple[int, int]]  # group -> (flagged, total)
    removed_urls: Dict[str, List[str]]  # group -> URLs gone post-enforce
    surviving_urls: Dict[str, List[str]]  # group -> URLs still present


@dataclass
class ScenarioOutcome:
    """Everything one run produced, plus the expectation report."""

    spec: ScenarioSpec
    mode: str
    compiled: Optional[CompiledScenario] = None
    observations: List[ScenarioObservation] = field(default_factory=list)
    verdicts: Dict[Tuple[int, str], ProbeVerdict] = field(default_factory=dict)
    classifications: Dict[str, str] = field(default_factory=dict)
    events: List = field(default_factory=list)  # CompiledEvents that fired
    fleet: Optional[object] = None  # FleetMetrics
    reputation: Optional[ReputationOutcome] = None
    report: ExpectationReport = None  # type: ignore[assignment]


# -- the client-mode driver (the legacy wave loop, verbatim) -------------------


def _censor_process(world, events):
    env = world.env
    for event in events:  # pre-sorted by time
        yield env.timeout(max(0.0, event.time - env.now))
        event.policy.add_rule(event.rule)


def _user_process(world, client, rng, urls, workload, duration):
    env = world.env
    yield env.timeout(rng.uniform(0, workload.start_jitter))
    yield from client.install()
    client.start_background(until=duration)
    while env.now < duration:
        yield env.timeout(rng.expovariate(1.0 / workload.interval))
        url = rng.choice(urls)
        response = yield from client.request(url)
        yield response.measurement_process


def drive_clients(compiled: CompiledScenario) -> None:
    """Run the browse workload to the spec's horizon (censor events
    first, then one behaviour process per client, as the legacy driver
    ordered them)."""
    spec = compiled.spec
    world = compiled.world
    duration = spec.execution.duration
    world.env.process(_censor_process(world, compiled.events))
    urls = list(spec.workload.urls)
    for index, client in enumerate(compiled.clients):
        rng = world.rngs.fork(f"{spec.workload.stream_prefix}-{index}").stream(
            "behaviour"
        )
        world.env.process(
            _user_process(world, client, rng, urls, spec.workload, duration)
        )
    world.env.run()


# -- the runner ----------------------------------------------------------------


class ScenarioRunner:
    """Compile, execute, observe, check."""

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers

    def run(self, spec: ScenarioSpec) -> ScenarioOutcome:
        mode = spec.resolved_mode()
        if mode == "cohort":
            outcome = self._run_cohort(spec)
        elif mode == "attack":
            outcome = self._run_attack(spec)
        else:
            outcome = self._run_world(spec, browse=(mode == "clients"))
        outcome.report = evaluate(spec, outcome)
        return outcome

    # -- world-backed modes ---------------------------------------------------

    def _run_world(self, spec: ScenarioSpec, browse: bool) -> ScenarioOutcome:
        compiled = ScenarioCompiler().compile(spec)
        outcome = ScenarioOutcome(
            spec=spec,
            mode="clients" if browse else "probe",
            compiled=compiled,
            events=list(compiled.events),
        )
        if browse:
            drive_clients(compiled)
            if compiled.server is not None:
                outcome.observations = [
                    ScenarioObservation(
                        detected_at=entry.first_measured_at,
                        asn=entry.asn,
                        url=entry.url,
                        symptom=symptom_for(entry.stages),
                    )
                    for entry in compiled.server.all_entries()
                ]
                outcome.observations.sort(key=lambda o: (o.detected_at, o.asn, o.url))
        else:
            # Probe-only worlds still honour static events: install every
            # rule up front so verdicts reflect the end state.
            for event in compiled.events:
                event.policy.add_rule(event.rule)
        self._probe_expectations(compiled, outcome)
        return outcome

    def _probe_expectations(
        self, compiled: CompiledScenario, outcome: ScenarioOutcome
    ) -> None:
        """Measure the direct path for every (AS, URL) the expectations
        name — after the workload, so probes see the final censor state."""
        from ..core.detection import measure_direct_path

        spec = compiled.spec
        targets: List[Tuple[int, str]] = []
        for want in spec.expect.verdicts:
            targets.append((want.asn, want.url))
        class_urls = [want.url for want in spec.expect.classifications]
        for url in class_urls:
            for as_spec in spec.ases:
                targets.append((as_spec.asn, url))
        seen = dict.fromkeys(targets)  # ordered dedup

        world = compiled.world
        probes: Dict[Tuple[int, str], ProbeVerdict] = {}
        probe_clients: Dict[int, tuple] = {}
        for index, (asn, url) in enumerate(seen):
            isp = compiled.isps.get(asn)
            if isp is None:
                raise SpecError(f"expect: no AS {asn} in this scenario")
            if asn not in probe_clients:
                probe_clients[asn] = world.add_client(
                    f"scenario-probe-{asn}", [isp]
                )
            client, access = probe_clients[asn]
            ctx = world.new_ctx(client, access, stream=f"scenario-probe/{asn}/{index}")
            measured = world.run_process(measure_direct_path(world, ctx, url))
            probes[(asn, url)] = ProbeVerdict(
                status=measured.status.value,
                stages=tuple(s.value for s in measured.stages),
                suspected_blockpage=measured.suspected_blockpage,
                detection_time=measured.detection_time,
            )
        outcome.verdicts = probes

        for url in class_urls:
            per_as = [probes[(a.asn, url)] for a in spec.ases]
            outcome.classifications[url] = _classify(per_as)

    # -- cohort mode ----------------------------------------------------------

    def _run_cohort(self, spec: ScenarioSpec) -> ScenarioOutcome:
        from ..core.fleet import run_fleet_storm, run_fleet_storm_sharded

        cohort = spec.cohort
        kwargs = dict(
            seed=spec.seed,
            n_ases=cohort.n_ases,
            clients_per_as=cohort.clients_per_as,
            reporter_fraction=cohort.reporter_fraction,
            urls_per_as=cohort.urls_per_as,
            pull_interval=cohort.pull_interval,
            wave_at=cohort.wave_at,
            horizon=cohort.horizon if cohort.horizon > 0 else None,
            asn_base=cohort.asn_base,
            planes=ScenarioCompiler.compile_planes(spec),
            wave_stagger=cohort.wave_stagger,
        )
        if cohort.sharded:
            # Exact under sharding: plane sampling / wave stagger derive
            # from (seed, AS identity) and FleetMetrics.merge folds the
            # per-plane counters and curves across disjoint AS slices.
            metrics = run_fleet_storm_sharded(workers=self.workers, **kwargs)
        else:
            metrics = run_fleet_storm(**kwargs)
        return ScenarioOutcome(spec=spec, mode="cohort", fleet=metrics)

    # -- attack mode ----------------------------------------------------------

    def _run_attack(self, spec: ScenarioSpec) -> ScenarioOutcome:
        from ..core import ServerDB
        from ..core.globaldb import ReportItem
        from ..core.reputation import ReputationAnalyzer
        from ..simnet.rng import RngRegistry

        attack = spec.attack
        server = ServerDB(entry_ttl=None)
        rngs = RngRegistry(seed=spec.seed)
        now = 0.0

        group_uuids: Dict[str, List[str]] = {}
        group_urls: Dict[str, List[str]] = {}
        roles: Dict[str, str] = {}
        for group in attack.groups:
            rng = rngs.stream(f"attack/{group.name}")
            roles[group.name] = group.role
            uuids: List[str] = []
            urls_seen: Dict[str, None] = {}
            if group.role == "honest":
                pool = [
                    f"http://{group.name}-pool-{i}.attack.example/"
                    for i in range(group.pool_size)
                ]
            shared = [
                f"http://{group.name}-shared-{k}.attack.example/"
                for k in range(group.urls_each)
            ]
            for member in range(group.clients):
                now += 1.0
                uuid = server.register(now)
                uuids.append(uuid)
                if group.role == "honest":
                    urls = rng.sample(pool, group.urls_each)
                elif group.role == "flood":
                    urls = [
                        f"http://{group.name}-{member}-{k}.attack.example/"
                        for k in range(group.urls_each)
                    ]
                else:  # clique: everyone vouches for the same set
                    urls = shared
                urls_seen.update(dict.fromkeys(urls))
                now += 1.0
                server.post_update(
                    uuid,
                    [
                        ReportItem(
                            url=url,
                            asn=attack.asn,
                            stages=(BlockType.BLOCK_PAGE,),
                            measured_at=now,
                        )
                        for url in urls
                    ],
                    now,
                )
            group_uuids[group.name] = uuids
            group_urls[group.name] = list(urls_seen)

        analyzer = ReputationAnalyzer(server)
        flagged = list(
            analyzer.flag_suspects(
                min_volume=attack.min_volume,
                max_corroboration=attack.max_corroboration,
                clique_similarity=attack.clique_similarity,
            )
        )
        if attack.enforce:
            for uuid in flagged:
                server.revoke(uuid)

        flagged_set = set(flagged)
        flag_counts = {
            name: (sum(1 for u in uuids if u in flagged_set), len(uuids))
            for name, uuids in group_uuids.items()
        }
        removed: Dict[str, List[str]] = {}
        surviving: Dict[str, List[str]] = {}
        for name, urls in group_urls.items():
            removed[name] = [
                url for url in urls if server.entry(url, attack.asn) is None
            ]
            surviving[name] = [
                url for url in urls if server.entry(url, attack.asn) is not None
            ]
        return ScenarioOutcome(
            spec=spec,
            mode="attack",
            reputation=ReputationOutcome(
                flagged=tuple(flagged),
                roles=roles,
                flag_counts=flag_counts,
                removed_urls=removed,
                surviving_urls=surviving,
            ),
        )


def _classify(per_as: List[ProbeVerdict]) -> str:
    """Cross-vantage diagnosis (§8): blocked nowhere -> open; blocked at
    *every* vantage purely by server-side filtering -> geoblocking (the
    provider, not the path); anything vantage-dependent -> censorship."""
    blocked = [v for v in per_as if v.status == "blocked"]
    if not blocked:
        return "open"
    server_side = BlockType.SERVER_FILTERING.value
    if len(blocked) == len(per_as) and all(
        server_side in v.stages for v in blocked
    ):
        return "geoblocking"
    return "censorship"
