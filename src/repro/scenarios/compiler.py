"""ScenarioCompiler: spec tree -> live simulation objects.

The compiler is the *only* place that calls ``World(...)`` /
``CensorPolicy(...)`` for scenario work (csaw-lint CSL009 enforces the
boundary).  It builds in one canonical order — resolver, sites,
block pages, policies, ASes, circumvention infrastructure, global DB,
populations — which is safe because every RNG draw comes from a
name-keyed stream, not from construction order; same-seed worlds are
bit-identical however the spec sections are arranged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..censor.blockpages import DEFAULT_BLOCKPAGE_HTML
from ..censor.policy import CensorPolicy, Matcher, Rule
from ..circumvent import (
    DomainFrontingTransport,
    HttpsTransport,
    IpAsHostnameTransport,
    LanternNetwork,
    LanternTransport,
    PublicDnsTransport,
    StaticProxyTransport,
    TorNetwork,
    TorTransport,
    Transport,
    build_proxy_fleet,
)
from ..core import CSawClient, CSawConfig, ServerDB
from ..simnet.rng import RngRegistry
from ..simnet.topology import AutonomousSystem, Host
from ..simnet.web import WebPage
from ..simnet.world import World
from .mechanisms import build_rule
from .spec import EventSpec, RuleSpec, ScenarioSpec, SpecError

__all__ = ["CompiledEvent", "CompiledScenario", "ScenarioCompiler", "blockpage_site"]


def blockpage_site(world: World, hostname: str, html: str, location: str) -> Host:
    """A censor block-page server: serves the block page for any path."""
    page_factory = lambda path: WebPage(  # noqa: E731 - tiny closure
        url=f"http://{hostname}{path}",
        size_bytes=max(900, len(html)),
        html=html,
        category="blockpage",
    )
    site = world.web.add_site(
        hostname,
        location=location,
        supports_https=False,
        catch_all=page_factory,
    )
    return site.host


@dataclass(frozen=True)
class CompiledEvent:
    """One resolved blocking event, ready to install at ``time``."""

    time: float
    asn: int
    domain: str
    rule: Rule
    policy: CensorPolicy


@dataclass
class CompiledScenario:
    """Everything a runner (or a legacy wrapper) needs, in one bundle."""

    spec: ScenarioSpec
    world: World
    server: Optional[ServerDB]
    policies: Dict[str, CensorPolicy]
    isps: Dict[int, AutonomousSystem]
    blockpages: Dict[str, Host]
    tor: Optional[TorNetwork]
    lantern: Optional[LanternNetwork]
    proxies: List[StaticProxyTransport]
    clients: List[CSawClient] = field(default_factory=list)
    events: List[CompiledEvent] = field(default_factory=list)

    def make_transports(
        self,
        client_name: str,
        include: Optional[List[str]] = None,
        tor_rotation: float = 600.0,
        tor_exit_location: Optional[str] = None,
    ) -> List[Transport]:
        """Per-client transport set; names match the legacy catalogue
        (Tor circuits and Lantern trust are per-user, so nothing here is
        shared between clients)."""
        from ..circumvent.holdon import HoldOnTransport

        def need(what, value):
            if value is None:
                raise SpecError(
                    f"transport needs {what}: declare it under [infra]"
                )
            return value

        catalogue = {
            "public-dns": lambda: PublicDnsTransport(),
            "hold-on": lambda: HoldOnTransport(),
            "https": lambda: HttpsTransport(),
            "ip-as-hostname": lambda: IpAsHostnameTransport(),
            "domain-fronting": lambda: DomainFrontingTransport(
                need("front_hostname", self.spec.infra.front_hostname or None)
            ),
            "tor": lambda: TorTransport(
                need("tor_relays", self.tor).client(
                    f"tor/{client_name}",
                    rotation_period=tor_rotation,
                    exit_location=tor_exit_location,
                )
            ),
            "lantern": lambda: LanternTransport(
                need("lantern_proxies", self.lantern),
                user_stream=f"lantern/{client_name}",
            ),
        }
        names = include if include is not None else list(catalogue)
        unknown = [n for n in names if n not in catalogue]
        if unknown:
            raise SpecError(
                f"unknown transport(s) {unknown} "
                f"(known: {', '.join(sorted(catalogue))})"
            )
        return [catalogue[name]() for name in names]


class ScenarioCompiler:
    """Turns a :class:`ScenarioSpec` into a :class:`CompiledScenario`."""

    @staticmethod
    def compile_planes(spec: ScenarioSpec) -> Optional[list]:
        """Build the spec's ``[[planes]]`` mix into live plane objects.

        Cohort mode bypasses :meth:`compile` (no ``World`` is built), but
        the compiler stays the only layer that turns spec sections into
        live simulation objects — the runner calls this instead of
        touching the plane registry itself.  Returns ``None`` when no
        mix is declared, which lets :class:`~repro.core.fleet.ClientCohort`
        fall back to its single default C-Saw plane.
        """
        if not spec.planes:
            return None
        from ..planes import build_plane

        return [build_plane(plane.as_dict()) for plane in spec.planes]

    def compile(self, spec: ScenarioSpec) -> CompiledScenario:
        spec.validate()
        world = World(seed=spec.seed)
        if spec.infra.public_resolver:
            world.add_public_resolver()

        for site in spec.sites:
            kwargs = dict(
                location=site.location,
                supports_https=site.supports_https,
                supports_fronting=site.supports_fronting,
            )
            if site.bandwidth_bps > 0:
                kwargs["bandwidth_bps"] = site.bandwidth_bps
            if site.geo_blocked:
                kwargs["geo_blocked"] = set(site.geo_blocked)
            world.web.add_site(site.hostname, **kwargs)
            world.web.add_page(
                f"http://{site.hostname}/",
                size_bytes=site.size_bytes,
                category=site.category,
            )

        blockpages: Dict[str, Host] = {}
        for page in spec.blockpages:
            html = DEFAULT_BLOCKPAGE_HTML
            if page.brand:
                html = html.replace("ISP-A", page.brand)
            blockpages[page.hostname] = blockpage_site(
                world, page.hostname, html, page.location
            )

        policies: Dict[str, CensorPolicy] = {}
        for i, policy_spec in enumerate(spec.policies):
            policy = CensorPolicy(name=policy_spec.name)
            for j, rule_spec in enumerate(policy_spec.rules):
                policy.add_rule(
                    self._compile_rule(
                        rule_spec, world, blockpages, spec,
                        where=f"policies[{i}].rules[{j}]",
                    )
                )
            policies[policy_spec.name] = policy

        isps: Dict[int, AutonomousSystem] = {}
        for as_spec in spec.ases:
            isps[as_spec.asn] = world.add_isp(
                as_spec.asn,
                as_spec.name,
                country=as_spec.country,
                policy=policies[as_spec.policy] if as_spec.policy else None,
            )

        tor = (
            TorNetwork.build(world, n_relays=spec.infra.tor_relays)
            if spec.infra.tor_relays > 0
            else None
        )
        lantern = (
            LanternNetwork.build(world, n_proxies=spec.infra.lantern_proxies)
            if spec.infra.lantern_proxies > 0
            else None
        )
        proxies = build_proxy_fleet(world) if spec.infra.proxy_fleet else []

        compiled = CompiledScenario(
            spec=spec,
            world=world,
            server=ServerDB(entry_ttl=None) if spec.populations else None,
            policies=policies,
            isps=isps,
            blockpages=blockpages,
            tor=tor,
            lantern=lantern,
            proxies=proxies,
        )
        self._compile_populations(compiled)
        self._compile_events(compiled)
        return compiled

    # -- pieces ---------------------------------------------------------------

    def _compile_rule(
        self,
        rule: RuleSpec,
        world: World,
        blockpages: Dict[str, Host],
        spec: ScenarioSpec,
        where: str,
    ) -> Rule:
        hosts = world.network.hosts_by_name

        def ip_of(hostname: str) -> str:
            host = hosts.get(hostname)
            if host is None:
                raise SpecError(
                    f"{where}: no host {hostname!r} (declare it under [[sites]])"
                )
            return host.ip

        matcher_kwargs = {}
        if rule.domains:
            matcher_kwargs["domains"] = set(rule.domains)
        keywords = set(rule.keywords)
        keywords.update(ip_of(h) for h in rule.keywords_ip_of)
        if keywords:
            matcher_kwargs["keywords"] = keywords
        if rule.url_prefixes:
            matcher_kwargs["url_prefixes"] = set(rule.url_prefixes)
        ips = set(rule.ips)
        ips.update(ip_of(h) for h in rule.ips_of)
        if ips:
            matcher_kwargs["ips"] = ips

        return build_rule(
            Matcher(**matcher_kwargs),
            rule.mechanisms,
            blockpage_ip=self._blockpage_ip(rule.blockpage, blockpages, spec, where),
            redirect_ip=rule.redirect_ip or None,
            label=rule.label,
            where=where,
        )

    @staticmethod
    def _blockpage_ip(
        ref: str, blockpages: Dict[str, Host], spec: ScenarioSpec, where: str
    ) -> Optional[str]:
        if ref:
            return blockpages[ref].ip  # validated by spec.validate()
        if spec.blockpages:
            return blockpages[spec.blockpages[0].hostname].ip
        return None

    def _compile_populations(self, compiled: CompiledScenario) -> None:
        spec = compiled.spec
        for i, population in enumerate(spec.populations):
            config = (
                CSawConfig(**population.config)
                if population.config
                else CSawConfig()
            )
            asns = population.ases or tuple(a.asn for a in spec.ases)
            for asn in asns:
                isp = compiled.isps[asn]
                for index in range(population.per_as):
                    name = population.name_format.format(asn=asn, index=index)
                    compiled.clients.append(
                        CSawClient(
                            compiled.world,
                            name,
                            [isp],
                            transports=compiled.make_transports(
                                name, include=list(population.transports)
                            ),
                            server_db=compiled.server,
                            config=config,
                            location=population.location,
                        )
                    )

    def _compile_events(self, compiled: CompiledScenario) -> None:
        spec = compiled.spec
        event_specs: List[EventSpec] = list(spec.events)
        if spec.rolling is not None:
            rolling = spec.rolling
            rng = RngRegistry(seed=spec.seed).stream(rolling.stream)
            for asn in rolling.asns:
                offset = rng.uniform(0.0, rolling.lag)
                for domain in rolling.domains:
                    event_specs.append(
                        EventSpec(
                            time=rolling.start + offset,
                            asn=asn,
                            domain=domain,
                            mechanisms=rolling.mechanisms,
                            redirect_ip=rolling.redirect_ip,
                            blockpage=rolling.blockpage,
                        )
                    )
        for i, event in enumerate(event_specs):
            as_spec = next(a for a in spec.ases if a.asn == event.asn)
            if not as_spec.policy:
                raise SpecError(
                    f"events[{i}]: AS {event.asn} has no policy to install "
                    "rules into (give it an empty [[policies]] entry)"
                )
            rule = build_rule(
                Matcher(domains={event.domain}),
                event.mechanisms,
                blockpage_ip=self._blockpage_ip(
                    event.blockpage, compiled.blockpages, spec, f"events[{i}]"
                ),
                redirect_ip=event.redirect_ip or None,
                label=event.label or event.domain,
                where=f"events[{i}]",
            )
            compiled.events.append(
                CompiledEvent(
                    time=event.time,
                    asn=event.asn,
                    domain=event.domain,
                    rule=rule,
                    policy=compiled.policies[as_spec.policy],
                )
            )
        compiled.events.sort(key=lambda e: e.time)
