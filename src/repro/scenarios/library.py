"""The canonical scenarios, expressed as specs.

These are the declarative re-statements of the three legacy imperative
builders — Pakistan §2.3/Table 1, the centralized-country contrast case,
and the §7.5 blocking wave.  The old entrypoints in
``repro.workloads.scenarios`` / ``repro.workloads.events`` are now thin
wrappers that compile these specs; ``tests/test_scenario_dsl.py`` proves
the compiled worlds bit-identical (same seed, same floats) to the
pre-redesign builders via committed golden fingerprints.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .spec import (
    AsSpec,
    BlockpageSpec,
    EventSpec,
    ExecutionSpec,
    InfraSpec,
    PolicySpec,
    PopulationSpec,
    RuleSpec,
    ScenarioSpec,
    SiteSpec,
    WorkloadSpec,
)

__all__ = [
    "pakistan_spec",
    "centralized_spec",
    "wave_spec",
    "WAVE_ASNS",
    "TWITTER",
    "INSTAGRAM",
]

ISP_A_ASN = 17557
ISP_B_ASN = 38193
CLEAN_ASN = 9541

YOUTUBE = "www.youtube.com"
FRONT = "www.google.com"
PORN_SITE = "www.hotstuff-videos.com"
SMALL_UNBLOCKED = "www.smallnews.example.com"
LARGE_UNBLOCKED = "www.bigmedia.example.com"

TABLE5_SITES = {
    "tcp-ip": "www.blocked-tcpip.example.com",
    "dns-servfail": "www.blocked-dnsfail.example.com",
    "dns-refused": "www.blocked-dnsrefused.example.com",
    "http-blockpage": "www.blocked-http.example.com",
    "tcp-ip+dns": "www.blocked-multi.example.com",
}

TWITTER = "twitter.com"
INSTAGRAM = "www.instagram.com"
WAVE_ASNS = (38193, 17557, 59257, 45773)

_BLOCKED_CONTENT = dict(
    domains=(PORN_SITE, "hotstuff-videos.com"),
    keywords=("porn", "xxx", "adult-videos"),
)


def pakistan_spec(
    seed: int = 1,
    n_tor_relays: int = 40,
    n_lantern_proxies: int = 10,
    with_proxy_fleet: bool = True,
) -> ScenarioSpec:
    """The §2.3 / Table 1 / §7 case-study world as data."""
    sites = [
        SiteSpec(YOUTUBE, location="global-anycast", size_bytes=360_000,
                 category="video", supports_fronting=True, bandwidth_bps=200e6),
        SiteSpec(FRONT, location="global-anycast", size_bytes=15_000,
                 bandwidth_bps=400e6),
        SiteSpec(PORN_SITE, location="us-east", size_bytes=50_000,
                 category="porn"),
        SiteSpec(SMALL_UNBLOCKED, location="netherlands", size_bytes=95_000),
        SiteSpec(LARGE_UNBLOCKED, location="us-east", size_bytes=316_000),
    ] + [
        SiteSpec(hostname, location="us-east", size_bytes=300_000)
        for hostname in TABLE5_SITES.values()
    ]

    policy_a = PolicySpec(
        name="ISP-A",
        rules=(
            RuleSpec(domains=("youtube.com",), mechanisms=("blockpage-redirect",),
                     blockpage="block.isp-a.pk", label="youtube"),
            RuleSpec(mechanisms=("blockpage-redirect",),
                     blockpage="block.isp-a.pk", label="content",
                     **_BLOCKED_CONTENT),
            # Table-5 calibration rules (the measurement vantage).
            RuleSpec(domains=(TABLE5_SITES["tcp-ip"],),
                     ips_of=(TABLE5_SITES["tcp-ip"],),
                     mechanisms=("ip-drop",), label="table5-tcpip"),
            RuleSpec(domains=(TABLE5_SITES["dns-servfail"],),
                     mechanisms=("dns-servfail",), label="table5-servfail"),
            RuleSpec(domains=(TABLE5_SITES["dns-refused"],),
                     mechanisms=("dns-refused",), label="table5-refused"),
            RuleSpec(domains=(TABLE5_SITES["http-blockpage"],),
                     mechanisms=("blockpage-redirect",),
                     blockpage="block.isp-a.pk", label="table5-http"),
            RuleSpec(domains=(TABLE5_SITES["tcp-ip+dns"],),
                     ips_of=(TABLE5_SITES["tcp-ip+dns"],),
                     mechanisms=("dns-servfail", "ip-drop"),
                     label="table5-multi"),
        ),
    )
    policy_b = PolicySpec(
        name="ISP-B",
        rules=(
            # ISP-B's DPI also drops requests addressed to YouTube's IP
            # literally (Host: <ip>), so the ip-as-hostname trick fails
            # there and C-Saw is pushed to domain fronting.
            RuleSpec(domains=("youtube.com",), keywords_ip_of=(YOUTUBE,),
                     mechanisms=("dns-redirect", "http-drop", "tls-drop"),
                     redirect_ip="10.11.12.13", label="youtube-multistage"),
            RuleSpec(mechanisms=("blockpage-iframe",),
                     blockpage="block.isp-b.pk", label="content",
                     **_BLOCKED_CONTENT),
        ),
    )

    urls = {
        "youtube": f"http://{YOUTUBE}/",
        "porn": f"http://{PORN_SITE}/",
        "small-unblocked": f"http://{SMALL_UNBLOCKED}/",
        "large-unblocked": f"http://{LARGE_UNBLOCKED}/",
    }
    urls.update(
        {f"table5/{key}": f"http://{host}/" for key, host in TABLE5_SITES.items()}
    )

    return ScenarioSpec(
        name="pakistan-case-study",
        description="§2.3 distributed censorship: ISP-A block pages vs "
        "ISP-B multi-stage blocking, plus Table-5 calibration sites",
        seed=seed,
        sites=tuple(sites),
        blockpages=(
            BlockpageSpec("block.isp-a.pk"),
            BlockpageSpec("block.isp-b.pk", brand="ISP-B"),
        ),
        policies=(policy_a, policy_b),
        ases=(
            AsSpec(ISP_A_ASN, "ISP-A", policy="ISP-A"),
            AsSpec(ISP_B_ASN, "ISP-B", policy="ISP-B"),
            AsSpec(CLEAN_ASN, "ISP-Clean"),
        ),
        infra=InfraSpec(
            tor_relays=n_tor_relays,
            lantern_proxies=n_lantern_proxies,
            proxy_fleet=with_proxy_fleet,
            front_hostname=FRONT,
        ),
        execution=ExecutionSpec(mode="probe"),
        urls=urls,
    )


def centralized_spec(
    seed: int = 1, n_isps: int = 4, country: str = "pakistan"
) -> ScenarioSpec:
    """One national policy object shared by every ISP (§2's
    centralized-censorship contrast case)."""
    return ScenarioSpec(
        name="centralized-country",
        description="centralized censorship: every ISP shares one "
        "national filtering policy",
        seed=seed,
        sites=(
            SiteSpec(YOUTUBE, location="global-anycast", size_bytes=360_000,
                     category="video", supports_fronting=True),
            SiteSpec(SMALL_UNBLOCKED, location="netherlands", size_bytes=95_000),
        ),
        blockpages=(BlockpageSpec("block.national-filter.example"),),
        policies=(
            PolicySpec(
                name="national",
                rules=(
                    RuleSpec(domains=("youtube.com",),
                             mechanisms=("blockpage-redirect",),
                             label="national-youtube"),
                ),
            ),
        ),
        ases=tuple(
            AsSpec(50000 + index, f"{country}-ISP-{index}", country=country,
                   policy="national")
            for index in range(n_isps)
        ),
        infra=InfraSpec(tor_relays=30, lantern_proxies=8),
        execution=ExecutionSpec(mode="probe"),
        urls={
            "youtube": f"http://{YOUTUBE}/",
            "small-unblocked": f"http://{SMALL_UNBLOCKED}/",
        },
    )


def wave_spec(
    seed: int = 5,
    users_per_as: int = 4,
    browse_interval: float = 1800.0,
    duration: float = 36 * 3600.0,
    events: Optional[Sequence[EventSpec]] = None,
    asns: Sequence[int] = WAVE_ASNS,
) -> ScenarioSpec:
    """The §7.5 Twitter/Instagram blocking wave as data."""
    if events is None:
        events = default_wave_events()
    return ScenarioSpec(
        name="blocking-wave",
        description="§7.5 time-varying blocking wave: per-AS events, "
        "C-Saw users producing the global-DB timeline",
        seed=seed,
        sites=(
            SiteSpec(TWITTER, location="us-east", size_bytes=250_000,
                     bandwidth_bps=300e6),
            SiteSpec(INSTAGRAM, location="us-east", size_bytes=500_000,
                     bandwidth_bps=300e6),
        ),
        blockpages=(BlockpageSpec("block.pta.example"),),
        policies=tuple(PolicySpec(name=f"AS{asn}") for asn in asns),
        ases=tuple(AsSpec(asn, f"AS{asn}", policy=f"AS{asn}") for asn in asns),
        infra=InfraSpec(tor_relays=30, lantern_proxies=8),
        populations=(
            PopulationSpec(
                name_format="wave-user-{asn}-{index}",
                per_as=users_per_as,
                transports=("public-dns", "https", "tor", "lantern"),
                config=dict(
                    record_ttl=4 * 3600.0,  # short TTL: re-measure often
                    report_interval=1800.0,
                    download_interval=1800.0,
                ),
            ),
        ),
        workload=WorkloadSpec(
            kind="browse",
            urls=(f"http://{TWITTER}/", f"http://{INSTAGRAM}/"),
            interval=browse_interval,
            start_jitter=600.0,
            stream_prefix="wave",
        ),
        events=tuple(events),
        execution=ExecutionSpec(mode="clients", duration=duration),
        urls={"twitter": f"http://{TWITTER}/", "instagram": f"http://{INSTAGRAM}/"},
    )


def default_wave_events() -> tuple:
    """The paper's snapshot: Twitter first (two ASes, different
    mechanisms), Instagram the next morning via DNS in three ASes."""
    h = 3600.0
    return (
        EventSpec(time=13.5 * h, asn=38193, domain=TWITTER,
                  mechanisms=("http-drop",)),
        EventSpec(time=13.55 * h, asn=17557, domain=TWITTER,
                  mechanisms=("blockpage-redirect",)),
        EventSpec(time=28.8 * h, asn=38193, domain=INSTAGRAM,
                  mechanisms=("dns-redirect", "http-drop")),
        EventSpec(time=33.1 * h, asn=59257, domain=INSTAGRAM,
                  mechanisms=("dns-redirect", "http-drop")),
        EventSpec(time=33.5 * h, asn=45773, domain=INSTAGRAM,
                  mechanisms=("dns-redirect", "http-drop")),
    )
