"""Mechanism vocabulary: spec strings -> censor ``Rule`` verdicts.

One registry maps the declarative mechanism names (the §2.1 taxonomy)
onto per-stage verdict constructors.  A rule lists one or more
mechanisms; each contributes a verdict for exactly one stage (dns, ip,
http, tls), and multi-stage blocking — ISP-B's DNS redirect *plus*
HTTP/TLS drops — is just several names on one rule.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..censor.actions import (
    DnsAction,
    DnsVerdict,
    HttpAction,
    HttpVerdict,
    IpAction,
    IpVerdict,
    TlsAction,
    TlsVerdict,
)
from ..censor.policy import Matcher, Rule
from .spec import SpecError

__all__ = ["MECHANISMS", "build_rule"]


def _dns(action: DnsAction):
    def make(blockpage_ip, redirect_ip, where):
        if action is DnsAction.REDIRECT:
            if not redirect_ip:
                raise SpecError(f"{where}: dns-redirect needs redirect_ip")
            return "dns", DnsVerdict(action, redirect_ip=redirect_ip)
        return "dns", DnsVerdict(action)

    return make


def _blockpage(action: HttpAction):
    def make(blockpage_ip, redirect_ip, where):
        if not blockpage_ip:
            raise SpecError(
                f"{where}: {action.value} needs a blockpage (declare one "
                "under [[blockpages]])"
            )
        return "http", HttpVerdict(action, blockpage_ip=blockpage_ip)

    return make


MECHANISMS = {
    "dns-redirect": _dns(DnsAction.REDIRECT),
    "dns-nxdomain": _dns(DnsAction.NXDOMAIN),
    "dns-servfail": _dns(DnsAction.SERVFAIL),
    "dns-refused": _dns(DnsAction.REFUSED),
    "dns-timeout": _dns(DnsAction.TIMEOUT),
    "ip-drop": lambda b, r, w: ("ip", IpVerdict(IpAction.DROP)),
    "ip-rst": lambda b, r, w: ("ip", IpVerdict(IpAction.RST)),
    "http-drop": lambda b, r, w: ("http", HttpVerdict(HttpAction.DROP)),
    "http-rst": lambda b, r, w: ("http", HttpVerdict(HttpAction.RST)),
    "tls-drop": lambda b, r, w: ("tls", TlsVerdict(TlsAction.DROP)),
    "tls-rst": lambda b, r, w: ("tls", TlsVerdict(TlsAction.RST)),
    "blockpage-redirect": _blockpage(HttpAction.BLOCKPAGE_REDIRECT),
    "blockpage-iframe": _blockpage(HttpAction.BLOCKPAGE_IFRAME),
}


def build_rule(
    matcher: Matcher,
    mechanisms: Tuple[str, ...],
    blockpage_ip: Optional[str] = None,
    redirect_ip: Optional[str] = None,
    label: str = "",
    where: str = "rule",
) -> Rule:
    """Fuse the listed mechanisms into one first-match censor rule."""
    verdicts = {}
    for name in mechanisms:
        maker = MECHANISMS.get(name)
        if maker is None:
            raise SpecError(
                f"{where}: unknown mechanism {name!r} "
                f"(known: {', '.join(sorted(MECHANISMS))})"
            )
        stage, verdict = maker(blockpage_ip, redirect_ip, where)
        if stage in verdicts:
            raise SpecError(
                f"{where}: mechanisms {mechanisms!r} set the {stage} stage twice"
            )
        verdicts[stage] = verdict
    return Rule(matcher=matcher, label=label, **verdicts)
