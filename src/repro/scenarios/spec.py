"""The declarative scenario vocabulary: :class:`ScenarioSpec`.

A scenario is *data*: which sites exist, which ASes censor what and how,
who browses, what gets blocked when, and — crucially — what the
experiment is *expected* to conclude.  The compiler
(:mod:`repro.scenarios.compiler`) turns a spec into live
``World``/``CensorPolicy``/``CSawClient`` objects; the runner
(:mod:`repro.scenarios.runner`) executes it; :mod:`repro.scenarios.expect`
diffs the observed verdicts against the ``expect`` section.

Specs load from plain dicts (:meth:`ScenarioSpec.from_dict`) or TOML
files (:meth:`ScenarioSpec.from_toml`).  Every shipped pack under
``scenarios/packs/`` is one such file; ICLab-style, a new censorship
setting is a data file, not a 200-line builder function.

TOML parsing prefers :mod:`tomllib` (Python ≥ 3.11) and falls back to a
small subset parser so the 3.9/3.10 CI matrix needs no third-party
dependency.  The subset covers what packs use: ``[table]``,
``[[array-of-tables]]``, nested dotted headers, strings, ints, floats,
booleans, and homogeneous arrays.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SpecError",
    "SiteSpec",
    "BlockpageSpec",
    "RuleSpec",
    "PolicySpec",
    "AsSpec",
    "InfraSpec",
    "PopulationSpec",
    "WorkloadSpec",
    "EventSpec",
    "RollingSpec",
    "CohortSpec",
    "AttackGroupSpec",
    "AttackSpec",
    "ExecutionSpec",
    "VerdictExpect",
    "ClassificationExpect",
    "DetectionExpect",
    "FleetExpect",
    "ReputationExpect",
    "ExpectSpec",
    "ScenarioSpec",
    "load_toml_file",
]


class SpecError(ValueError):
    """A scenario spec that cannot mean anything: bad key, bad value,
    dangling reference.  The message always names the offending path."""


# -- dict -> dataclass plumbing ------------------------------------------------


def _take(data: Dict[str, Any], where: str):
    """Bind a section dict; returns (pop, done) accessors that track
    unknown keys so typos fail loudly instead of silently defaulting."""
    remaining = dict(data)

    def pop(key: str, default: Any = None) -> Any:
        return remaining.pop(key, default)

    def done() -> None:
        if remaining:
            raise SpecError(f"{where}: unknown key(s) {sorted(remaining)}")

    return pop, done


def _str_tuple(value: Any, where: str) -> Tuple[str, ...]:
    if value is None:
        return ()
    if isinstance(value, str):
        raise SpecError(f"{where}: expected a list of strings, got {value!r}")
    return tuple(str(v) for v in value)


def _int_tuple(value: Any, where: str) -> Tuple[int, ...]:
    if value is None:
        return ()
    return tuple(int(v) for v in value)


def _as_float(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{where}: expected a number, got {value!r}")
    return float(value)


def _as_bool(value: Any, where: str) -> bool:
    if not isinstance(value, bool):
        raise SpecError(f"{where}: expected a boolean, got {value!r}")
    return value


def _sections(value: Any, where: str) -> List[Dict[str, Any]]:
    if value is None:
        return []
    if not isinstance(value, list) or any(not isinstance(v, dict) for v in value):
        raise SpecError(f"{where}: expected a list of tables")
    return value


# -- world vocabulary ----------------------------------------------------------


@dataclass(frozen=True)
class SiteSpec:
    """One web site with a single root page."""

    hostname: str
    location: str = "us-east"
    size_bytes: int = 100_000
    category: str = "general"
    supports_https: bool = True
    supports_fronting: bool = False
    bandwidth_bps: float = 0.0  # 0 -> the Web layer's default
    geo_blocked: Tuple[str, ...] = ()  # server-side §8 filtering regions

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "SiteSpec":
        pop, done = _take(data, where)
        hostname = pop("hostname")
        if not hostname:
            raise SpecError(f"{where}: 'hostname' is required")
        spec = cls(
            hostname=str(hostname),
            location=str(pop("location", cls.location)),
            size_bytes=int(pop("size_bytes", cls.size_bytes)),
            category=str(pop("category", cls.category)),
            supports_https=_as_bool(pop("supports_https", cls.supports_https), where),
            supports_fronting=_as_bool(
                pop("supports_fronting", cls.supports_fronting), where
            ),
            bandwidth_bps=_as_float(pop("bandwidth_bps", 0.0), where),
            geo_blocked=_str_tuple(pop("geo_blocked"), f"{where}.geo_blocked"),
        )
        done()
        return spec


@dataclass(frozen=True)
class BlockpageSpec:
    """A censor-run block-page server (serves any path via catch-all)."""

    hostname: str
    location: str = "pakistan"
    # "" -> the stock DEFAULT_BLOCKPAGE_HTML; anything else rebrands it
    # (the Pakistan world serves an "ISP-B"-branded page from ISP-B).
    brand: str = ""

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "BlockpageSpec":
        pop, done = _take(data, where)
        hostname = pop("hostname")
        if not hostname:
            raise SpecError(f"{where}: 'hostname' is required")
        spec = cls(
            hostname=str(hostname),
            location=str(pop("location", cls.location)),
            brand=str(pop("brand", "")),
        )
        done()
        return spec


@dataclass(frozen=True)
class RuleSpec:
    """One censor rule: a matcher plus one mechanism per stage.

    ``ips_of`` / ``keywords_ip_of`` are resolved by the compiler to the
    concrete IPs the world assigned to those hostnames — the declarative
    counterpart of ``world.network.hosts_by_name[h].ip`` in the old
    imperative builders.
    """

    mechanisms: Tuple[str, ...]
    domains: Tuple[str, ...] = ()
    keywords: Tuple[str, ...] = ()
    url_prefixes: Tuple[str, ...] = ()
    ips: Tuple[str, ...] = ()
    ips_of: Tuple[str, ...] = ()
    keywords_ip_of: Tuple[str, ...] = ()
    blockpage: str = ""  # hostname ref into [[blockpages]]; "" -> first
    redirect_ip: str = ""
    label: str = ""

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "RuleSpec":
        pop, done = _take(data, where)
        spec = cls(
            mechanisms=_str_tuple(pop("mechanisms"), f"{where}.mechanisms"),
            domains=_str_tuple(pop("domains"), f"{where}.domains"),
            keywords=_str_tuple(pop("keywords"), f"{where}.keywords"),
            url_prefixes=_str_tuple(pop("url_prefixes"), f"{where}.url_prefixes"),
            ips=_str_tuple(pop("ips"), f"{where}.ips"),
            ips_of=_str_tuple(pop("ips_of"), f"{where}.ips_of"),
            keywords_ip_of=_str_tuple(
                pop("keywords_ip_of"), f"{where}.keywords_ip_of"
            ),
            blockpage=str(pop("blockpage", "")),
            redirect_ip=str(pop("redirect_ip", "")),
            label=str(pop("label", "")),
        )
        done()
        if not spec.mechanisms:
            raise SpecError(f"{where}: 'mechanisms' must list at least one mechanism")
        if not (
            spec.domains
            or spec.keywords
            or spec.url_prefixes
            or spec.ips
            or spec.ips_of
            or spec.keywords_ip_of
        ):
            raise SpecError(f"{where}: matcher needs at least one criterion")
        return spec


@dataclass(frozen=True)
class PolicySpec:
    """An ordered first-match rule list; shared between ASes by name
    (one PolicySpec referenced by many ASes = centralized censorship)."""

    name: str
    rules: Tuple[RuleSpec, ...] = ()

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "PolicySpec":
        pop, done = _take(data, where)
        name = pop("name")
        if not name:
            raise SpecError(f"{where}: 'name' is required")
        rules = tuple(
            RuleSpec.from_dict(r, f"{where}.rules[{i}]")
            for i, r in enumerate(_sections(pop("rules"), f"{where}.rules"))
        )
        done()
        return cls(name=str(name), rules=rules)


@dataclass(frozen=True)
class AsSpec:
    asn: int
    name: str = ""
    country: str = "pakistan"
    policy: str = ""  # ref into [[policies]]; "" -> uncensored

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "AsSpec":
        pop, done = _take(data, where)
        asn = pop("asn")
        if asn is None:
            raise SpecError(f"{where}: 'asn' is required")
        asn = int(asn)
        spec = cls(
            asn=asn,
            name=str(pop("name", "")) or f"AS{asn}",
            country=str(pop("country", cls.country)),
            policy=str(pop("policy", "")),
        )
        done()
        return spec


@dataclass(frozen=True)
class InfraSpec:
    """Shared circumvention infrastructure."""

    public_resolver: bool = True
    tor_relays: int = 0
    lantern_proxies: int = 0
    proxy_fleet: bool = False  # the ten Table-2 static proxies
    front_hostname: str = ""  # CDN front for domain-fronting transports

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "InfraSpec":
        pop, done = _take(data, where)
        spec = cls(
            public_resolver=_as_bool(pop("public_resolver", True), where),
            tor_relays=int(pop("tor_relays", 0)),
            lantern_proxies=int(pop("lantern_proxies", 0)),
            proxy_fleet=_as_bool(pop("proxy_fleet", False), where),
            front_hostname=str(pop("front_hostname", "")),
        )
        done()
        return spec


# -- people and behaviour ------------------------------------------------------


@dataclass(frozen=True)
class PopulationSpec:
    """A batch of C-Saw clients, ``per_as`` in each listed AS."""

    name_format: str = "user-{asn}-{index}"
    per_as: int = 1
    ases: Tuple[int, ...] = ()  # empty -> every AS in the spec
    transports: Tuple[str, ...] = ("public-dns", "https", "tor", "lantern")
    location: str = "pakistan"
    config: Dict[str, Any] = field(default_factory=dict)  # CSawConfig overrides

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "PopulationSpec":
        pop, done = _take(data, where)
        config = pop("config", {})
        if not isinstance(config, dict):
            raise SpecError(f"{where}.config: expected a table")
        spec = cls(
            name_format=str(pop("name_format", cls.name_format)),
            per_as=int(pop("per_as", cls.per_as)),
            ases=_int_tuple(pop("ases"), f"{where}.ases"),
            transports=_str_tuple(pop("transports", list(cls.transports)),
                                  f"{where}.transports"),
            location=str(pop("location", cls.location)),
            config=dict(config),
        )
        done()
        return spec


@dataclass(frozen=True)
class WorkloadSpec:
    """What the populations do: browse ``urls`` with exponential
    think-time, after a uniform start jitter (the §7.5 wave shape)."""

    kind: str = "browse"
    urls: Tuple[str, ...] = ()
    interval: float = 1800.0
    start_jitter: float = 600.0
    # Per-client behaviour RNG forks as "{stream_prefix}-{client_index}",
    # mirroring the legacy wave driver so same-seed runs are identical.
    stream_prefix: str = "wave"

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "WorkloadSpec":
        pop, done = _take(data, where)
        spec = cls(
            kind=str(pop("kind", cls.kind)),
            urls=_str_tuple(pop("urls"), f"{where}.urls"),
            interval=_as_float(pop("interval", cls.interval), where),
            start_jitter=_as_float(pop("start_jitter", cls.start_jitter), where),
            stream_prefix=str(pop("stream_prefix", cls.stream_prefix)),
        )
        done()
        if spec.kind not in ("browse", "none"):
            raise SpecError(f"{where}.kind: unknown workload kind {spec.kind!r}")
        return spec


@dataclass(frozen=True)
class EventSpec:
    """A timed censor action: at ``time``, AS ``asn`` starts applying
    ``mechanisms`` to ``domain``."""

    time: float
    asn: int
    domain: str
    mechanisms: Tuple[str, ...] = ("blockpage-redirect",)
    redirect_ip: str = "10.66.66.66"
    blockpage: str = ""  # "" -> first declared blockpage
    label: str = ""  # "" -> the domain

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "EventSpec":
        pop, done = _take(data, where)
        time = pop("time")
        asn = pop("asn")
        domain = pop("domain")
        if time is None or asn is None or not domain:
            raise SpecError(f"{where}: 'time', 'asn' and 'domain' are required")
        spec = cls(
            time=_as_float(time, f"{where}.time"),
            asn=int(asn),
            domain=str(domain),
            mechanisms=_str_tuple(
                pop("mechanisms", list(cls.mechanisms)), f"{where}.mechanisms"
            ),
            redirect_ip=str(pop("redirect_ip", cls.redirect_ip)),
            blockpage=str(pop("blockpage", "")),
            label=str(pop("label", "")),
        )
        done()
        return spec


@dataclass(frozen=True)
class RollingSpec:
    """A national directive enforced with per-ISP lag: each AS draws its
    own offset in ``U[0, lag]`` from a seed-derived stream and applies
    every domain at ``start + offset`` (the §7.5 staggered rollout as
    data)."""

    domains: Tuple[str, ...]
    asns: Tuple[int, ...]
    start: float = 0.0
    lag: float = 3600.0
    mechanisms: Tuple[str, ...] = ("blockpage-redirect",)
    redirect_ip: str = "10.66.66.66"
    blockpage: str = ""
    stream: str = "staggered-rollout"

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "RollingSpec":
        pop, done = _take(data, where)
        spec = cls(
            domains=_str_tuple(pop("domains"), f"{where}.domains"),
            asns=_int_tuple(pop("asns"), f"{where}.asns"),
            start=_as_float(pop("start", 0.0), where),
            lag=_as_float(pop("lag", cls.lag), where),
            mechanisms=_str_tuple(
                pop("mechanisms", list(cls.mechanisms)), f"{where}.mechanisms"
            ),
            redirect_ip=str(pop("redirect_ip", cls.redirect_ip)),
            blockpage=str(pop("blockpage", "")),
            stream=str(pop("stream", cls.stream)),
        )
        done()
        if not spec.domains or not spec.asns:
            raise SpecError(f"{where}: 'domains' and 'asns' must be non-empty")
        return spec


@dataclass(frozen=True)
class CohortSpec:
    """Fleet-scale parameters, mapped onto :func:`core.fleet.run_fleet_storm`."""

    n_ases: int = 4
    clients_per_as: int = 500
    reporter_fraction: float = 0.01
    urls_per_as: int = 10
    pull_interval: float = 600.0
    wave_at: float = 300.0
    wave_stagger: float = 0.0  # roll the wave's per-AS onsets over this span
    horizon: float = 0.0  # 0 -> the fleet layer's default
    asn_base: int = 40000
    sharded: bool = False

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "CohortSpec":
        pop, done = _take(data, where)
        spec = cls(
            n_ases=int(pop("n_ases", cls.n_ases)),
            clients_per_as=int(pop("clients_per_as", cls.clients_per_as)),
            reporter_fraction=_as_float(
                pop("reporter_fraction", cls.reporter_fraction), where
            ),
            urls_per_as=int(pop("urls_per_as", cls.urls_per_as)),
            pull_interval=_as_float(pop("pull_interval", cls.pull_interval), where),
            wave_at=_as_float(pop("wave_at", cls.wave_at), where),
            wave_stagger=_as_float(pop("wave_stagger", 0.0), where),
            horizon=_as_float(pop("horizon", 0.0), where),
            asn_base=int(pop("asn_base", cls.asn_base)),
            sharded=_as_bool(pop("sharded", False), where),
        )
        done()
        if spec.wave_stagger < 0.0:
            raise SpecError(f"{where}.wave_stagger: must be >= 0")
        return spec


@dataclass(frozen=True)
class PlaneSpec:
    """One measurement plane in a cohort's mix (``[[planes]]``).

    ``kind`` picks the implementation from the :mod:`repro.planes`
    registry; ``fraction`` sizes the plane's reporter subpopulation;
    ``weight`` is the plane's vote weight in the per-plane-aware
    confidence criterion (1.0 = full trust).  The remaining knobs only
    apply to the kinds that read them: ``miss_rate`` (encore blockpage
    misclassification), ``probe_interval``/``coverage``/``list_size``/
    ``corpus_sites`` (problist scheduling and list-generation recall).
    """

    name: str
    kind: str
    fraction: float
    weight: float = 1.0
    miss_rate: float = 0.2
    probe_interval: float = 600.0
    coverage: float = 0.7
    list_size: int = 50
    corpus_sites: int = 120

    KINDS = ("csaw", "encore", "problist")

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "PlaneSpec":
        pop, done = _take(data, where)
        kind = pop("kind")
        if kind not in cls.KINDS:
            raise SpecError(
                f"{where}.kind: {kind!r} not in {'|'.join(cls.KINDS)}"
            )
        spec = cls(
            name=str(pop("name", kind)),
            kind=str(kind),
            fraction=_as_float(pop("fraction", 0.01), where),
            weight=_as_float(pop("weight", 1.0), where),
            miss_rate=_as_float(pop("miss_rate", cls.miss_rate), where),
            probe_interval=_as_float(
                pop("probe_interval", cls.probe_interval), where
            ),
            coverage=_as_float(pop("coverage", cls.coverage), where),
            list_size=int(pop("list_size", cls.list_size)),
            corpus_sites=int(pop("corpus_sites", cls.corpus_sites)),
        )
        done()
        if not 0.0 < spec.fraction <= 1.0:
            raise SpecError(f"{where}.fraction: must be in (0, 1]")
        if not 0.0 <= spec.weight <= 1.0:
            raise SpecError(f"{where}.weight: must be in [0, 1]")
        if not 0.0 <= spec.miss_rate < 1.0:
            raise SpecError(f"{where}.miss_rate: must be in [0, 1)")
        if not 0.0 < spec.coverage <= 1.0:
            raise SpecError(f"{where}.coverage: must be in (0, 1]")
        return spec

    def as_dict(self) -> Dict[str, Any]:
        """The mapping the planes registry's ``build_plane`` consumes."""
        return {
            "name": self.name,
            "kind": self.kind,
            "fraction": self.fraction,
            "miss_rate": self.miss_rate,
            "probe_interval": self.probe_interval,
            "coverage": self.coverage,
            "list_size": self.list_size,
            "corpus_sites": self.corpus_sites,
        }


@dataclass(frozen=True)
class AttackGroupSpec:
    """One reporter population in an attack scenario.

    Roles: ``honest`` clients sample ``urls_each`` from a shared pool of
    ``pool_size`` real URLs (organic corroboration); ``flood`` clients
    each fabricate their own distinct URLs (high volume, zero
    corroboration); ``clique`` clients all report one identical
    fabricated set (Sybil ring: pairwise similarity 1.0).
    """

    name: str
    role: str
    clients: int
    urls_each: int
    pool_size: int = 0

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "AttackGroupSpec":
        pop, done = _take(data, where)
        name = pop("name")
        role = pop("role")
        if not name or role not in ("honest", "flood", "clique"):
            raise SpecError(
                f"{where}: needs 'name' and role in honest|flood|clique"
            )
        spec = cls(
            name=str(name),
            role=str(role),
            clients=int(pop("clients", 1)),
            urls_each=int(pop("urls_each", 1)),
            pool_size=int(pop("pool_size", 0)),
        )
        done()
        if spec.role == "honest" and spec.pool_size < spec.urls_each:
            raise SpecError(f"{where}: honest pool_size must be >= urls_each")
        return spec


@dataclass(frozen=True)
class AttackSpec:
    """Adversarial reporting straight at ``ServerDB`` + the voting
    ledger, judged by :class:`~repro.core.reputation.ReputationAnalyzer`."""

    groups: Tuple[AttackGroupSpec, ...]
    asn: int = 64999
    min_volume: int = 30
    max_corroboration: float = 0.2
    clique_similarity: float = 0.9
    enforce: bool = True  # revoke flagged reporters after analysis

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "AttackSpec":
        pop, done = _take(data, where)
        groups = tuple(
            AttackGroupSpec.from_dict(g, f"{where}.groups[{i}]")
            for i, g in enumerate(_sections(pop("groups"), f"{where}.groups"))
        )
        spec = cls(
            groups=groups,
            asn=int(pop("asn", cls.asn)),
            min_volume=int(pop("min_volume", cls.min_volume)),
            max_corroboration=_as_float(
                pop("max_corroboration", cls.max_corroboration), where
            ),
            clique_similarity=_as_float(
                pop("clique_similarity", cls.clique_similarity), where
            ),
            enforce=_as_bool(pop("enforce", True), where),
        )
        done()
        if not spec.groups:
            raise SpecError(f"{where}: at least one group is required")
        return spec


@dataclass(frozen=True)
class ExecutionSpec:
    """How to run: mode auto|clients|probe|cohort|attack, plus the sim
    horizon for client workloads."""

    mode: str = "auto"
    duration: float = 36 * 3600.0

    MODES = ("auto", "clients", "probe", "cohort", "attack")

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "ExecutionSpec":
        pop, done = _take(data, where)
        spec = cls(
            mode=str(pop("mode", "auto")),
            duration=_as_float(pop("duration", cls.duration), where),
        )
        done()
        if spec.mode not in cls.MODES:
            raise SpecError(
                f"{where}.mode: {spec.mode!r} not in {'|'.join(cls.MODES)}"
            )
        return spec


# -- expectations --------------------------------------------------------------


@dataclass(frozen=True)
class VerdictExpect:
    """Direct-path verdict for ``url`` probed from inside ``asn``."""

    url: str
    asn: int
    status: str  # "blocked" | "not-blocked"
    stages: Tuple[str, ...] = ()  # empty -> status-only check
    suspected_blockpage: Optional[bool] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "VerdictExpect":
        pop, done = _take(data, where)
        url, asn, status = pop("url"), pop("asn"), pop("status")
        if not url or asn is None or not status:
            raise SpecError(f"{where}: 'url', 'asn' and 'status' are required")
        suspected = pop("suspected_blockpage", None)
        if suspected is not None:
            suspected = _as_bool(suspected, f"{where}.suspected_blockpage")
        spec = cls(
            url=str(url),
            asn=int(asn),
            status=str(status),
            stages=_str_tuple(pop("stages"), f"{where}.stages"),
            suspected_blockpage=suspected,
        )
        done()
        if spec.status not in ("blocked", "not-blocked"):
            raise SpecError(
                f"{where}.status: {spec.status!r} not in blocked|not-blocked"
            )
        return spec


@dataclass(frozen=True)
class ClassificationExpect:
    """Cross-vantage diagnosis for one URL, probed from *every* AS in
    the spec: ``censorship`` (on-path, vantage-dependent),
    ``geoblocking`` (server-side filtering at every vantage), or
    ``open``."""

    url: str
    verdict: str

    CLASSES = ("censorship", "geoblocking", "open")

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "ClassificationExpect":
        pop, done = _take(data, where)
        url, verdict = pop("url"), pop("verdict")
        done()
        if not url or verdict not in cls.CLASSES:
            raise SpecError(
                f"{where}: needs 'url' and verdict in {'|'.join(cls.CLASSES)}"
            )
        return cls(url=str(url), verdict=str(verdict))


@dataclass(frozen=True)
class DetectionExpect:
    """The crowd must notice: some global-DB observation of ``domain``
    from ``asn`` no earlier than the matching blocking event and (when
    ``within`` > 0) no later than ``within`` seconds after it."""

    domain: str
    asn: int
    within: float = 0.0  # 0 -> any time after onset
    symptom: str = ""  # "" -> any symptom label

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "DetectionExpect":
        pop, done = _take(data, where)
        domain, asn = pop("domain"), pop("asn")
        if not domain or asn is None:
            raise SpecError(f"{where}: 'domain' and 'asn' are required")
        spec = cls(
            domain=str(domain),
            asn=int(asn),
            within=_as_float(pop("within", 0.0), where),
            symptom=str(pop("symptom", "")),
        )
        done()
        return spec


@dataclass(frozen=True)
class FleetExpect:
    all_converge: bool = True
    max_convergence: float = 0.0  # 0 -> unchecked
    min_reports: int = 0

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "FleetExpect":
        pop, done = _take(data, where)
        spec = cls(
            all_converge=_as_bool(pop("all_converge", True), where),
            max_convergence=_as_float(pop("max_convergence", 0.0), where),
            min_reports=int(pop("min_reports", 0)),
        )
        done()
        return spec


@dataclass(frozen=True)
class PlaneExpect:
    """Per-plane report provenance and convergence checks for one plane
    of a cohort storm (``[[expect.plane]]``)."""

    name: str
    min_reports: int = 1
    max_reports: int = 0  # 0 -> unchecked
    all_converge: bool = False

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "PlaneExpect":
        pop, done = _take(data, where)
        name = pop("name")
        if not name:
            raise SpecError(f"{where}: 'name' is required")
        spec = cls(
            name=str(name),
            min_reports=int(pop("min_reports", 1)),
            max_reports=int(pop("max_reports", 0)),
            all_converge=_as_bool(pop("all_converge", False), where),
        )
        done()
        return spec


@dataclass(frozen=True)
class ReputationExpect:
    flagged_groups: Tuple[str, ...] = ()
    clean_groups: Tuple[str, ...] = ()
    fabricated_removed: bool = True  # flood/clique URLs evicted post-enforce
    honest_survive: bool = True  # honest URLs still present post-enforce

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "ReputationExpect":
        pop, done = _take(data, where)
        spec = cls(
            flagged_groups=_str_tuple(
                pop("flagged_groups"), f"{where}.flagged_groups"
            ),
            clean_groups=_str_tuple(pop("clean_groups"), f"{where}.clean_groups"),
            fabricated_removed=_as_bool(pop("fabricated_removed", True), where),
            honest_survive=_as_bool(pop("honest_survive", True), where),
        )
        done()
        return spec


@dataclass(frozen=True)
class ExpectSpec:
    verdicts: Tuple[VerdictExpect, ...] = ()
    classifications: Tuple[ClassificationExpect, ...] = ()
    detections: Tuple[DetectionExpect, ...] = ()
    min_observations: int = 0
    fleet: Optional[FleetExpect] = None
    reputation: Optional[ReputationExpect] = None
    planes: Tuple[PlaneExpect, ...] = ()

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "ExpectSpec":
        pop, done = _take(data, where)
        fleet = pop("fleet")
        reputation = pop("reputation")
        spec = cls(
            verdicts=tuple(
                VerdictExpect.from_dict(v, f"{where}.verdict[{i}]")
                for i, v in enumerate(_sections(pop("verdict"), f"{where}.verdict"))
            ),
            classifications=tuple(
                ClassificationExpect.from_dict(c, f"{where}.classification[{i}]")
                for i, c in enumerate(
                    _sections(pop("classification"), f"{where}.classification")
                )
            ),
            detections=tuple(
                DetectionExpect.from_dict(d, f"{where}.detection[{i}]")
                for i, d in enumerate(
                    _sections(pop("detection"), f"{where}.detection")
                )
            ),
            min_observations=int(pop("min_observations", 0)),
            fleet=FleetExpect.from_dict(fleet, f"{where}.fleet") if fleet else None,
            reputation=(
                ReputationExpect.from_dict(reputation, f"{where}.reputation")
                if reputation
                else None
            ),
            planes=tuple(
                PlaneExpect.from_dict(p, f"{where}.plane[{i}]")
                for i, p in enumerate(
                    _sections(pop("plane"), f"{where}.plane")
                )
            ),
        )
        done()
        return spec

    @property
    def empty(self) -> bool:
        return not (
            self.verdicts
            or self.classifications
            or self.detections
            or self.min_observations
            or self.fleet
            or self.reputation
            or self.planes
        )


# -- the scenario itself -------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, runnable, checkable censorship scenario."""

    name: str
    description: str = ""
    seed: int = 1
    sites: Tuple[SiteSpec, ...] = ()
    blockpages: Tuple[BlockpageSpec, ...] = ()
    policies: Tuple[PolicySpec, ...] = ()
    ases: Tuple[AsSpec, ...] = ()
    infra: InfraSpec = field(default_factory=InfraSpec)
    populations: Tuple[PopulationSpec, ...] = ()
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    events: Tuple[EventSpec, ...] = ()
    rolling: Optional[RollingSpec] = None
    cohort: Optional[CohortSpec] = None
    planes: Tuple[PlaneSpec, ...] = ()  # empty -> single default C-Saw plane
    attack: Optional[AttackSpec] = None
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    expect: ExpectSpec = field(default_factory=ExpectSpec)
    urls: Dict[str, str] = field(default_factory=dict)  # label -> url sugar

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise SpecError(f"scenario: expected a table, got {type(data).__name__}")
        pop, done = _take(data, "scenario")
        name = pop("name")
        if not name:
            raise SpecError("scenario: 'name' is required")
        infra = pop("infra")
        workload = pop("workload")
        rolling = pop("rolling")
        cohort = pop("cohort")
        attack = pop("attack")
        execution = pop("execution")
        expect = pop("expect")
        urls = pop("urls", {})
        if not isinstance(urls, dict):
            raise SpecError("scenario.urls: expected a table of label = url")
        spec = cls(
            name=str(name),
            description=str(pop("description", "")),
            seed=int(pop("seed", 1)),
            sites=tuple(
                SiteSpec.from_dict(s, f"sites[{i}]")
                for i, s in enumerate(_sections(pop("sites"), "sites"))
            ),
            blockpages=tuple(
                BlockpageSpec.from_dict(b, f"blockpages[{i}]")
                for i, b in enumerate(_sections(pop("blockpages"), "blockpages"))
            ),
            policies=tuple(
                PolicySpec.from_dict(p, f"policies[{i}]")
                for i, p in enumerate(_sections(pop("policies"), "policies"))
            ),
            ases=tuple(
                AsSpec.from_dict(a, f"ases[{i}]")
                for i, a in enumerate(_sections(pop("ases"), "ases"))
            ),
            infra=InfraSpec.from_dict(infra, "infra") if infra else InfraSpec(),
            populations=tuple(
                PopulationSpec.from_dict(p, f"populations[{i}]")
                for i, p in enumerate(_sections(pop("populations"), "populations"))
            ),
            workload=(
                WorkloadSpec.from_dict(workload, "workload")
                if workload
                else WorkloadSpec()
            ),
            events=tuple(
                EventSpec.from_dict(e, f"events[{i}]")
                for i, e in enumerate(_sections(pop("events"), "events"))
            ),
            rolling=RollingSpec.from_dict(rolling, "rolling") if rolling else None,
            cohort=CohortSpec.from_dict(cohort, "cohort") if cohort else None,
            planes=tuple(
                PlaneSpec.from_dict(p, f"planes[{i}]")
                for i, p in enumerate(_sections(pop("planes"), "planes"))
            ),
            attack=AttackSpec.from_dict(attack, "attack") if attack else None,
            execution=(
                ExecutionSpec.from_dict(execution, "execution")
                if execution
                else ExecutionSpec()
            ),
            expect=ExpectSpec.from_dict(expect, "expect") if expect else ExpectSpec(),
            urls={str(k): str(v) for k, v in urls.items()},
        )
        done()
        spec.validate()
        return spec

    @classmethod
    def from_toml(cls, path: str) -> "ScenarioSpec":
        return cls.from_dict(load_toml_file(path))

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """Same scenario, different world seed (re-rolls every stream)."""
        return dataclasses.replace(self, seed=int(seed))

    # -- cross-reference validation -------------------------------------------

    def resolved_mode(self) -> str:
        mode = self.execution.mode
        if mode != "auto":
            return mode
        if self.attack is not None:
            return "attack"
        if self.cohort is not None:
            return "cohort"
        if self.populations and self.workload.kind == "browse" and self.workload.urls:
            return "clients"
        return "probe"

    def validate(self) -> None:
        policy_names = {p.name for p in self.policies}
        if len(policy_names) != len(self.policies):
            raise SpecError("policies: duplicate policy names")
        asns = {a.asn for a in self.ases}
        if len(asns) != len(self.ases):
            raise SpecError("ases: duplicate ASNs")
        blockpage_names = {b.hostname for b in self.blockpages}
        for i, asys in enumerate(self.ases):
            if asys.policy and asys.policy not in policy_names:
                raise SpecError(
                    f"ases[{i}]: unknown policy {asys.policy!r} "
                    f"(declared: {sorted(policy_names) or 'none'})"
                )
        for i, policy in enumerate(self.policies):
            for j, rule in enumerate(policy.rules):
                if rule.blockpage and rule.blockpage not in blockpage_names:
                    raise SpecError(
                        f"policies[{i}].rules[{j}]: unknown blockpage "
                        f"{rule.blockpage!r}"
                    )
        for i, event in enumerate(self.events):
            if event.asn not in asns:
                raise SpecError(f"events[{i}]: unknown asn {event.asn}")
            if event.blockpage and event.blockpage not in blockpage_names:
                raise SpecError(
                    f"events[{i}]: unknown blockpage {event.blockpage!r}"
                )
        if self.rolling is not None:
            for asn in self.rolling.asns:
                if asn not in asns:
                    raise SpecError(f"rolling: unknown asn {asn}")
        for i, pop_spec in enumerate(self.populations):
            for asn in pop_spec.ases:
                if asn not in asns:
                    raise SpecError(f"populations[{i}]: unknown asn {asn}")
            self._check_config_keys(pop_spec.config, f"populations[{i}].config")
        mode = self.resolved_mode()
        world_checks = bool(
            self.expect.verdicts
            or self.expect.classifications
            or self.expect.detections
            or self.expect.min_observations
        )
        if mode in ("cohort", "attack") and world_checks:
            raise SpecError(
                f"expect: verdict/classification/detection checks need a "
                f"world-backed mode, not {mode!r}"
            )
        if self.expect.fleet is not None and mode != "cohort":
            raise SpecError("expect.fleet: requires cohort mode")
        if self.expect.reputation is not None and mode != "attack":
            raise SpecError("expect.reputation: requires attack mode")
        if self.planes and mode != "cohort":
            raise SpecError("planes: a [[planes]] mix requires cohort mode")
        if self.expect.planes and mode != "cohort":
            raise SpecError("expect.plane: requires cohort mode")
        if self.planes:
            plane_names = [p.name for p in self.planes]
            if len(set(plane_names)) != len(plane_names):
                raise SpecError(f"planes: duplicate plane names {plane_names}")
            # The registry is the source of truth for what can actually
            # be built — catch kind drift at validation time, not run
            # time (lazy import: spec parsing must not pull the planes
            # package unless a mix is declared).
            from ..planes import PLANE_KINDS

            for i, plane in enumerate(self.planes):
                if plane.kind not in PLANE_KINDS:
                    raise SpecError(
                        f"planes[{i}]: kind {plane.kind!r} not in registry "
                        f"({sorted(PLANE_KINDS)})"
                    )
        if self.expect.planes:
            declared = (
                {p.name for p in self.planes} if self.planes else {"csaw"}
            )
            for i, expect in enumerate(self.expect.planes):
                if expect.name not in declared:
                    raise SpecError(
                        f"expect.plane[{i}]: unknown plane {expect.name!r} "
                        f"(declared: {sorted(declared)})"
                    )
        if mode == "cohort" and self.cohort is None:
            raise SpecError("execution.mode = 'cohort' needs a [cohort] section")
        if mode == "attack" and self.attack is None:
            raise SpecError("execution.mode = 'attack' needs an [attack] section")
        if self.expect.verdicts or self.expect.classifications:
            for i, verdict in enumerate(self.expect.verdicts):
                if verdict.asn not in asns:
                    raise SpecError(f"expect.verdict[{i}]: unknown asn {verdict.asn}")
        if self.attack is not None:
            group_names = {g.name for g in self.attack.groups}
            if self.expect.reputation is not None:
                for name in (
                    self.expect.reputation.flagged_groups
                    + self.expect.reputation.clean_groups
                ):
                    if name not in group_names:
                        raise SpecError(
                            f"expect.reputation: unknown group {name!r}"
                        )

    @staticmethod
    def _check_config_keys(config: Dict[str, Any], where: str) -> None:
        from ..core.config import CSawConfig

        known = {f.name for f in dataclass_fields(CSawConfig)}
        unknown = sorted(set(config) - known)
        if unknown:
            raise SpecError(f"{where}: unknown CSawConfig field(s) {unknown}")


# -- TOML loading --------------------------------------------------------------


def load_toml_file(path: str) -> Dict[str, Any]:
    """Parse a TOML file into a plain dict (stdlib tomllib when present,
    otherwise the subset parser below — CI runs Python 3.9)."""
    try:
        import tomllib  # Python >= 3.11
    except ImportError:
        with open(path, encoding="utf-8") as handle:
            return _parse_toml_subset(handle.read(), path)
    with open(path, "rb") as handle:
        return tomllib.load(handle)


_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def _parse_toml_subset(text: str, path: str = "<toml>") -> Dict[str, Any]:
    """The TOML subset scenario packs use; see the module docstring."""
    root: Dict[str, Any] = {}
    current = root
    lines = text.split("\n")
    index = 0
    while index < len(lines):
        line = _strip_comment(lines[index]).strip()
        index += 1
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            parts = _header_parts(line[2:-2], path)
            parent = _navigate(root, parts[:-1], path)
            items = parent.setdefault(parts[-1], [])
            if not isinstance(items, list):
                raise SpecError(f"{path}: {line!r} conflicts with earlier value")
            current = {}
            items.append(current)
        elif line.startswith("[") and line.endswith("]"):
            parts = _header_parts(line[1:-1], path)
            current = _navigate(root, parts, path)
        else:
            line_no = index  # 1-based: index was already advanced
            if "=" not in line:
                raise SpecError(
                    f"{path}: cannot parse line {line_no}: {line!r}"
                )
            key, _, raw = line.partition("=")
            key = key.strip().strip('"')
            if not _BARE_KEY.match(key):
                raise SpecError(f"{path}: unsupported key {key!r}")
            raw = raw.strip()
            # Multiline arrays: keep appending lines until brackets balance.
            while raw.count("[") > raw.count("]"):
                if index >= len(lines):
                    raise SpecError(f"{path}: unterminated array for {key!r}")
                raw += " " + _strip_comment(lines[index]).strip()
                index += 1
            try:
                current[key] = _parse_value(raw.strip(), path)
            except SpecError as err:
                raise SpecError(f"{err} (line {line_no})") from None
    return root


def _strip_comment(line: str) -> str:
    in_string = False
    for pos, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:pos]
    return line


def _header_parts(header: str, path: str) -> List[str]:
    parts = [part.strip().strip('"') for part in header.strip().split(".")]
    if not all(_BARE_KEY.match(part) for part in parts):
        raise SpecError(f"{path}: unsupported table header {header!r}")
    return parts


def _navigate(root: Dict[str, Any], parts: List[str], path: str) -> Dict[str, Any]:
    node: Any = root
    for part in parts:
        if isinstance(node, list):
            node = node[-1]
        nxt = node.get(part)
        if nxt is None:
            nxt = node.setdefault(part, {})
        node = nxt
    if isinstance(node, list):
        node = node[-1]
    if not isinstance(node, dict):
        raise SpecError(f"{path}: table path {'.'.join(parts)!r} is not a table")
    return node


_FLOAT = re.compile(r"^[+-]?(\d[\d_]*\.[\d_]*([eE][+-]?\d+)?|\d[\d_]*[eE][+-]?\d+)$")
_INT = re.compile(r"^[+-]?\d[\d_]*$")


def _parse_value(raw: str, path: str) -> Any:
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        return raw[1:-1]
    if raw == "true":
        return True
    if raw == "false":
        return False
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_value(part.strip(), path)
            for part in _split_array(inner, path)
        ]
    if _INT.match(raw):
        return int(raw.replace("_", ""))
    if _FLOAT.match(raw):
        return float(raw.replace("_", ""))
    raise SpecError(f"{path}: cannot parse value {raw!r}")


def _split_array(inner: str, path: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    in_string = False
    start = 0
    for pos, char in enumerate(inner):
        if char == '"':
            in_string = not in_string
        elif in_string:
            continue
        elif char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == "," and depth == 0:
            parts.append(inner[start:pos])
            start = pos + 1
    tail = inner[start:].strip()
    if tail:
        parts.append(inner[start:])
    return parts
