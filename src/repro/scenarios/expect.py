"""Expectation checking: observed behavior diffed against the spec.

Every shipped pack states what the experiment *must* conclude — direct
path verdicts, cross-vantage classifications, crowd detection latency,
fleet convergence, reputation flags.  :func:`evaluate` compares those
declarations against a :class:`~repro.scenarios.runner.ScenarioOutcome`
and returns an :class:`ExpectationReport` whose :meth:`render`/
:meth:`diff` output is the readable artifact the CLI prints and CI
fails on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .spec import ScenarioSpec

__all__ = ["ExpectationCheck", "ExpectationReport", "evaluate"]


@dataclass(frozen=True)
class ExpectationCheck:
    """One expected-vs-observed comparison."""

    kind: str  # verdict | classification | detection | observations | fleet | reputation
    subject: str
    expected: str
    observed: str
    ok: bool


@dataclass
class ExpectationReport:
    """All checks for one scenario run, renderable as a diff."""

    scenario: str
    checks: List[ExpectationCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[ExpectationCheck]:
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        passed = sum(1 for check in self.checks if check.ok)
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"scenario {self.scenario!r}: {verdict} "
            f"({passed}/{len(self.checks)} expectations hold)"
        ]
        for check in self.checks:
            mark = " ok " if check.ok else "FAIL"
            lines.append(f"  [{mark}] {check.kind:<14} {check.subject}")
            if not check.ok:
                lines.append(f"         expected: {check.expected}")
                lines.append(f"         observed: {check.observed}")
        return "\n".join(lines)

    def diff(self) -> str:
        """Only the mismatches — empty string when everything holds."""
        lines = []
        for check in self.failures:
            lines.append(f"{check.kind} {check.subject}")
            lines.append(f"  expected: {check.expected}")
            lines.append(f"  observed: {check.observed}")
        return "\n".join(lines)


def _domain_matches(url: str, domain: str) -> bool:
    from ..urlkit import parse_url

    host = parse_url(url).host
    return host == domain or host.endswith("." + domain)


def evaluate(spec: ScenarioSpec, outcome) -> ExpectationReport:
    """Diff an outcome against ``spec.expect``; see the pack files for
    the vocabulary in use."""
    report = ExpectationReport(scenario=spec.name)
    expect = spec.expect

    for want in expect.verdicts:
        observed = outcome.verdicts.get((want.asn, want.url))
        subject = f"{want.url} @ AS{want.asn}"
        if observed is None:
            report.checks.append(
                ExpectationCheck(
                    "verdict", subject, _verdict_str(want), "not probed", False
                )
            )
            continue
        ok = observed.status == want.status
        if want.stages:
            ok = ok and tuple(observed.stages) == tuple(want.stages)
        if want.suspected_blockpage is not None:
            ok = ok and observed.suspected_blockpage == want.suspected_blockpage
        report.checks.append(
            ExpectationCheck(
                "verdict",
                subject,
                _verdict_str(want),
                f"status={observed.status} stages={list(observed.stages)} "
                f"suspected_blockpage={observed.suspected_blockpage}",
                ok,
            )
        )

    for want in expect.classifications:
        observed = outcome.classifications.get(want.url, "not probed")
        report.checks.append(
            ExpectationCheck(
                "classification", want.url, want.verdict, observed,
                observed == want.verdict,
            )
        )

    for want in expect.detections:
        onset = min(
            (
                event.time
                for event in outcome.events
                if event.asn == want.asn and event.domain == want.domain
            ),
            default=0.0,
        )
        deadline: Optional[float] = onset + want.within if want.within > 0 else None
        hits = [
            obs
            for obs in outcome.observations
            if obs.asn == want.asn
            and _domain_matches(obs.url, want.domain)
            and obs.detected_at >= onset
            and (want.symptom == "" or obs.symptom == want.symptom)
        ]
        timely = [
            obs for obs in hits if deadline is None or obs.detected_at <= deadline
        ]
        expected = f"detected after onset t={onset:g}s"
        if deadline is not None:
            expected += f" and before t={deadline:g}s"
        if want.symptom:
            expected += f" with symptom {want.symptom!r}"
        if timely:
            first = min(obs.detected_at for obs in timely)
            observed_str = f"first matching observation at t={first:g}s"
        elif hits:
            first = min(obs.detected_at for obs in hits)
            observed_str = f"matching observation but late, at t={first:g}s"
        else:
            observed_str = "no matching observation in the global DB"
        report.checks.append(
            ExpectationCheck(
                "detection",
                f"{want.domain} @ AS{want.asn}",
                expected,
                observed_str,
                bool(timely),
            )
        )

    if expect.min_observations:
        count = len(outcome.observations)
        report.checks.append(
            ExpectationCheck(
                "observations",
                "global-DB entries",
                f">= {expect.min_observations}",
                str(count),
                count >= expect.min_observations,
            )
        )

    if expect.fleet is not None:
        metrics = outcome.fleet
        want_fleet = expect.fleet
        if metrics is None:
            report.checks.append(
                ExpectationCheck(
                    "fleet", "metrics", "fleet metrics", "no fleet run", False
                )
            )
        else:
            convergences = metrics.convergence_by_as
            unconverged = sorted(
                asn for asn, value in convergences.items() if value < 0
            )
            if want_fleet.all_converge:
                report.checks.append(
                    ExpectationCheck(
                        "fleet",
                        "every AS converges",
                        f"all {len(convergences)} ASes converge",
                        "all converged"
                        if not unconverged
                        else f"unconverged ASes: {unconverged}",
                        not unconverged,
                    )
                )
            if want_fleet.max_convergence > 0:
                converged = [v for v in convergences.values() if v >= 0]
                slowest = max(converged) if converged else float("inf")
                report.checks.append(
                    ExpectationCheck(
                        "fleet",
                        "convergence time",
                        f"slowest AS <= {want_fleet.max_convergence:g}s "
                        "after the wave",
                        f"slowest AS at {slowest:g}s",
                        slowest <= want_fleet.max_convergence,
                    )
                )
            if want_fleet.min_reports:
                report.checks.append(
                    ExpectationCheck(
                        "fleet",
                        "reports absorbed",
                        f">= {want_fleet.min_reports}",
                        str(metrics.reports_absorbed),
                        metrics.reports_absorbed >= want_fleet.min_reports,
                    )
                )

    for want_plane in expect.planes:
        metrics = outcome.fleet
        name = want_plane.name
        if metrics is None:
            report.checks.append(
                ExpectationCheck(
                    "plane", name, "fleet metrics", "no fleet run", False
                )
            )
            continue
        reports = metrics.reports_by_plane.get(name, 0)
        if want_plane.min_reports:
            report.checks.append(
                ExpectationCheck(
                    "plane",
                    f"{name} reports",
                    f">= {want_plane.min_reports}",
                    str(reports),
                    reports >= want_plane.min_reports,
                )
            )
        if want_plane.max_reports:
            report.checks.append(
                ExpectationCheck(
                    "plane",
                    f"{name} reports",
                    f"<= {want_plane.max_reports}",
                    str(reports),
                    reports <= want_plane.max_reports,
                )
            )
        if want_plane.all_converge:
            convergences = metrics.convergence_by_plane.get(name, {})
            unconverged = sorted(
                asn for asn, value in convergences.items() if value < 0
            )
            report.checks.append(
                ExpectationCheck(
                    "plane",
                    f"{name} converges everywhere",
                    f"all {len(convergences)} ASes converge on this plane",
                    "all converged"
                    if convergences and not unconverged
                    else (
                        f"unconverged ASes: {unconverged}"
                        if convergences
                        else "plane ran in no AS"
                    ),
                    bool(convergences) and not unconverged,
                )
            )

    if expect.reputation is not None:
        rep = outcome.reputation
        want_rep = expect.reputation
        if rep is None:
            report.checks.append(
                ExpectationCheck(
                    "reputation", "analysis", "reputation outcome",
                    "no attack run", False,
                )
            )
        else:
            for group in want_rep.flagged_groups:
                flagged, total = rep.flag_counts[group]
                report.checks.append(
                    ExpectationCheck(
                        "reputation",
                        f"group {group!r} flagged",
                        f"all {total} reporters flagged",
                        f"{flagged}/{total} flagged",
                        flagged == total,
                    )
                )
            for group in want_rep.clean_groups:
                flagged, total = rep.flag_counts[group]
                report.checks.append(
                    ExpectationCheck(
                        "reputation",
                        f"group {group!r} clean",
                        "no reporters flagged",
                        f"{flagged}/{total} flagged",
                        flagged == 0,
                    )
                )
            if want_rep.fabricated_removed:
                leftovers = {
                    group: survived
                    for group, survived in rep.surviving_urls.items()
                    if rep.roles[group] != "honest" and survived
                }
                report.checks.append(
                    ExpectationCheck(
                        "reputation",
                        "fabricated URLs evicted",
                        "0 fabricated URLs survive enforcement",
                        "none survive"
                        if not leftovers
                        else f"survivors: { {g: len(u) for g, u in leftovers.items()} }",
                        not leftovers,
                    )
                )
            if want_rep.honest_survive:
                lost = {
                    group: removed
                    for group, removed in rep.removed_urls.items()
                    if rep.roles[group] == "honest" and removed
                }
                report.checks.append(
                    ExpectationCheck(
                        "reputation",
                        "honest URLs survive",
                        "no honest URLs evicted",
                        "all survive"
                        if not lost
                        else f"evicted: { {g: len(u) for g, u in lost.items()} }",
                        not lost,
                    )
                )

    return report


def _verdict_str(want) -> str:
    parts = [f"status={want.status}"]
    if want.stages:
        parts.append(f"stages={list(want.stages)}")
    if want.suspected_blockpage is not None:
        parts.append(f"suspected_blockpage={want.suspected_blockpage}")
    return " ".join(parts)
