"""Declarative scenarios: spec -> compile -> run -> check.

One spec-driven API for worlds, censors, workloads, and expected
verdicts.  See DESIGN.md §10 for the schema and the contract; the
shipped packs live under ``repro/scenarios/packs/``.

>>> from repro.scenarios import load_spec, ScenarioRunner
>>> outcome = ScenarioRunner().run(load_spec("vantage-disagreement"))
>>> print(outcome.report.render())
"""

from __future__ import annotations

import os
from typing import List, Tuple

from .compiler import CompiledScenario, ScenarioCompiler
from .expect import ExpectationCheck, ExpectationReport, evaluate
from .library import centralized_spec, pakistan_spec, wave_spec
from .runner import (
    ProbeVerdict,
    ReputationOutcome,
    ScenarioObservation,
    ScenarioOutcome,
    ScenarioRunner,
    SYMPTOM_LABELS,
    symptom_for,
)
from .spec import ScenarioSpec, SpecError, load_toml_file

__all__ = [
    "ScenarioSpec",
    "SpecError",
    "ScenarioCompiler",
    "CompiledScenario",
    "ScenarioRunner",
    "ScenarioOutcome",
    "ScenarioObservation",
    "ProbeVerdict",
    "ReputationOutcome",
    "ExpectationCheck",
    "ExpectationReport",
    "evaluate",
    "SYMPTOM_LABELS",
    "symptom_for",
    "pakistan_spec",
    "centralized_spec",
    "wave_spec",
    "load_spec",
    "load_toml_file",
    "shipped_packs",
    "PACKS_DIR",
]

PACKS_DIR = os.path.join(os.path.dirname(__file__), "packs")


def shipped_packs() -> List[Tuple[str, str]]:
    """(pack name, path) for every TOML pack shipped with the repo."""
    packs = []
    for filename in sorted(os.listdir(PACKS_DIR)):
        if filename.endswith(".toml"):
            path = os.path.join(PACKS_DIR, filename)
            packs.append((os.path.splitext(filename)[0].replace("_", "-"), path))
    return packs


def load_spec(name_or_path: str) -> ScenarioSpec:
    """Load a spec from a shipped pack name or a TOML file path."""
    if os.path.exists(name_or_path):
        return ScenarioSpec.from_toml(name_or_path)
    for name, path in shipped_packs():
        if name == name_or_path:
            return ScenarioSpec.from_toml(path)
    known = ", ".join(name for name, _ in shipped_packs())
    raise SpecError(
        f"no such scenario: {name_or_path!r} (shipped packs: {known}; "
        "or pass a path to a .toml file)"
    )
