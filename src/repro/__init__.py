"""Reproduction of "Incentivizing Censorship Measurements via Circumvention"
(C-Saw, SIGCOMM 2018).

Package layout:

- :mod:`repro.simnet` — discrete-event network simulator (the substrate).
- :mod:`repro.censor` — censor policies and on-path middleboxes.
- :mod:`repro.circumvent` — direct path, local fixes, Tor/Lantern/proxies.
- :mod:`repro.core` — C-Saw itself: databases, measurement, detection,
  adaptive circumvention.
- :mod:`repro.workloads` — synthetic corpora, scenarios, pilot study.
- :mod:`repro.analysis` — CDFs, summaries, table rendering.
"""

__version__ = "1.0.0"
