"""Single source of truth for failure classification.

Three views of the same facts, previously duplicated (and free to drift)
across ``core/detection.py``, ``core/measurement.py``, and
``circumvent/base.py``:

- simnet failure → :class:`BlockType` (the Figure-4 / Table-5 symptom);
- simnet failure → circumvention failure class (the protocol stage a
  transport failed at: ``dns | tcp | tls | http | other``);
- :class:`BlockType` → failure class (which stage a recorded symptom
  implicates, used when choosing a circumvention approach).

csaw-lint rule CSL008 forbids inline exception→BlockType maps anywhere
else, so new failure modes must be registered here — where the
exhaustiveness assertions below will catch a half-finished mapping.

Lookups are O(1): the per-call ``isinstance`` list the old
``measurement._failure_block_type`` rebuilt on every failure is replaced
by ``functools.lru_cache`` memoization keyed on ``type(error)`` (see the
microbench note in DESIGN.md).  The memo is per-process and the mapped
function is pure (class → classification, independent of call order),
so trials stay deterministic under any worker sharding — csaw-analyze
CSA101 flags hand-rolled module-dict caches here for exactly that
reason.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Tuple, Type

from ..simnet.dns import DnsError, DnsTimeout, NxDomain, Refused, ServFail
from ..simnet.http import HttpTimeout
from ..simnet.tcp import ConnectionReset, ConnectTimeout, TcpError
from ..simnet.tls import TlsError, TlsReset, TlsTimeout
from .records import BlockType

__all__ = [
    "UnclassifiedFailureError",
    "FAILURE_BLOCK_TYPES",
    "BLOCK_TYPE_FAILURE_CLASS",
    "block_type_for",
    "dns_block_type",
    "failure_class",
    "failure_class_for",
]


class UnclassifiedFailureError(LookupError):
    """A failure type no taxonomy entry covers.

    Raised instead of silently defaulting (the old ``_dns_block_type``
    reported any unknown :class:`DnsError` subclass as ``DNS_TIMEOUT``,
    which would misattribute a new resolver failure mode in every
    Table-5 row derived from it).
    """

    def __init__(self, error: Exception):
        super().__init__(
            f"no BlockType mapping for {type(error).__module__}."
            f"{type(error).__qualname__}: {error!r}; register it in "
            "repro.core.taxonomy.FAILURE_BLOCK_TYPES"
        )
        self.error = error


#: Concrete failure → blocking symptom, ordered most-derived first so the
#: subclass fallback walk in :func:`block_type_for` stays correct.
FAILURE_BLOCK_TYPES: Tuple[Tuple[Type[Exception], BlockType], ...] = (
    (DnsTimeout, BlockType.DNS_TIMEOUT),
    (NxDomain, BlockType.DNS_NXDOMAIN),
    (ServFail, BlockType.DNS_SERVFAIL),
    (Refused, BlockType.DNS_REFUSED),
    (ConnectTimeout, BlockType.IP_TIMEOUT),
    (ConnectionReset, BlockType.IP_RST),
    (TlsTimeout, BlockType.SNI_TIMEOUT),
    (TlsReset, BlockType.SNI_RST),
    (HttpTimeout, BlockType.HTTP_TIMEOUT),
)

#: Failure-class bases, checked in order (ConnectionReset during an HTTP
#: exchange still classifies as "tcp": the reset is a transport symptom).
_FAILURE_CLASS_BASES: Tuple[Tuple[Type[Exception], str], ...] = (
    (DnsError, "dns"),
    (TcpError, "tcp"),
    (TlsError, "tls"),
    (HttpTimeout, "http"),
)

#: Which protocol stage each recorded symptom implicates.  The assertion
#: below keeps this total over BlockType, so adding an enum member
#: without deciding its stage fails at import time.
BLOCK_TYPE_FAILURE_CLASS: Dict[BlockType, str] = {
    BlockType.DNS_TIMEOUT: "dns",
    BlockType.DNS_NXDOMAIN: "dns",
    BlockType.DNS_SERVFAIL: "dns",
    BlockType.DNS_REFUSED: "dns",
    BlockType.DNS_REDIRECT: "dns",
    BlockType.IP_TIMEOUT: "tcp",
    BlockType.IP_RST: "tcp",
    BlockType.SNI_TIMEOUT: "tls",
    BlockType.SNI_RST: "tls",
    BlockType.HTTP_TIMEOUT: "http",
    BlockType.HTTP_RST: "http",
    BlockType.BLOCK_PAGE: "http",
    BlockType.SERVER_FILTERING: "other",
}

assert set(BLOCK_TYPE_FAILURE_CLASS) == set(BlockType), (
    "BLOCK_TYPE_FAILURE_CLASS must cover every BlockType; missing: "
    + ", ".join(
        sorted(t.value for t in set(BlockType) - set(BLOCK_TYPE_FAILURE_CLASS))
    )
)

# type(error) → classification, memoized per process.  Pure functions of
# the class: safe shared state under any worker sharding, unlike the
# hand-rolled module-dict caches they replace (CSA101).


@lru_cache(maxsize=None)
def _block_type_for_class(cls: Type[Exception]) -> Optional[BlockType]:
    for base, block_type in FAILURE_BLOCK_TYPES:
        if issubclass(cls, base):
            return block_type
    return None


@lru_cache(maxsize=None)
def _failure_class_for_class(cls: Type[Exception]) -> str:
    for base, name in _FAILURE_CLASS_BASES:
        if issubclass(cls, base):
            return name
    return "other"


def block_type_for(error: Exception) -> Optional[BlockType]:
    """Blocking symptom a transport failure suggests; None when it maps
    to no censorship mechanism (e.g. an application error)."""
    return _block_type_for_class(type(error))


def dns_block_type(error: DnsError) -> BlockType:
    """Symptom for a DNS-stage failure; exhaustive over the taxonomy.

    Raises :class:`UnclassifiedFailureError` for a :class:`DnsError`
    subclass with no registered mapping rather than guessing.
    """
    block_type = block_type_for(error)
    if block_type is None or BLOCK_TYPE_FAILURE_CLASS[block_type] != "dns":
        raise UnclassifiedFailureError(error)
    return block_type


def failure_class(error: Exception) -> str:
    """Protocol stage a failure belongs to: dns | tcp | tls | http | other."""
    return _failure_class_for_class(type(error))


def failure_class_for(block_type: BlockType) -> str:
    """Protocol stage a recorded blocking symptom implicates."""
    return BLOCK_TYPE_FAILURE_CLASS[block_type]
