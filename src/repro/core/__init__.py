"""C-Saw core: the paper's contribution, assembled from its modules."""

from .aggregation import UrlPrefixIndex, storage_key
from .analytics import AsSummary, MeasurementAnalytics
from .appcheck import AppReachabilityChecker, AppStatus
from .blockpage import (
    BlockpageDetector,
    phase1_looks_like_blockpage,
    phase2_is_blockpage,
)
from .circumvention import CircumventionModule, fix_defeats
from .client import CSawClient
from .config import CSawConfig
from .detection import DetectionOutcome, measure_direct_path
from .fleet import (
    ClientCohort,
    FleetMetrics,
    run_fleet_storm,
    run_fleet_storm_sharded,
)
from .globaldb import (
    GlobalEntry,
    RegistrationError,
    ReportItem,
    ServerDB,
    SyncBatch,
    SyncResult,
)
from .localdb import LocalDatabase
from .measurement import MeasurementModule, ServedResponse
from .multihoming import MultihomingManager
from .records import BlockStatus, BlockType, URLRecord, decode_stages, encode_stages
from .reporting import GlobalView, ReportingService, ensure_collector
from .reputation import ClientProfile, ReputationAnalyzer
from .session import MeasurementSession
from .taxonomy import (
    UnclassifiedFailureError,
    block_type_for,
    dns_block_type,
    failure_class,
    failure_class_for,
)
from .trace import SessionTrace, TraceEvent, TraceMode
from .voting import VoteStats, VotingLedger

__all__ = [
    "UrlPrefixIndex",
    "storage_key",
    "AsSummary",
    "MeasurementAnalytics",
    "AppReachabilityChecker",
    "AppStatus",
    "BlockpageDetector",
    "phase1_looks_like_blockpage",
    "phase2_is_blockpage",
    "CircumventionModule",
    "fix_defeats",
    "CSawClient",
    "CSawConfig",
    "DetectionOutcome",
    "measure_direct_path",
    "ClientCohort",
    "FleetMetrics",
    "run_fleet_storm",
    "run_fleet_storm_sharded",
    "GlobalEntry",
    "RegistrationError",
    "ReportItem",
    "ServerDB",
    "SyncBatch",
    "SyncResult",
    "LocalDatabase",
    "MeasurementModule",
    "ServedResponse",
    "MultihomingManager",
    "BlockStatus",
    "BlockType",
    "URLRecord",
    "decode_stages",
    "encode_stages",
    "GlobalView",
    "ReportingService",
    "ensure_collector",
    "ClientProfile",
    "ReputationAnalyzer",
    "MeasurementSession",
    "UnclassifiedFailureError",
    "block_type_for",
    "dns_block_type",
    "failure_class",
    "failure_class_for",
    "SessionTrace",
    "TraceEvent",
    "TraceMode",
    "VoteStats",
    "VotingLedger",
]
