"""Fleet-scale client cohorts: millions of vantages as record arrays.

The engine, voting, and per-AS shard layers are each fast in isolation;
this module exercises them *together* at population scale.  A
:class:`ClientCohort` represents thousands-to-millions of C-Saw clients
without one ``CSawClient`` object per user: each AS's population is a
set of parallel record arrays (``array`` module typed arrays) —

- ``versions``      last global_DB shard version each client applied
                    (−1 = never synced → next pull is a full snapshot);
- ``next_pull_at``  each client's periodic blocked-list pull schedule;
- ``bytes_received`` / ``rows_received``  per-client delta-sync cost;
- ``pending``       per-reporter count of wave URLs not yet posted;
- reporter identity arrays (indices + server-issued UUIDs) for the
  active-reporter subset — reputation/voting runs on real identities.

The mean-field observation that makes this sound: every client of an AS
consumes the same server-side change stream, so a client's blocked-list
view is a pure function of the shard version it last applied.  Only
schedule offsets, sync costs, and reporter state differ per client —
exactly what the arrays store.  ICLab-style fleets (many lightweight
vantages, aggregate load is the bottleneck) and Turkmenistan-style
low-penetration studies (huge populations, few active reporters) both
fit this shape.

Pulls ride the *columnar* delta-sync wire format
(:meth:`~repro.core.globaldb.ServerDB.sync_batch_for_as`): one batch is
built per (AS, since-version) per service tick and shared by every
client at that version, then applied into the record arrays in one
pass.  Reports go through the ordinary ``post_update`` path, so the
voting ledger and shard change logs see real traffic.

Sweeps are *group-applied* (DESIGN.md §11): clients are stored in pull
order (offsets sorted at construction), so the clients due in a sweep
are one contiguous cyclic rank range, and every client in a run of
equal since-versions receives the same batch, the same row/byte
increments, and the same resulting version.  The sweep therefore costs
O(distinct since-versions) batch/metric work plus O(clients due) array
bookkeeping via slice assignment — never a per-client dict/property
dance.  The original per-client loop is retained as the executable
spec (``sweep_mode="spec"``) and a hypothesis property class proves
the grouped path bit-identical across random wave/pull schedules.

Process fan-out: :func:`run_fleet_storm_sharded` partitions the AS
space across worker processes with :mod:`repro.runner` — shards are
independent by construction, so each worker simulates its slice of the
fleet against its own :class:`ServerDB` and the per-AS metrics merge by
concatenation (global counters by summation).

**Measurement planes** (DESIGN.md §13): each AS's reporter population is
a list of :class:`_PlaneGroup` records, one per
:class:`repro.planes.MeasurementPlane` in the cohort's mix — per-plane
reporter indices,
identities, detection schedules, item lists, and convergence targets.
The default mix is a single :class:`~repro.planes.CSawBrowserPlane` at
``reporter_fraction``, bit-identical to the pre-plane pipeline
(``tests/data/plane_golden.json``): plane 0 draws from the shard's own
RNG stream in the historical order, while every additional plane draws
from its own ``derive_seed(seed, "fleet-plane", name, asn)`` stream — so
adding a plane never perturbs the C-Saw subpopulation, and sharded
workers stay draw-identical for any worker count.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..runner import TrialSpec, derive_seed, merge_values, run_trials
from ..simnet.engine import Environment
from .globaldb import SYNC_HEADER_BYTES, ReportItem, ServerDB
from .records import BlockType

# NOTE: the planes package imports this module (WAVE_STAGES), so planes
# themselves are imported lazily inside methods — never at module level.

__all__ = [
    "CohortAs",
    "ClientCohort",
    "FleetMetrics",
    "run_fleet_storm",
    "run_fleet_storm_sharded",
]

#: Stage evidence the wave's reporters upload (multi-stage blocking).
WAVE_STAGES: Tuple[BlockType, ...] = (BlockType.DNS_TIMEOUT, BlockType.BLOCK_PAGE)


class _PlaneGroup:
    """One measurement plane's reporter subpopulation within an AS.

    Exactly the per-reporter record arrays ``CohortAs`` used to carry
    inline, one set per plane: reporter indices and server identities,
    detection schedule, per-reporter pending counts, the plane's item
    lists (one shared list, or per-reporter lists for planes whose
    vantages each observe their own subset), and the plane's own
    convergence target/curve.
    """

    __slots__ = (
        "plane", "name", "reporter_ix", "uuids", "report_at",
        "report_order", "report_ptr", "pending", "items", "items_by_r",
        "target_version", "unconverged", "converged_at", "curve",
        "last_converged",
    )

    def __init__(self, plane, n_clients: int):
        self.plane = plane
        self.name = plane.profile.name
        self.reporter_ix = array("l")
        self.uuids: List[str] = []
        self.report_at = array("d")
        self.report_order: List[int] = []
        self.report_ptr = 0
        self.pending = array("l")
        self.items: List[ReportItem] = []
        # Per-reporter item lists (plane.per_reporter_items); None for
        # shared-list planes — posts then use ``items`` directly.
        self.items_by_r: Optional[List[List[ReportItem]]] = None
        self.target_version: Optional[int] = None
        self.unconverged = n_clients
        self.converged_at: Optional[float] = None
        # Convergence-curve events: (sim time, clients converged so far)
        # recorded at service-tick granularity — identical across sweep
        # modes because it samples end-of-tick state, not sweep order.
        self.curve: List[Tuple[float, int]] = []
        self.last_converged = 0


class CohortAs:
    """One AS's client population, as parallel record arrays."""

    __slots__ = (
        "asn", "n", "rng", "versions", "next_pull_at", "pull_order", "pull_ptr",
        "bytes_received", "rows_received", "pulls", "wave_urls", "groups",
        "target_version", "wave_started_at", "converged_at", "unconverged",
    )

    def __init__(self, asn: int, n: int, pull_interval: float,
                 rng: random.Random):
        self.asn = asn
        self.n = n
        self.rng = rng
        self.versions = array("q", [-1]) * n  # -1 = never synced
        # Staggered periodic pulls: offsets are fixed per client and
        # stored *rank-sorted*, so client index == service rank, the due
        # order is cyclic, and each sweep touches one contiguous rank
        # range — O(clients due), never O(population), and amenable to
        # slice assignment.  Clients are exchangeable aside from the
        # independently-sampled reporter subset, so sorting the offsets
        # relabels clients without changing any aggregate outcome.
        self.next_pull_at = array(
            "d", sorted(rng.uniform(0.0, pull_interval) for _ in range(n))
        )
        self.pull_order = range(n)
        self.pull_ptr = 0
        self.bytes_received = array("q", [0]) * n
        self.rows_received = array("q", [0]) * n
        self.pulls = 0
        # Blocking-wave state (filled by start_wave / reporter posts):
        # one _PlaneGroup per plane in the cohort's mix.
        self.wave_urls: List[str] = []
        self.groups: List[_PlaneGroup] = []
        self.target_version: Optional[int] = None
        self.wave_started_at: Optional[float] = None
        self.converged_at: Optional[float] = None
        self.unconverged = n

    # Aggregate views over the plane groups, in mix order — the shape
    # the pre-plane record arrays had (and what the golden fingerprint
    # and sweep property tests read).  With a single group these are the
    # group's own arrays.

    @property
    def reporter_ix(self) -> array:
        groups = self.groups
        if len(groups) == 1:
            return groups[0].reporter_ix
        out = array("l")
        for g in groups:
            out.extend(g.reporter_ix)
        return out

    @property
    def reporter_uuids(self) -> List[str]:
        groups = self.groups
        if len(groups) == 1:
            return groups[0].uuids
        return [uuid for g in groups for uuid in g.uuids]

    @property
    def report_at(self) -> array:
        groups = self.groups
        if len(groups) == 1:
            return groups[0].report_at
        out = array("d")
        for g in groups:
            out.extend(g.report_at)
        return out

    @property
    def pending(self) -> array:
        groups = self.groups
        if len(groups) == 1:
            return groups[0].pending
        out = array("l")
        for g in groups:
            out.extend(g.pending)
        return out


@dataclass
class FleetMetrics:
    """Fleet-level outcome of one storm (merge-able across partitions)."""

    n_clients: int = 0
    n_ases: int = 0
    n_reporters: int = 0
    reports_absorbed: int = 0
    first_report_at: Optional[float] = None
    last_report_at: Optional[float] = None
    pulls_served: int = 0
    batches_built: int = 0
    sync_rows: int = 0
    sync_bytes: int = 0
    server_entries: int = 0
    convergence_by_as: Dict[int, float] = field(default_factory=dict)
    pending_by_as: Dict[int, int] = field(default_factory=dict)
    # Per-plane provenance (DESIGN.md §13).  Keys are plane names; the
    # single-plane storm has exactly one, DEFAULT_PLANE.  ``summary()``
    # is deliberately unchanged — per-plane views live in these fields
    # and :meth:`plane_summary`.
    reporters_by_plane: Dict[str, int] = field(default_factory=dict)
    reports_by_plane: Dict[str, int] = field(default_factory=dict)
    # plane -> asn -> seconds from wave onset (-1.0 = did not converge):
    # convergence of the *population* on the entries that plane's last
    # report pinned (the plane's own target shard version).
    convergence_by_plane: Dict[str, Dict[int, float]] = field(
        default_factory=dict
    )
    # plane -> [(seconds after wave onset, clients newly converged)]
    # events across all ASes; sort + cumulative-sum yields the
    # convergence curve (see repro.analysis.planes).
    curve_by_plane: Dict[str, List[Tuple[float, int]]] = field(
        default_factory=dict
    )

    @property
    def report_window(self) -> float:
        """Sim seconds from the first absorbed report to the last —
        kept as endpoints so partition merges stay exact (a max over
        per-partition windows would undercount the global span)."""
        if self.first_report_at is None or self.last_report_at is None:
            return 0.0
        return self.last_report_at - self.first_report_at

    @property
    def bytes_per_client(self) -> float:
        return self.sync_bytes / self.n_clients if self.n_clients else 0.0

    @property
    def rows_per_client(self) -> float:
        return self.sync_rows / self.n_clients if self.n_clients else 0.0

    @property
    def pending_at_horizon(self) -> int:
        """Wave URLs still unposted when the run ended, over all ASes —
        nonzero means the horizon cut off reporters mid-detection."""
        return sum(self.pending_by_as.values())

    @property
    def mean_convergence(self) -> float:
        values = [v for v in self.convergence_by_as.values() if v >= 0.0]
        return sum(values) / len(values) if values else float("nan")

    @property
    def max_convergence(self) -> float:
        values = [v for v in self.convergence_by_as.values() if v >= 0.0]
        return max(values) if values else float("nan")

    def merge(self, other: "FleetMetrics") -> "FleetMetrics":
        """Fold another partition's metrics in (AS sets must be disjoint).

        Partitions of a sharded storm never share an AS; an overlap
        means the caller merged the same slice twice, and silently
        letting ``dict.update`` clobber would undercount the fleet —
        so it raises instead.
        """
        overlap = self.convergence_by_as.keys() & other.convergence_by_as.keys()
        if overlap:
            raise ValueError(
                "overlapping AS partitions in FleetMetrics.merge: "
                f"{sorted(overlap)}"
            )
        self.n_clients += other.n_clients
        self.n_ases += other.n_ases
        self.n_reporters += other.n_reporters
        self.reports_absorbed += other.reports_absorbed
        if other.first_report_at is not None:
            self.first_report_at = (
                other.first_report_at
                if self.first_report_at is None
                else min(self.first_report_at, other.first_report_at)
            )
        if other.last_report_at is not None:
            self.last_report_at = (
                other.last_report_at
                if self.last_report_at is None
                else max(self.last_report_at, other.last_report_at)
            )
        self.pulls_served += other.pulls_served
        self.batches_built += other.batches_built
        self.sync_rows += other.sync_rows
        self.sync_bytes += other.sync_bytes
        self.server_entries += other.server_entries
        self.convergence_by_as.update(other.convergence_by_as)
        self.pending_by_as.update(other.pending_by_as)
        for plane, count in other.reporters_by_plane.items():
            self.reporters_by_plane[plane] = (
                self.reporters_by_plane.get(plane, 0) + count
            )
        for plane, count in other.reports_by_plane.items():
            self.reports_by_plane[plane] = (
                self.reports_by_plane.get(plane, 0) + count
            )
        for plane, by_as in other.convergence_by_plane.items():
            self.convergence_by_plane.setdefault(plane, {}).update(by_as)
        for plane, events in other.curve_by_plane.items():
            self.curve_by_plane.setdefault(plane, []).extend(events)
        return self

    def summary(self) -> Dict[str, float]:
        return {
            "n_clients": self.n_clients,
            "n_ases": self.n_ases,
            "n_reporters": self.n_reporters,
            "reports_absorbed": self.reports_absorbed,
            "report_window_sim_s": self.report_window,
            "pulls_served": self.pulls_served,
            "batches_built": self.batches_built,
            "sync_rows": self.sync_rows,
            "sync_bytes": self.sync_bytes,
            "bytes_per_client": self.bytes_per_client,
            "rows_per_client": self.rows_per_client,
            "mean_convergence_sim_s": self.mean_convergence,
            "max_convergence_sim_s": self.max_convergence,
            "pending_at_horizon": self.pending_at_horizon,
            "server_entries": self.server_entries,
        }

    def plane_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-plane scalars: reporter/report counts and convergence of
        each plane's own target (mean over converged ASes, count of
        converged ASes).  Empty until a wave ran."""
        out: Dict[str, Dict[str, float]] = {}
        for plane in sorted(
            self.reporters_by_plane.keys() | self.convergence_by_plane.keys()
        ):
            by_as = self.convergence_by_plane.get(plane, {})
            converged = [v for v in by_as.values() if v >= 0.0]
            out[plane] = {
                "reporters": self.reporters_by_plane.get(plane, 0),
                "reports": self.reports_by_plane.get(plane, 0),
                "converged_ases": len(converged),
                "mean_convergence_sim_s": (
                    sum(converged) / len(converged)
                    if converged
                    else float("nan")
                ),
            }
        return out


class ClientCohort:
    """A population of lightweight clients spread over per-AS shards."""

    def __init__(
        self,
        server: ServerDB,
        asns: List[int],
        clients_per_as: int,
        seed: int,
        reporter_fraction: float = 0.01,
        pull_interval: float = 600.0,
        tick: Optional[float] = None,
        sweep_mode: str = "grouped",
        planes: Optional[Sequence] = None,
    ):
        if clients_per_as < 1:
            raise ValueError("clients_per_as must be >= 1")
        if not 0.0 < reporter_fraction <= 1.0:
            raise ValueError(
                f"reporter_fraction must be in (0,1]: {reporter_fraction!r}"
            )
        if sweep_mode not in ("grouped", "spec"):
            raise ValueError(f"unknown sweep_mode: {sweep_mode!r}")
        self.sweep_mode = sweep_mode
        self._service_pulls = (
            self._service_pulls_grouped
            if sweep_mode == "grouped"
            else self._service_pulls_spec
        )
        self.server = server
        self.seed = seed
        # The measurement-plane mix: MeasurementPlane instances or spec
        # mappings (resolved via the planes registry).  None is the
        # degenerate single-plane mix — one CSawBrowserPlane at
        # reporter_fraction, bit-identical to the pre-plane cohort.
        from ..planes import build_plane
        from ..planes.base import MeasurementPlane
        from ..planes.csaw import CSawBrowserPlane

        if planes is None:
            self.planes: List[MeasurementPlane] = [
                CSawBrowserPlane(fraction=reporter_fraction)
            ]
        else:
            self.planes = [
                plane
                if isinstance(plane, MeasurementPlane)
                else build_plane(plane)
                for plane in planes
            ]
        if not self.planes:
            raise ValueError("planes must not be empty")
        names = [plane.profile.name for plane in self.planes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate plane names: {names!r}")
        self.pull_interval = pull_interval
        # Service granularity: how often each AS's population is swept
        # for due pulls/reports.  Coarser ticks batch more clients per
        # sweep (and per shared SyncBatch); finer ticks tighten the
        # convergence measurement.
        self.tick = tick if tick is not None else pull_interval / 20.0
        self.reporter_fraction = reporter_fraction
        # One seeded stream per AS, derived from the AS identity — the AS
        # space can then be partitioned across worker processes without
        # changing any AS's draws (worker-count invariance).
        self.shards: List[CohortAs] = [
            CohortAs(
                asn,
                clients_per_as,
                pull_interval,
                random.Random(derive_seed(seed, "fleet-as", asn)),
            )
            for asn in asns
        ]
        self.metrics = FleetMetrics(
            n_clients=clients_per_as * len(asns), n_ases=len(asns)
        )
        self._first_report_at: Optional[float] = None
        self._last_report_at: Optional[float] = None

    # -- wave scheduling -------------------------------------------------------

    def start_wave(
        self,
        now: float,
        urls_per_as: int,
        detection_delay: Tuple[float, float] = (5.0, 120.0),
        stagger: float = 0.0,
    ) -> None:
        """A censor starts blocking ``urls_per_as`` URLs in every AS.

        Each plane's reporter subset of the AS's population notices per
        the plane's detection model and posts its measurements through
        the ordinary report path (registering a real UUID with the
        server, so voting and reputation see the traffic).

        A shared-list plane's uploaded :class:`ReportItem` list is
        identical for every reporter of an AS, so it is built once per
        shard per wave (with the wave onset as the measurement time
        ``T_m``; each reporter's individual detection time still shows
        as its post time ``T_p``) instead of being rebuilt per reporter
        in the service loop.  Per-reporter planes (Encore's independent
        misclassification draws) thin the shared list once per reporter
        up front.

        ``stagger > 0`` rolls the wave: each AS's onset is drawn
        uniformly from ``[now, now + stagger)`` on a per-AS derived
        stream (worker-count invariant; the zero default leaves every
        draw untouched).

        RNG discipline: plane 0 draws from the shard's own stream in
        the historical order (sample, then delays, then any item draws),
        so the single-plane cohort is draw-for-draw the pre-plane one;
        every further plane draws from its own derived stream, so adding
        planes never perturbs plane 0's subpopulation.
        """
        server = self.server
        metrics = self.metrics
        for st in self.shards:
            onset = now
            if stagger > 0.0:
                onset = now + random.Random(
                    derive_seed(self.seed, "fleet-wave", st.asn)
                ).uniform(0.0, stagger)
            st.wave_urls = [
                f"http://wave-as{st.asn}-{k}.example.com/"
                for k in range(urls_per_as)
            ]
            st.wave_started_at = onset
            st.groups = []
            st.target_version = None
            st.converged_at = None
            st.unconverged = st.n
            for p_ix, plane in enumerate(self.planes):
                rng = (
                    st.rng
                    if p_ix == 0
                    else random.Random(
                        derive_seed(
                            self.seed, "fleet-plane", plane.profile.name,
                            st.asn,
                        )
                    )
                )
                group = _PlaneGroup(plane, st.n)
                n_reporters = plane.reporter_count(st.n)
                group.reporter_ix = array(
                    "l", rng.sample(range(st.n), n_reporters)
                )
                group.uuids = plane.register_reporters(
                    server, onset, n_reporters
                )
                group.report_at = array(
                    "d",
                    (
                        onset + delay
                        for delay in plane.detection_delays(
                            n_reporters, rng, detection_delay
                        )
                    ),
                )
                group.report_order = sorted(
                    range(n_reporters), key=group.report_at.__getitem__
                )
                group.items = plane.wave_items(
                    st.wave_urls, st.asn, onset, rng
                )
                if plane.per_reporter_items:
                    group.items_by_r = [
                        plane.reporter_items(group.items, rng)
                        for _ in range(n_reporters)
                    ]
                    group.pending = array(
                        "l", (len(items) for items in group.items_by_r)
                    )
                else:
                    group.pending = array(
                        "l", [len(group.items)]
                    ) * n_reporters
                st.groups.append(group)
                metrics.n_reporters += n_reporters
                metrics.reporters_by_plane[group.name] = (
                    metrics.reporters_by_plane.get(group.name, 0)
                    + n_reporters
                )

    # -- per-tick service ------------------------------------------------------

    def _post_due_reports(self, st: CohortAs, now: float) -> None:
        server = self.server
        metrics = self.metrics
        by_plane = metrics.reports_by_plane
        all_done = True
        for group in st.groups:
            order = group.report_order
            shared = group.items  # one shared list per shard per wave
            items_by_r = group.items_by_r
            pending = group.pending
            while group.report_ptr < len(order):
                r = order[group.report_ptr]
                if group.report_at[r] > now:
                    break
                items = shared if items_by_r is None else items_by_r[r]
                if items or items_by_r is None:
                    accepted = server.post_update(group.uuids[r], items, now)
                    metrics.reports_absorbed += accepted
                    by_plane[group.name] = (
                        by_plane.get(group.name, 0) + accepted
                    )
                    if self._first_report_at is None:
                        self._first_report_at = now
                    self._last_report_at = now
                # else: a per-reporter plane whose vantage observed
                # nothing (e.g. every blockpage misclassified) — no
                # server call, no report-window update.
                pending[r] = 0
                group.report_ptr += 1
            if group.report_ptr == len(order):
                if group.target_version is None:
                    # This plane's last reporter posted: the shard
                    # version now is the plane's own convergence target.
                    group.target_version = server.version_for_as(st.asn)
            else:
                all_done = False
        if all_done and st.target_version is None:
            # Last reporter of the last plane posted: the shard version
            # now is what the population must reach to be considered
            # converged (the overall target; per-plane targets above).
            st.target_version = server.version_for_as(st.asn)

    def _service_pulls_spec(self, st: CohortAs, now: float) -> None:
        """Serve every client whose periodic pull came due, one at a time.

        Clients due in the same sweep that share a since-version also
        share one server-built :class:`SyncBatch` — the columnar format
        makes the share free (immutable parallel tuples).

        This per-client loop is the *executable spec* for the grouped
        sweep below: hypothesis property tests drive both through random
        wave/pull schedules and demand bit-identical metrics and
        per-client arrays.  It intentionally keeps the O(population)
        shape (per-client batch lookups, wire-size property calls) the
        fleet layer shipped with before hot-path round 4.
        """
        server, metrics = self.server, self.metrics
        order, next_pull = st.pull_order, st.next_pull_at
        versions = st.versions
        batch_cache: Dict[int, object] = {}
        n = st.n
        served = 0
        while served < n:
            i = order[st.pull_ptr % n]
            if next_pull[i] > now:
                break
            since = versions[i]
            batch = batch_cache.get(since)
            if batch is None:
                batch = server.sync_batch_for_as(
                    st.asn, now,
                    since_version=None if since < 0 else since,
                )
                batch_cache[since] = batch
                metrics.batches_built += 1
            versions[i] = batch.version
            rows = batch.transferred
            if rows:
                st.rows_received[i] += rows
                st.bytes_received[i] += batch.wire_bytes
                metrics.sync_rows += rows
                metrics.sync_bytes += batch.wire_bytes
            else:
                metrics.sync_bytes += SYNC_HEADER_BYTES  # empty delta
            next_pull[i] += self.pull_interval
            st.pulls += 1
            metrics.pulls_served += 1
            st.pull_ptr += 1
            served += 1
            if (
                st.target_version is not None
                and st.unconverged
                and since < st.target_version <= batch.version
            ):
                st.unconverged -= 1
                if st.unconverged == 0 and st.wave_started_at is not None:
                    st.converged_at = now
            for group in st.groups:
                gt = group.target_version
                if (
                    gt is not None
                    and group.unconverged
                    and since < gt <= batch.version
                ):
                    group.unconverged -= 1

    def _service_pulls_grouped(self, st: CohortAs, now: float) -> None:
        """Group-applied sweep: the spec above in O(distinct versions).

        Because offsets are rank-sorted, the clients due this sweep are
        one contiguous cyclic rank range starting at ``pull_ptr``.
        Every client in a run of equal since-versions receives the same
        batch, the same row/byte increments, and the same resulting
        version — so each run is applied with slice assignment and one
        counted aggregate increment per metric, and server-side work
        (batch build, wire-size accounting, convergence comparison)
        happens once per run instead of once per client.  Batches are
        still deduplicated per distinct since-version across the whole
        sweep, so ``batches_built`` matches the spec exactly even if a
        wrap-around splits a version run in two.
        """
        next_pull = st.next_pull_at
        n = st.n
        ptr = st.pull_ptr
        start = ptr % n
        # Phase 1 — bookkeeping scan: count consecutive due ranks.
        served = 0
        r = start
        while served < n:
            if next_pull[r] > now:
                break
            served += 1
            r += 1
            if r == n:
                r = 0
        if not served:
            return
        server, metrics = self.server, self.metrics
        versions = st.versions
        interval = self.pull_interval
        target = st.target_version
        asn = st.asn
        batch_cache: Dict[int, object] = {}
        # Phase 2 — per (since-version → group) application over the due
        # range, split at the cyclic wrap.
        end = start + served
        segments = (
            ((start, end),) if end <= n else ((start, n), (0, end - n))
        )
        for seg_lo, seg_hi in segments:
            lo = seg_lo
            while lo < seg_hi:
                since = versions[lo]
                hi = lo + 1
                while hi < seg_hi and versions[hi] == since:
                    hi += 1
                batch = batch_cache.get(since)
                if batch is None:
                    batch = server.sync_batch_for_as(
                        asn, now,
                        since_version=None if since < 0 else since,
                    )
                    batch_cache[since] = batch
                    metrics.batches_built += 1
                count = hi - lo
                version = batch.version
                rows = batch.transferred
                if count == 1:
                    versions[lo] = version
                    next_pull[lo] += interval
                    if rows:
                        wire = batch.wire_bytes
                        st.rows_received[lo] += rows
                        st.bytes_received[lo] += wire
                        metrics.sync_rows += rows
                        metrics.sync_bytes += wire
                    else:
                        metrics.sync_bytes += SYNC_HEADER_BYTES
                else:
                    versions[lo:hi] = array("q", [version]) * count
                    next_pull[lo:hi] = array(
                        "d", [x + interval for x in next_pull[lo:hi]]
                    )
                    if rows:
                        wire = batch.wire_bytes
                        st.rows_received[lo:hi] = array(
                            "q", [x + rows for x in st.rows_received[lo:hi]]
                        )
                        st.bytes_received[lo:hi] = array(
                            "q", [x + wire for x in st.bytes_received[lo:hi]]
                        )
                        metrics.sync_rows += rows * count
                        metrics.sync_bytes += wire * count
                    else:
                        metrics.sync_bytes += SYNC_HEADER_BYTES * count
                if (
                    target is not None
                    and st.unconverged
                    and since < target <= version
                ):
                    st.unconverged -= count
                    if st.unconverged == 0 and st.wave_started_at is not None:
                        st.converged_at = now
                for group in st.groups:
                    gt = group.target_version
                    if (
                        gt is not None
                        and group.unconverged
                        and since < gt <= version
                    ):
                        group.unconverged -= count
                lo = hi
        st.pulls += served
        metrics.pulls_served += served
        st.pull_ptr = ptr + served

    def service(self, now: float) -> None:
        """One sweep over every AS: due reports, then due pulls, then
        end-of-tick per-plane convergence bookkeeping (tick-granular, so
        it cannot differ between sweep modes)."""
        for st in self.shards:
            groups = st.groups
            if groups:
                for group in groups:
                    if group.report_ptr < len(group.report_order):
                        self._post_due_reports(st, now)
                        break
            self._service_pulls(st, now)
            if groups:
                n = st.n
                for group in groups:
                    converged = n - group.unconverged
                    if converged != group.last_converged:
                        group.curve.append((now, converged))
                        group.last_converged = converged
                        if (
                            group.unconverged == 0
                            and group.converged_at is None
                        ):
                            group.converged_at = now

    # -- engine driver ---------------------------------------------------------

    def run(self, env: Environment, until: float):
        """Process: periodic service sweeps until ``until`` sim-seconds."""
        while env.now < until:
            yield env.timeout(self.tick)
            self.service(env.now)

    def finalize(self) -> FleetMetrics:
        """Compute the fleet-level metrics after a run."""
        metrics = self.metrics
        metrics.first_report_at = self._first_report_at
        metrics.last_report_at = self._last_report_at
        for st in self.shards:
            if st.converged_at is not None and st.wave_started_at is not None:
                metrics.convergence_by_as[st.asn] = (
                    st.converged_at - st.wave_started_at
                )
            else:
                metrics.convergence_by_as[st.asn] = -1.0  # did not converge
            metrics.pending_by_as[st.asn] = sum(
                sum(group.pending) for group in st.groups
            )
            started = st.wave_started_at
            if started is None:
                continue
            for group in st.groups:
                by_as = metrics.convergence_by_plane.setdefault(
                    group.name, {}
                )
                by_as[st.asn] = (
                    group.converged_at - started
                    if group.converged_at is not None
                    else -1.0
                )
                if group.curve:
                    events = metrics.curve_by_plane.setdefault(
                        group.name, []
                    )
                    prev = 0
                    for at, converged in group.curve:
                        events.append((at - started, converged - prev))
                        prev = converged
        metrics.server_entries = self.server.entry_count
        return metrics


# -- top-level storm entry points (picklable for the process runner) -----------


def run_fleet_storm(
    seed: int = 0,
    n_ases: int = 50,
    clients_per_as: int = 2000,
    reporter_fraction: float = 0.01,
    urls_per_as: int = 20,
    pull_interval: float = 600.0,
    wave_at: float = 300.0,
    horizon: Optional[float] = None,
    asn_base: int = 40000,
    sweep_mode: str = "grouped",
    planes: Optional[Sequence] = None,
    wave_stagger: float = 0.0,
    server: Optional[ServerDB] = None,
) -> FleetMetrics:
    """One fleet storm: steady pulls, a blocking wave, convergence.

    Builds a :class:`ServerDB` (or drives a caller-supplied one, so the
    analysis layer can inspect post-storm voting state), a cohort of
    ``n_ases * clients_per_as`` clients, starts a blocking wave at
    ``wave_at`` (rolled over ``wave_stagger`` seconds when nonzero),
    and runs the engine until every AS had time to converge
    (``horizon`` defaults to the wave plus two pull intervals).
    ``planes`` is the measurement-plane mix — plane instances or spec
    mappings; None is the single C-Saw plane at ``reporter_fraction``.
    Returns :class:`FleetMetrics`.
    """
    if server is None:
        server = ServerDB(entry_ttl=None)
    env = Environment()
    cohort = ClientCohort(
        server,
        asns=[asn_base + i for i in range(n_ases)],
        clients_per_as=clients_per_as,
        seed=seed,
        reporter_fraction=reporter_fraction,
        pull_interval=pull_interval,
        sweep_mode=sweep_mode,
        planes=planes,
    )

    def driver():
        yield env.timeout(wave_at)
        cohort.start_wave(
            env.now, urls_per_as=urls_per_as, stagger=wave_stagger
        )

    env.process(driver())
    stop_at = (
        horizon
        if horizon is not None
        else wave_at + 2.0 * pull_interval + wave_stagger + cohort.tick
    )
    env.process(cohort.run(env, stop_at))
    env.run()
    return cohort.finalize()


def _fleet_partition(
    seed: int,
    n_ases: int,
    asn_base: int,
    **kwargs,
) -> FleetMetrics:
    """One worker's slice of the fleet (its own ServerDB + engine)."""
    return run_fleet_storm(
        seed=seed, n_ases=n_ases, asn_base=asn_base, **kwargs
    )


def run_fleet_storm_sharded(
    seed: int = 0,
    n_ases: int = 50,
    workers: Optional[int] = None,
    asn_base: int = 40000,
    **kwargs,
) -> FleetMetrics:
    """Fan the AS space across processes with :mod:`repro.runner`.

    Per-AS shards are independent, so partitioning by AS is exact: each
    worker simulates its slice against its own :class:`ServerDB` and the
    results merge by summation/concatenation.  Deterministic for any
    worker count — each AS's random stream derives from the AS identity,
    not from the partitioning or scheduling.
    """
    from ..runner import resolve_workers

    n_parts = min(resolve_workers(n_ases, workers), n_ases)
    bounds = [
        (part * n_ases) // n_parts for part in range(n_parts + 1)
    ]
    specs = [
        TrialSpec(
            name=f"fleet[{part}]",
            fn=_fleet_partition,
            kwargs={
                "seed": seed,
                "n_ases": bounds[part + 1] - bounds[part],
                "asn_base": asn_base + bounds[part],
                **kwargs,
            },
        )
        for part in range(n_parts)
        if bounds[part + 1] > bounds[part]
    ]
    results = run_trials(specs, workers=n_parts)
    merged: Optional[FleetMetrics] = None
    for value in merge_values(results).values():
        merged = value if merged is None else merged.merge(value)
    assert merged is not None
    return merged
