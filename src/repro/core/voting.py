"""Vote accounting for crowdsourced measurements (§5).

Each client holds one unit of vote and spreads it evenly across the d
blocked URLs it currently reports: v_{i,j,k} = 1/d for client i, URL j,
AS k.  The server keeps, per (URL, AS):

- s_{j,k}: the sum of votes — small s with large n signals a clique
  spamming many URLs each;
- n_{j,k}: how many distinct clients vouch for it — small n signals a
  lone (possibly malicious) reporter.

Consumers apply a confidence criterion over (s, n) before trusting an
entry, which bounds the influence any single registered identity can buy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

__all__ = ["VoteStats", "VotingLedger"]

Key = Tuple[str, int]  # (url, asn)


@dataclass(frozen=True)
class VoteStats:
    """Robustness estimates for one (URL, AS) entry."""

    votes: float  # s_{j,k}
    reporters: int  # n_{j,k}

    def passes(self, min_reporters: int = 1, min_votes: float = 0.0) -> bool:
        return self.reporters >= min_reporters and self.votes >= min_votes


class VotingLedger:
    """Tracks which client vouches for which blocked (URL, AS) entries."""

    def __init__(self) -> None:
        self._by_client: Dict[str, Set[Key]] = {}
        self._by_key: Dict[Key, Set[str]] = {}

    def set_client_reports(self, client_id: str, keys: List[Key]) -> None:
        """Replace the set of blocked entries ``client_id`` vouches for.

        Votes are recomputed implicitly: a client reporting d URLs gives
        1/d to each, so growing its report list dilutes its earlier votes
        — the PageRank-style normalization the paper leans on.
        """
        new_keys = set(keys)
        old_keys = self._by_client.get(client_id, set())
        for key in old_keys - new_keys:
            owners = self._by_key.get(key)
            if owners is not None:
                owners.discard(client_id)
                if not owners:
                    del self._by_key[key]
        for key in new_keys - old_keys:
            self._by_key.setdefault(key, set()).add(client_id)
        if new_keys:
            self._by_client[client_id] = new_keys
        else:
            self._by_client.pop(client_id, None)

    def add_client_reports(self, client_id: str, keys: List[Key]) -> None:
        """Add entries to a client's vouch set (keeping existing ones)."""
        merged = list(self._by_client.get(client_id, set()) | set(keys))
        self.set_client_reports(client_id, merged)

    def revoke_client(self, client_id: str) -> None:
        """Drop a (malicious) client's influence entirely."""
        self.set_client_reports(client_id, [])

    def stats(self, url: str, asn: int) -> VoteStats:
        key = (url, asn)
        reporters = self._by_key.get(key, set())
        votes = 0.0
        for client_id in reporters:
            d = len(self._by_client.get(client_id, ()))
            if d:
                votes += 1.0 / d
        return VoteStats(votes=votes, reporters=len(reporters))

    def reporters_for(self, url: str, asn: int) -> Set[str]:
        return set(self._by_key.get((url, asn), set()))

    def client_count(self) -> int:
        return len(self._by_client)

    def clients(self) -> List[str]:
        return list(self._by_client)

    def reports_of(self, client_id: str) -> Set[Key]:
        """The (URL, AS) entries this client currently vouches for."""
        return set(self._by_client.get(client_id, set()))
