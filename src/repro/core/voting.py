"""Vote accounting for crowdsourced measurements (§5).

Each client holds one unit of vote and spreads it evenly across the d
blocked URLs it currently reports: v_{i,j,k} = 1/d for client i, URL j,
AS k.  The server keeps, per (URL, AS):

- s_{j,k}: the sum of votes — small s with large n signals a clique
  spamming many URLs each;
- n_{j,k}: how many distinct clients vouch for it — small n signals a
  lone (possibly malicious) reporter.

Consumers apply a confidence criterion over (s, n) before trusting an
entry, which bounds the influence any single registered identity can buy.

**Measurement planes.**  Reports can arrive through planes of different
fidelity (in-browser C-Saw, Encore-style probes, generated probe lists —
see :mod:`repro.planes`).  The ledger optionally keys its d-histograms
per plane so consumers can weight the criterion by plane fidelity
(:meth:`VotingLedger.weighted_stats`).  Plane tracking is *dormant*
until the first client is tagged with a non-default plane
(:meth:`VotingLedger.set_client_plane`): the dormant hot path is the
pre-plane code plus one boolean check, and a dormant ledger's
:meth:`stats` is bit-identical to a plane-free one (property-tested).
When active, the per-plane histograms partition the aggregate one —
merging them bucket-wise reproduces ``_vote_hist`` exactly.

s_{j,k} is maintained **incrementally**: per key we keep a histogram
``{d: count}`` of how many reporters currently spread their vote over d
URLs.  When a client's report count moves from d_old to d_new, only that
client's keys are touched (decrement the d_old bucket, increment d_new),
so :meth:`VotingLedger.stats` is a dict read plus a sum over the handful
of distinct d values — no scan over reporters.  Because the histogram
holds integers, the incremental path and the from-scratch
:meth:`recompute_stats` reference produce *bit-identical* floats (both
sum ``count / d`` over the same sorted buckets); property tests assert
exact agreement, mirroring the ``linear_on_*`` pattern in
``censor/compiled.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

__all__ = ["DEFAULT_PLANE", "VoteStats", "VotingLedger"]

Key = Tuple[str, int]  # (url, asn)

#: The plane every report belongs to unless tagged otherwise: C-Saw's
#: own in-browser redundant-request plane.  Canonical home of the name
#: (``repro.planes`` re-exports it) so the core layer never imports the
#: planes package.
DEFAULT_PLANE = "csaw"


@dataclass(frozen=True)
class VoteStats:
    """Robustness estimates for one (URL, AS) entry."""

    votes: float  # s_{j,k}
    reporters: int  # n_{j,k}

    def passes(self, min_reporters: int = 1, min_votes: float = 0.0) -> bool:
        return self.reporters >= min_reporters and self.votes >= min_votes


def _hist_votes(hist: Dict[int, int]) -> float:
    """Σ count/d over the histogram, summed in sorted-bucket order so the
    incremental and from-scratch paths add the same floats in the same
    order (exact agreement, not approximate)."""
    if not hist:
        return 0.0
    if len(hist) == 1:
        (d, count), = hist.items()
        return count / d
    votes = 0.0
    for d in sorted(hist):
        votes += hist[d] / d
    return votes


class VotingLedger:
    """Tracks which client vouches for which blocked (URL, AS) entries."""

    def __init__(self) -> None:
        self._by_client: Dict[str, Set[Key]] = {}
        self._by_key: Dict[Key, Set[str]] = {}
        # key -> {d: number of reporters currently spreading over d URLs}
        self._vote_hist: Dict[Key, Dict[int, int]] = {}
        # Per-plane refinement of _vote_hist, maintained only once a
        # non-default plane appears (dormant single-plane ledgers pay one
        # boolean per mutation).  client -> plane holds non-default
        # assignments only; key -> plane -> {d: count} partitions the
        # aggregate histogram when active.
        self._plane_of: Dict[str, str] = {}
        self._plane_hist: Dict[Key, Dict[str, Dict[int, int]]] = {}
        self._planes_active = False

    # -- incremental histogram maintenance ------------------------------------

    def _hist_add(self, key: Key, d: int) -> None:
        hist = self._vote_hist.get(key)
        if hist is None:
            self._vote_hist[key] = {d: 1}
        else:
            hist[d] = hist.get(d, 0) + 1

    def _hist_sub(self, key: Key, d: int) -> None:
        hist = self._vote_hist[key]
        count = hist[d] - 1
        if count:
            hist[d] = count
        else:
            del hist[d]
            if not hist:
                del self._vote_hist[key]

    def _plane_hist_add(self, key: Key, plane: str, d: int) -> None:
        by_plane = self._plane_hist.get(key)
        if by_plane is None:
            self._plane_hist[key] = {plane: {d: 1}}
            return
        hist = by_plane.get(plane)
        if hist is None:
            by_plane[plane] = {d: 1}
        else:
            hist[d] = hist.get(d, 0) + 1

    def _plane_hist_sub(self, key: Key, plane: str, d: int) -> None:
        by_plane = self._plane_hist[key]
        hist = by_plane[plane]
        count = hist[d] - 1
        if count:
            hist[d] = count
        else:
            del hist[d]
            if not hist:
                del by_plane[plane]
                if not by_plane:
                    del self._plane_hist[key]

    # -- plane assignment ------------------------------------------------------

    def set_client_plane(self, client_id: str, plane: str = DEFAULT_PLANE) -> None:
        """Tag a client's reports with a measurement plane.

        The first non-default assignment flips the ledger from dormant to
        plane-tracking: the per-plane histograms are rebuilt once from
        current state, and every later mutation mirrors into them.  May be
        called before or after the client's first report.
        """
        old = self._plane_of.get(client_id, DEFAULT_PLANE)
        if plane == old:
            return
        if plane == DEFAULT_PLANE:
            del self._plane_of[client_id]
        else:
            self._plane_of[client_id] = plane
        if not self._planes_active:
            if plane == DEFAULT_PLANE:
                return  # still dormant: nothing non-default anywhere
            self._activate_planes()
            return
        keys = self._by_client.get(client_id)
        if keys:
            d = len(keys)
            for key in keys:
                self._plane_hist_sub(key, old, d)
                self._plane_hist_add(key, plane, d)

    def _activate_planes(self) -> None:
        """Build the per-plane histograms from scratch (first non-default
        plane assignment).  One pass over clients — the same bucket
        contents incremental mirroring maintains from here on."""
        self._planes_active = True
        self._plane_hist.clear()
        plane_of = self._plane_of
        for client_id, keys in self._by_client.items():
            plane = plane_of.get(client_id, DEFAULT_PLANE)
            d = len(keys)
            for key in keys:
                self._plane_hist_add(key, plane, d)

    def plane_of(self, client_id: str) -> str:
        return self._plane_of.get(client_id, DEFAULT_PLANE)

    # -- mutation ------------------------------------------------------------

    def set_client_reports(self, client_id: str, keys: List[Key]) -> Set[Key]:
        """Replace the set of blocked entries ``client_id`` vouches for.

        Votes are recomputed implicitly: a client reporting d URLs gives
        1/d to each, so growing its report list dilutes its earlier votes
        — the PageRank-style normalization the paper leans on.

        Returns the keys whose (votes, reporters) statistics changed —
        the set a versioned store must mark dirty for delta sync.
        """
        return self._set_reports(client_id, set(keys))

    def add_client_reports(self, client_id: str, keys: List[Key]) -> Set[Key]:
        """Add entries to a client's vouch set (keeping existing ones)."""
        old_keys = self._by_client.get(client_id)
        merged = set(keys) if old_keys is None else old_keys | set(keys)
        return self._set_reports(client_id, merged)

    def _set_reports(self, client_id: str, new_keys: Set[Key]) -> Set[Key]:
        old_keys = self._by_client.get(client_id, set())
        if new_keys == old_keys:
            return set()
        if not old_keys:
            # First vouch set for this client (the server-side hot path:
            # every cohort reporter lands here once per wave).  No old
            # votes to retract or re-bucket — one pass seeds ownership
            # and the d-histograms, with the same bucket contents the
            # general path below would produce.
            d_new = len(new_keys)
            by_key = self._by_key
            hists = self._vote_hist
            for key in new_keys:
                owners = by_key.get(key)
                if owners is None:
                    by_key[key] = {client_id}
                else:
                    owners.add(client_id)
                hist = hists.get(key)
                if hist is None:
                    hists[key] = {d_new: 1}
                else:
                    hist[d_new] = hist.get(d_new, 0) + 1
            self._by_client[client_id] = new_keys
            if self._planes_active:
                plane = self._plane_of.get(client_id, DEFAULT_PLANE)
                for key in new_keys:
                    self._plane_hist_add(key, plane, d_new)
            return set(new_keys)
        d_old = len(old_keys)
        d_new = len(new_keys)
        by_key = self._by_key
        hist_add = self._hist_add
        hist_sub = self._hist_sub
        mirror = self._planes_active
        plane = self._plane_of.get(client_id, DEFAULT_PLANE) if mirror else ""
        affected = old_keys ^ new_keys
        for key in old_keys - new_keys:
            owners = by_key.get(key)
            if owners is not None:
                owners.discard(client_id)
                if not owners:
                    del by_key[key]
            hist_sub(key, d_old)
            if mirror:
                self._plane_hist_sub(key, plane, d_old)
        if d_new != d_old and old_keys:
            staying = old_keys & new_keys
            for key in staying:
                hist_sub(key, d_old)
                hist_add(key, d_new)
                if mirror:
                    self._plane_hist_sub(key, plane, d_old)
                    self._plane_hist_add(key, plane, d_new)
            affected |= staying
        for key in new_keys - old_keys:
            owners = by_key.get(key)
            if owners is None:
                by_key[key] = {client_id}
            else:
                owners.add(client_id)
            hist_add(key, d_new)
            if mirror:
                self._plane_hist_add(key, plane, d_new)
        if new_keys:
            self._by_client[client_id] = new_keys
        else:
            self._by_client.pop(client_id, None)
        return affected

    def revoke_client(self, client_id: str) -> Set[Key]:
        """Drop a (malicious) client's influence entirely."""
        affected = self.set_client_reports(client_id, [])
        self._plane_of.pop(client_id, None)
        return affected

    # -- queries ------------------------------------------------------------

    def stats(self, url: str, asn: int) -> VoteStats:
        """Incrementally-maintained s/n for one key (no reporter scan)."""
        key = (url, asn)
        reporters = self._by_key.get(key)
        if not reporters:
            return VoteStats(votes=0.0, reporters=0)
        return VoteStats(
            votes=_hist_votes(self._vote_hist.get(key, {})),
            reporters=len(reporters),
        )

    def recompute_stats(self, url: str, asn: int) -> VoteStats:
        """From-scratch reference for :meth:`stats` (the executable spec).

        Rebuilds the d-histogram by walking every reporter of the key;
        kept O(reporters) on purpose so property tests can assert the
        incremental path agrees exactly.
        """
        key = (url, asn)
        reporters = self._by_key.get(key, set())
        hist: Dict[int, int] = {}
        for client_id in reporters:
            d = len(self._by_client.get(client_id, ()))
            if d:
                hist[d] = hist.get(d, 0) + 1
        return VoteStats(votes=_hist_votes(hist), reporters=len(reporters))

    def stats_for_plane(self, url: str, asn: int, plane: str) -> VoteStats:
        """s/n restricted to reporters of one measurement plane."""
        key = (url, asn)
        if not self._planes_active:
            # Dormant ledger: every reporter is on the default plane.
            if plane == DEFAULT_PLANE:
                return self.stats(url, asn)
            return VoteStats(votes=0.0, reporters=0)
        hist = self._plane_hist.get(key, {}).get(plane)
        if not hist:
            return VoteStats(votes=0.0, reporters=0)
        return VoteStats(votes=_hist_votes(hist), reporters=sum(hist.values()))

    def plane_stats(self, url: str, asn: int) -> Dict[str, VoteStats]:
        """Per-plane s/n for one key — the provenance breakdown."""
        key = (url, asn)
        if not self._planes_active:
            reporters = self._by_key.get(key)
            if not reporters:
                return {}
            return {DEFAULT_PLANE: self.stats(url, asn)}
        return {
            plane: VoteStats(
                votes=_hist_votes(hist), reporters=sum(hist.values())
            )
            for plane, hist in sorted(self._plane_hist.get(key, {}).items())
        }

    def weighted_stats(
        self, url: str, asn: int, weights: Dict[str, float]
    ) -> VoteStats:
        """Fidelity-weighted s/n: Σ_p w_p·s_p and Σ_p w_p·n_p.

        The per-plane-aware confidence criterion — a coarse plane's
        votes and reporter head-count both count at its weight (planes
        missing from ``weights`` count at 1.0).  With every weight at
        1.0 this reproduces :meth:`stats` exactly (bucket partition),
        so the unweighted criterion is the degenerate case.
        """
        votes = 0.0
        reporters = 0.0
        for plane, stats in self.plane_stats(url, asn).items():
            weight = weights.get(plane, 1.0)
            votes += weight * stats.votes
            reporters += weight * stats.reporters
        return VoteStats(votes=votes, reporters=reporters)

    def recompute_plane_stats(self, url: str, asn: int, plane: str) -> VoteStats:
        """From-scratch reference for :meth:`stats_for_plane` (the
        executable spec): walk the key's reporters, keep those assigned
        to ``plane``, rebuild the histogram."""
        key = (url, asn)
        plane_of = self._plane_of
        hist: Dict[int, int] = {}
        reporters = 0
        for client_id in self._by_key.get(key, set()):
            if plane_of.get(client_id, DEFAULT_PLANE) != plane:
                continue
            reporters += 1
            d = len(self._by_client.get(client_id, ()))
            if d:
                hist[d] = hist.get(d, 0) + 1
        return VoteStats(votes=_hist_votes(hist), reporters=reporters)

    def reporters_for(self, url: str, asn: int) -> Set[str]:
        return set(self._by_key.get((url, asn), set()))

    def has_reporters(self, url: str, asn: int) -> bool:
        """Cheap existence check (no defensive copy)."""
        return bool(self._by_key.get((url, asn)))

    def client_count(self) -> int:
        return len(self._by_client)

    def clients(self) -> List[str]:
        return list(self._by_client)

    def reports_of(self, client_id: str) -> Set[Key]:
        """The (URL, AS) entries this client currently vouches for."""
        return set(self._by_client.get(client_id, set()))
