"""Two-phase block-page detection (§4.3.1).

Phase 1 inspects the direct-path response *alone*, using an HTML-tag
heuristic in the spirit of Jones et al. [42]: block pages are short and
carry either explicit blocking language, an iframe-only splice structure,
or a meta-refresh to a warning portal.  Tuned to be precise: a normal page
must never be flagged (the paper reports ~80 % recall with zero false
positives on a 47-ISP corpus) — false *negatives* are cheap because phase
2 cleans them up.

Phase 2 compares the direct response against the circumvented response for
the same URL: censors' block pages are far smaller than real content, so a
large size ratio flags the direct response as a block page (also [42]).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..simnet.http import HttpResponse

__all__ = ["BlockpageDetector", "phase1_looks_like_blockpage", "phase2_is_blockpage"]

# Explicit blocking language: precise phrases, not single common words.
_BLOCK_PHRASES = (
    "has been blocked",
    "is not accessible",
    "blocked by order",
    "access denied",
    "access to this site",
    "surf safely",
    "prohibited for viewership",
    "content that is prohibited",
    "restricted",
    "url blocked",
)

_IFRAME_ONLY_RE = re.compile(
    r"<body[^>]*>\s*<iframe[^>]*>\s*</iframe>\s*</body>", re.IGNORECASE
)
_META_REFRESH_RE = re.compile(
    r"<meta[^>]*http-equiv=[\"']refresh[\"'][^>]*url=http://(warning|block)\.",
    re.IGNORECASE,
)
_TITLE_RE = re.compile(r"<title[^>]*>(.*?)</title>", re.IGNORECASE | re.DOTALL)

_BLOCK_TITLES = ("access denied", "surf safely", "notice")

# Block pages are small; anything big is real content.
_MAX_BLOCKPAGE_BYTES = 4096


def phase1_looks_like_blockpage(html: str) -> bool:
    """Single-response heuristic; precise by construction."""
    if not html or len(html) > _MAX_BLOCKPAGE_BYTES:
        return False
    lowered = html.lower()
    if any(phrase in lowered for phrase in _BLOCK_PHRASES):
        return True
    if _IFRAME_ONLY_RE.search(html):
        return True
    if _META_REFRESH_RE.search(html):
        return True
    title_match = _TITLE_RE.search(html)
    if title_match:
        title = title_match.group(1).strip().lower()
        if any(marker in title for marker in _BLOCK_TITLES) and title:
            return True
    return False


def phase2_is_blockpage(
    direct_size: int, circumvented_size: int, ratio_threshold: float = 0.30
) -> bool:
    """Size-comparison check: direct response much smaller → block page."""
    if circumvented_size <= 0:
        return False
    return direct_size < ratio_threshold * circumvented_size


@dataclass
class BlockpageDetector:
    """Stateful wrapper tracking phase-1/phase-2 decisions."""

    ratio_threshold: float = 0.30
    phase1_hits: int = 0
    phase1_passes: int = 0
    phase2_hits: int = 0
    phase2_passes: int = 0

    def phase1(self, response: HttpResponse) -> bool:
        suspected = phase1_looks_like_blockpage(response.html)
        if suspected:
            self.phase1_hits += 1
        else:
            self.phase1_passes += 1
        return suspected

    def phase2(self, direct: HttpResponse, circumvented: HttpResponse) -> bool:
        is_block = phase2_is_blockpage(
            direct.size_bytes, circumvented.size_bytes, self.ratio_threshold
        )
        if is_block:
            self.phase2_hits += 1
        else:
            self.phase2_passes += 1
        return is_block
