"""Reputation-based identification of malicious reporters (§5).

The paper points to reputation systems (Wifi-Reports, Credence, Strength
in Numbers) as the next line of defence after vote normalization: flag
clients whose *behaviour* is distinctively malicious and revoke their
UUIDs.  This module implements the simple behavioural profile those
systems converge on:

- **volume**: how many blocked entries a client vouches for (spammers
  report orders of magnitude more than real users can browse);
- **corroboration**: the fraction of a client's entries that at least one
  *other* client also reports (honest users overlap with the crowd;
  fabricated URLs have no second witness);
- **clique similarity**: the maximum Jaccard similarity between this
  client's report set and any other client's (Sybil identities are run
  from one script and report near-identical sets).

A client is flagged when its volume is high AND either its corroboration
is low or it sits in a near-duplicate clique.  Flagged UUIDs can be
revoked, which removes their vote mass retroactively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, Set

from .globaldb import ServerDB

__all__ = ["ClientProfile", "ReputationAnalyzer"]


@dataclass(frozen=True)
class ClientProfile:
    """Behavioural summary of one reporter."""

    uuid: str
    volume: int
    corroboration: float  # fraction of entries with >= 1 other witness
    max_similarity: float  # Jaccard vs the closest other client

    def __repr__(self) -> str:
        return (
            f"ClientProfile({self.uuid[:8]}…, volume={self.volume}, "
            f"corroboration={self.corroboration:.2f}, "
            f"similarity={self.max_similarity:.2f})"
        )


def _jaccard(a: Set, b: Set) -> float:
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


class ReputationAnalyzer:
    """Offline analysis over the global database's voting ledger."""

    def __init__(self, server: ServerDB):
        self.server = server

    def profiles(self) -> Dict[str, ClientProfile]:
        ledger = self.server.voting
        clients = ledger.clients()
        report_sets = {uuid: ledger.reports_of(uuid) for uuid in clients}
        profiles = {}
        for uuid in clients:
            mine = report_sets[uuid]
            if mine:
                corroborated = sum(
                    1
                    for key in mine
                    if len(ledger.reporters_for(*key) - {uuid}) > 0
                )
                corroboration = corroborated / len(mine)
            else:
                corroboration = 1.0
            max_similarity = max(
                (
                    _jaccard(mine, report_sets[other])
                    for other in clients
                    if other != uuid
                ),
                default=0.0,
            )
            profiles[uuid] = ClientProfile(
                uuid=uuid,
                volume=len(mine),
                corroboration=corroboration,
                max_similarity=max_similarity,
            )
        return profiles

    def flag_suspects(
        self,
        min_volume: int = 30,
        max_corroboration: float = 0.2,
        clique_similarity: float = 0.9,
    ) -> AbstractSet[str]:
        """UUIDs whose behaviour is distinctively malicious.

        High-volume reporters are flagged when nobody corroborates them
        (lone fabricator) or when another identity mirrors them almost
        exactly (Sybil clique) — but a clique member with honest-looking
        corroboration still needs the volume to trip the filter, so
        ordinary users who happen to overlap are safe.
        """
        # Ordered dict-as-set: flag order follows the ledger's client
        # order, so enforce() revokes (and mutates server change logs)
        # in the same order on every same-seed run.
        flagged: Dict[str, None] = {}
        for uuid, profile in self.profiles().items():
            if profile.volume < min_volume:
                continue
            if profile.corroboration <= max_corroboration:
                flagged[uuid] = None
            elif profile.max_similarity >= clique_similarity:
                flagged[uuid] = None
        return flagged.keys()

    def enforce(self, **thresholds) -> AbstractSet[str]:
        """Flag and revoke; returns the revoked UUIDs."""
        suspects = self.flag_suspects(**thresholds)
        for uuid in suspects:
            self.server.revoke(uuid)
        return suspects
