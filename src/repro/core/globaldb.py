"""global_DB + server_DB: the crowdsourced measurement store (§4.2, §5).

The server assigns each registering client a UUID (a cryptographic hash of
the current server time — no PII, no IP addresses are ever stored),
accepts periodic reports of *blocked* URLs, maintains the voting ledger,
and serves per-AS blocked lists that clients pull periodically.

Registration is gated by a CAPTCHA (modeled as a solve-time cost paid by
the caller plus a pass/fail flag), rate-limiting mass creation of fake
identities.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..urlkit import normalize_url
from .records import BlockType
from .voting import VoteStats, VotingLedger

__all__ = ["ReportItem", "GlobalEntry", "RegistrationError", "ServerDB"]


class RegistrationError(Exception):
    """Registration rejected (failed CAPTCHA or unknown client)."""


@dataclass(frozen=True)
class ReportItem:
    """One blocked-URL measurement as uploaded by a client."""

    url: str
    asn: int
    stages: Tuple[BlockType, ...]
    measured_at: float  # T_m


@dataclass
class GlobalEntry:
    """One (URL, AS) row of the global database (Tables 3 + 4 fields)."""

    url: str
    asn: int
    stages: List[BlockType]
    measured_at: float  # T_m of the freshest report
    posted_at: float  # T_p
    last_uuid: str  # reporter of the freshest update
    first_measured_at: float = 0.0  # when the blocking was first observed

    @property
    def key(self) -> Tuple[str, int]:
        return (self.url, self.asn)


class ServerDB:
    """The measurement collection service (server_DB + global_DB)."""

    def __init__(self, entry_ttl: Optional[float] = 7 * 24 * 3600.0):
        self.entry_ttl = entry_ttl
        self._uuid_counter = itertools.count(1)
        self._clients: Dict[str, float] = {}  # uuid -> registered_at
        self._entries: Dict[Tuple[str, int], GlobalEntry] = {}
        self.voting = VotingLedger()
        self.update_count = 0  # total accepted updates (Table 7 row)
        self.rejected_registrations = 0

    # -- registration ---------------------------------------------------------

    def register(self, now: float, captcha_passed: bool = True) -> str:
        """Assign a UUID: a cryptographic hash of the current server time."""
        if not captcha_passed:
            self.rejected_registrations += 1
            raise RegistrationError("CAPTCHA failed")
        token = f"{now:.9f}/{next(self._uuid_counter)}"
        uuid = hashlib.sha256(token.encode()).hexdigest()[:32]
        self._clients[uuid] = now
        return uuid

    def is_registered(self, uuid: str) -> bool:
        return uuid in self._clients

    @property
    def client_count(self) -> int:
        return len(self._clients)

    # -- reporting --------------------------------------------------------------

    def post_update(self, uuid: str, reports: List[ReportItem], now: float) -> int:
        """Accept a client's batch of blocked-URL reports.

        Returns the number of accepted items.  The client's entire current
        vouch set is extended by these entries (votes are renormalized by
        the ledger).
        """
        if uuid not in self._clients:
            raise RegistrationError(f"unknown client: {uuid!r}")
        accepted = 0
        for item in reports:
            url = normalize_url(item.url)
            key = (url, item.asn)
            entry = self._entries.get(key)
            if entry is None:
                entry = GlobalEntry(
                    url=url,
                    asn=item.asn,
                    stages=list(item.stages),
                    measured_at=item.measured_at,
                    posted_at=now,
                    last_uuid=uuid,
                    first_measured_at=item.measured_at,
                )
                self._entries[key] = entry
            else:
                entry.posted_at = now
                entry.measured_at = max(entry.measured_at, item.measured_at)
                entry.last_uuid = uuid
                for stage in item.stages:
                    if stage not in entry.stages:
                        entry.stages.append(stage)
            accepted += 1
            self.update_count += 1
        if accepted:
            self.voting.add_client_reports(
                uuid, [(normalize_url(i.url), i.asn) for i in reports]
            )
        return accepted

    def post_dissent(self, uuid: str, url: str, asn: int, now: float) -> bool:
        """A client reports that a listed URL is *not* blocked for it.

        Validation by individual clients (§1, §5): the dissenting client's
        vouch for the entry is withdrawn; when no reporter is left, the
        entry disappears.  Dissent only ever removes the dissenting
        client's own vote — a malicious dissenter cannot erase an entry
        the honest crowd still vouches for.

        Returns True when the entry was dropped entirely.
        """
        if uuid not in self._clients:
            raise RegistrationError(f"unknown client: {uuid!r}")
        url = normalize_url(url)
        key = (url, asn)
        current = self.voting.reports_of(uuid)
        if key in current:
            current.discard(key)
            self.voting.set_client_reports(uuid, list(current))
        if not self.voting.reporters_for(url, asn):
            self._entries.pop(key, None)
            return True
        return False

    # -- queries ------------------------------------------------------------------

    def _fresh(self, entry: GlobalEntry, now: float) -> bool:
        if self.entry_ttl is None:
            return True
        return now - entry.posted_at <= self.entry_ttl

    def blocked_for_as(
        self,
        asn: int,
        now: float,
        min_reporters: int = 1,
        min_votes: float = 0.0,
    ) -> List[GlobalEntry]:
        """The blocked list a client on ``asn`` downloads.

        Entries failing the confidence criterion — too few reporters or
        too little vote mass — are withheld, bounding what false
        reporters can inject.
        """
        result = []
        for entry in self._entries.values():
            if entry.asn != asn or not self._fresh(entry, now):
                continue
            stats = self.voting.stats(entry.url, entry.asn)
            if stats.passes(min_reporters=min_reporters, min_votes=min_votes):
                result.append(entry)
        return result

    def stats_for(self, url: str, asn: int) -> VoteStats:
        return self.voting.stats(normalize_url(url), asn)

    def entry(self, url: str, asn: int) -> Optional[GlobalEntry]:
        return self._entries.get((normalize_url(url), asn))

    def all_entries(self) -> List[GlobalEntry]:
        return list(self._entries.values())

    def revoke(self, uuid: str) -> None:
        """Revoke a malicious client: drop identity and vote influence."""
        self._clients.pop(uuid, None)
        self.voting.revoke_client(uuid)
