"""global_DB + server_DB: the crowdsourced measurement store (§4.2, §5).

The server assigns each registering client a UUID (a cryptographic hash of
the current server time — no PII, no IP addresses are ever stored),
accepts periodic reports of *blocked* URLs, maintains the voting ledger,
and serves per-AS blocked lists that clients pull periodically.

Registration is gated by a CAPTCHA (modeled as a solve-time cost paid by
the caller plus a pass/fail flag), rate-limiting mass creation of fake
identities.

Storage is sharded per AS: every query a client issues is scoped to its
own AS (§5's pull protocol), so ``blocked_for_as`` touches only that AS's
rows.  Each shard carries a monotone version counter and a bounded
changed-URL log; :meth:`ServerDB.sync_for_as` serves an incremental diff
against a client-supplied ``since_version``, falling back to a full
snapshot on first pull or when the log has been truncated past the
client's version.  TTL expiry is applied at write/pull time through a
lazy-deletion heap (expired rows are *evicted* and logged as removals),
never by filtering every row on read.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from ..urlkit import normalize_url
from .records import BlockType, decode_stages, encode_stages
from .voting import DEFAULT_PLANE, VoteStats, VotingLedger

__all__ = [
    "ReportItem",
    "GlobalEntry",
    "RegistrationError",
    "ServerDB",
    "SyncResult",
    "SyncBatch",
    "SYNC_HEADER_BYTES",
]

#: Fixed per-pull wire overhead in the sync cost model: asn, version,
#: and flags.  An empty delta transfers exactly this many bytes — the
#: fleet layer charges the same constant for its empty pulls, so the
#: two accountings cannot drift.
SYNC_HEADER_BYTES = 24


class RegistrationError(Exception):
    """Registration rejected (failed CAPTCHA or unknown client)."""


@dataclass(frozen=True)
class ReportItem:
    """One blocked-URL measurement as uploaded by a client.

    ``plane`` is the measurement plane the report came through (see
    :mod:`repro.planes`): the provenance tag the server threads into
    per-plane vote statistics and entry bookkeeping.
    """

    url: str
    asn: int
    stages: Tuple[BlockType, ...]
    measured_at: float  # T_m
    plane: str = DEFAULT_PLANE


@dataclass
class GlobalEntry:
    """One (URL, AS) row of the global database (Tables 3 + 4 fields)."""

    url: str
    asn: int
    stages: List[BlockType]
    measured_at: float  # T_m of the freshest report
    posted_at: float  # T_p
    last_uuid: str  # reporter of the freshest update
    first_measured_at: float = 0.0  # when the blocking was first observed
    # Plane of the freshest report.  Excluded from equality so columnar
    # batches (which do not carry the tag on the wire) decode to entries
    # equal to the row-path spec's.
    last_plane: str = field(default=DEFAULT_PLANE, compare=False)

    @property
    def key(self) -> Tuple[str, int]:
        return (self.url, self.asn)


@dataclass(frozen=True)
class SyncResult:
    """What one pull transfers: a full snapshot or an incremental diff.

    ``entries`` holds every entry the client must (re)store; ``removed``
    the URLs it must drop (always empty on a full sync — the client
    replaces its view wholesale).  ``version`` is the shard version the
    client should present as ``since_version`` on its next pull.
    """

    asn: int
    version: int
    full: bool
    entries: List[GlobalEntry] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def transferred(self) -> int:
        """Rows on the wire — what delta sync is minimizing."""
        return len(self.entries) + len(self.removed)

    @property
    def wire_bytes(self) -> int:
        """Estimated bytes on the wire (same cost model as SyncBatch)."""
        total = SYNC_HEADER_BYTES
        for entry in self.entries:
            total += (
                len(entry.url) + 1 + 24  # three packed floats
                + 2  # stage code
                + len(entry.last_uuid)
            )
        for url in self.removed:
            total += len(url) + 1
        return total


@dataclass(frozen=True)
class SyncBatch:
    """One pull in the columnar wire format: parallel per-field tuples.

    Same information as :class:`SyncResult` — the row path remains the
    executable spec and the two produce bit-identical client state —
    but entries travel as parallel columns (url key, packed stage code,
    timestamps, reporter id) instead of per-row objects.  One batch is
    built in a single pass over the shard and can be shared by every
    client of the AS at the same ``since_version``, which is what the
    fleet cohort exploits.
    """

    asn: int
    version: int
    full: bool
    urls: Tuple[str, ...] = ()
    stage_codes: Tuple[int, ...] = ()  # encode_stages() nibble packs
    measured_at: Tuple[float, ...] = ()
    posted_at: Tuple[float, ...] = ()
    first_measured_at: Tuple[float, ...] = ()
    reporter_uuids: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()

    @property
    def transferred(self) -> int:
        return len(self.urls) + len(self.removed)

    @property
    def wire_bytes(self) -> int:
        """Estimated bytes on the wire: url/uuid strings plus packed
        numeric columns (8 bytes per float, 2 per stage code)."""
        total = SYNC_HEADER_BYTES
        total += sum(len(url) + 1 for url in self.urls)
        total += sum(len(uuid) for uuid in self.reporter_uuids)
        total += (3 * 8 + 2) * len(self.urls)
        total += sum(len(url) + 1 for url in self.removed)
        return total

    def entries(self) -> List[GlobalEntry]:
        """Materialize per-row objects (decode side of the spec tests)."""
        return [
            GlobalEntry(
                url=url,
                asn=self.asn,
                stages=decode_stages(code),
                measured_at=measured,
                posted_at=posted,
                last_uuid=uuid,
                first_measured_at=first,
            )
            for url, code, measured, posted, first, uuid in zip(
                self.urls,
                self.stage_codes,
                self.measured_at,
                self.posted_at,
                self.first_measured_at,
                self.reporter_uuids,
            )
        ]


class _AsShard:
    """One AS's slice of the global database.

    ``version`` increments on every visible change to the shard — entry
    added, refreshed, evicted, or its vote statistics moved — and ``log``
    records ``(version, url)`` per change.  The log is bounded: when it
    outgrows a small multiple of the live table, old rows are forgotten
    and ``floor`` rises; diffs are only answerable for ``since_version >=
    floor`` (older clients get a full snapshot).  ``expiry`` is a
    lazy-deletion min-heap of ``(posted_at, url)`` rows used for
    write-time TTL eviction: refreshed entries leave stale heap rows
    behind, skipped when popped because the entry's current ``posted_at``
    no longer matches.
    """

    __slots__ = ("entries", "version", "floor", "log", "expiry", "batch_cache")

    def __init__(self) -> None:
        self.entries: Dict[str, GlobalEntry] = {}
        self.version = 0
        self.floor = 0
        self.log: Deque[Tuple[int, str]] = deque()
        self.expiry: List[Tuple[float, str]] = []
        # Built SyncBatches keyed by (since_version, min_reporters,
        # min_votes), valid for the *current* shard version only: every
        # mutation funnels through mark_changed, which clears it.  A
        # fleet sweeping thousands of clients between server changes
        # pays batch construction once per distinct since-version.
        # Key: (since_version, min_reporters, min_votes) plus sorted
        # plane-weight items when the pull supplied a weighted criterion.
        self.batch_cache: Dict[Tuple, "SyncBatch"] = {}

    def mark_changed(self, url: str) -> None:
        self.version += 1
        if self.batch_cache:
            self.batch_cache.clear()
        self.log.append((self.version, url))
        limit = max(256, 4 * len(self.entries))
        while len(self.log) > limit:
            self.floor = self.log.popleft()[0]

    def touched_since(self, since_version: int) -> Set[str]:
        """URLs changed after ``since_version`` (caller checked >= floor)."""
        touched: Set[str] = set()
        for version, url in reversed(self.log):
            if version <= since_version:
                break
            touched.add(url)
        return touched


class ServerDB:
    """The measurement collection service (server_DB + global_DB)."""

    def __init__(self, entry_ttl: Optional[float] = 7 * 24 * 3600.0):
        self.entry_ttl = entry_ttl
        self._uuid_counter = itertools.count(1)
        self._clients: Dict[str, float] = {}  # uuid -> registered_at
        self._shards: Dict[int, _AsShard] = {}
        self.voting = VotingLedger()
        self.update_count = 0  # total accepted updates (Table 7 row)
        self.rejected_registrations = 0
        self.full_syncs_served = 0
        self.delta_syncs_served = 0
        # Measurement-plane provenance (DESIGN.md §13): identities and
        # accepted updates per plane.  Single-plane operation keeps one
        # bucket, DEFAULT_PLANE.
        self.clients_by_plane: Dict[str, int] = {}
        self.reports_by_plane: Dict[str, int] = {}

    def _shard(self, asn: int) -> _AsShard:
        shard = self._shards.get(asn)
        if shard is None:
            shard = self._shards[asn] = _AsShard()
        return shard

    # -- registration ---------------------------------------------------------

    def register(
        self,
        now: float,
        captcha_passed: bool = True,
        plane: str = DEFAULT_PLANE,
        captcha_gated: bool = True,
    ) -> str:
        """Assign a UUID: a cryptographic hash of the current server time.

        ``plane`` records which measurement plane the identity reports
        through; non-default planes flip the voting ledger into per-plane
        tracking.  ``captcha_gated=False`` models planes whose reporters
        are unwitting page visitors (Encore) — no CAPTCHA challenge is
        issued, so ``captcha_passed`` is not consulted and mass identity
        creation is *not* rate-limited (exactly the sybil exposure the
        per-plane vote weighting is there to bound).
        """
        if captcha_gated and not captcha_passed:
            self.rejected_registrations += 1
            raise RegistrationError("CAPTCHA failed")
        token = f"{now:.9f}/{next(self._uuid_counter)}"
        uuid = hashlib.sha256(token.encode()).hexdigest()[:32]
        self._clients[uuid] = now
        self.clients_by_plane[plane] = self.clients_by_plane.get(plane, 0) + 1
        if plane != DEFAULT_PLANE:
            self.voting.set_client_plane(uuid, plane)
        return uuid

    def is_registered(self, uuid: str) -> bool:
        return uuid in self._clients

    @property
    def client_count(self) -> int:
        return len(self._clients)

    # -- reporting --------------------------------------------------------------

    def post_update(self, uuid: str, reports: List[ReportItem], now: float) -> int:
        """Accept a client's batch of blocked-URL reports.

        Returns the number of accepted items.  The client's entire current
        vouch set is extended by these entries (votes are renormalized by
        the ledger).
        """
        if uuid not in self._clients:
            raise RegistrationError(f"unknown client: {uuid!r}")
        accepted = 0
        keys: List[Tuple[str, int]] = []
        shards_touched: Dict[int, _AsShard] = {}
        by_plane = self.reports_by_plane
        for item in reports:
            url = normalize_url(item.url)
            keys.append((url, item.asn))
            shard = self._shard(item.asn)
            shards_touched[item.asn] = shard
            entry = shard.entries.get(url)
            if entry is None:
                entry = GlobalEntry(
                    url=url,
                    asn=item.asn,
                    stages=list(item.stages),
                    measured_at=item.measured_at,
                    posted_at=now,
                    last_uuid=uuid,
                    first_measured_at=item.measured_at,
                    last_plane=item.plane,
                )
                shard.entries[url] = entry
            else:
                entry.posted_at = now
                entry.measured_at = max(entry.measured_at, item.measured_at)
                entry.last_uuid = uuid
                entry.last_plane = item.plane
                for stage in item.stages:
                    if stage not in entry.stages:
                        entry.stages.append(stage)
            shard.mark_changed(url)
            if self.entry_ttl is not None:
                heapq.heappush(shard.expiry, (now, url))
            accepted += 1
            self.update_count += 1
            by_plane[item.plane] = by_plane.get(item.plane, 0) + 1
        if accepted:
            affected = self.voting.add_client_reports(uuid, keys)
            self._mark_vote_changes(affected.difference(keys))
            # Write-time eviction: stale rows leave with this write.
            for shard in shards_touched.values():
                self._evict_expired(shard, now)
        return accepted

    def post_dissent(self, uuid: str, url: str, asn: int, now: float) -> bool:
        """A client reports that a listed URL is *not* blocked for it.

        Validation by individual clients (§1, §5): the dissenting client's
        vouch for the entry is withdrawn; when no reporter is left, the
        entry disappears.  Dissent only ever removes the dissenting
        client's own vote — a malicious dissenter cannot erase an entry
        the honest crowd still vouches for.

        Returns True when the entry was dropped entirely.
        """
        if uuid not in self._clients:
            raise RegistrationError(f"unknown client: {uuid!r}")
        url = normalize_url(url)
        key = (url, asn)
        current = self.voting.reports_of(uuid)
        if key in current:
            current.discard(key)
            affected = self.voting.set_client_reports(uuid, list(current))
            self._mark_vote_changes(affected)
        if not self.voting.has_reporters(url, asn):
            shard = self._shards.get(asn)
            if shard is not None and shard.entries.pop(url, None) is not None:
                shard.mark_changed(url)
            return True
        return False

    def _mark_vote_changes(self, keys: Iterable[Tuple[str, int]]) -> None:
        """Bump shard versions for entries whose vote statistics moved.

        A client growing its report list dilutes its vote on *every* key
        it vouches for, which can flip entries across a consumer's
        ``min_votes`` threshold — those entries must surface in the next
        delta even though nothing re-posted them.
        """
        for url, asn in keys:
            shard = self._shards.get(asn)
            if shard is not None and url in shard.entries:
                shard.mark_changed(url)

    # -- TTL eviction -------------------------------------------------------------

    def _evict_expired(self, shard: _AsShard, now: float) -> int:
        """Pop expired rows off the shard's expiry heap (lazy deletion)."""
        if self.entry_ttl is None:
            return 0
        horizon = now - self.entry_ttl
        expiry = shard.expiry
        dropped = 0
        while expiry and expiry[0][0] < horizon:
            posted_at, url = heapq.heappop(expiry)
            entry = shard.entries.get(url)
            # Exact float compare is intentional: this is stored-value
            # identity (the heap row's key vs the entry's current field),
            # not arithmetic on two independently-computed times.
            if entry is None or entry.posted_at != posted_at:  # csaw-lint: disable=CSL006
                continue  # refreshed since this heap row, or already gone
            del shard.entries[url]
            shard.mark_changed(url)
            dropped += 1
        return dropped

    # -- queries ------------------------------------------------------------------

    def _stats_fn(self, plane_weights: Optional[Dict[str, float]]):
        """The (url, asn) -> VoteStats the confidence criterion reads:
        plain aggregate stats, or fidelity-weighted per-plane sums when
        the consumer supplied ``plane_weights`` (DESIGN.md §13)."""
        if plane_weights is None:
            return self.voting.stats
        weighted = self.voting.weighted_stats

        def stats(url: str, asn: int) -> VoteStats:
            return weighted(url, asn, plane_weights)

        return stats

    def blocked_for_as(
        self,
        asn: int,
        now: float,
        min_reporters: int = 1,
        min_votes: float = 0.0,
        plane_weights: Optional[Dict[str, float]] = None,
    ) -> List[GlobalEntry]:
        """The blocked list a client on ``asn`` downloads.

        Entries failing the confidence criterion — too few reporters or
        too little vote mass — are withheld, bounding what false
        reporters can inject.  ``plane_weights`` switches the criterion
        to fidelity-weighted per-plane statistics (a coarse plane's
        reporters count at their weight); ``None`` is the unweighted
        single-plane criterion, untouched.  Only this AS's shard is
        touched; with the default (accept-all) criterion the pull is a
        straight copy of the shard, since every stored entry has at
        least one reporter by construction (posts add a vouch
        atomically, dissent/revocation drop orphaned entries).
        """
        shard = self._shards.get(asn)
        if shard is None:
            return []
        self._evict_expired(shard, now)
        if plane_weights is None and min_reporters <= 1 and min_votes <= 0.0:
            return list(shard.entries.values())
        stats = self._stats_fn(plane_weights)
        return [
            entry
            for entry in shard.entries.values()
            if stats(entry.url, asn).passes(min_reporters, min_votes)
        ]

    def sync_for_as(
        self,
        asn: int,
        now: float,
        since_version: Optional[int] = None,
        min_reporters: int = 1,
        min_votes: float = 0.0,
        plane_weights: Optional[Dict[str, float]] = None,
    ) -> SyncResult:
        """Serve one client pull, incrementally when possible.

        ``since_version=None`` (first pull), a version below the shard's
        log floor (log truncated), or a version from the future (stale
        client state, e.g. a server restart) all fall back to a full
        snapshot.  Otherwise only entries touched after ``since_version``
        travel: re-evaluated against the confidence criterion (weighted
        per plane when ``plane_weights`` is given), they land in
        ``entries`` (still listed) or ``removed`` (evicted, dissented
        away, or no longer passing the criterion).
        """
        shard = self._shards.get(asn)
        if shard is None:
            self.full_syncs_served += 1
            return SyncResult(asn=asn, version=0, full=True)
        self._evict_expired(shard, now)
        stale = (
            since_version is None
            or since_version < shard.floor
            or since_version > shard.version
        )
        if stale:
            self.full_syncs_served += 1
            return SyncResult(
                asn=asn,
                version=shard.version,
                full=True,
                entries=self.blocked_for_as(
                    asn,
                    now,
                    min_reporters=min_reporters,
                    min_votes=min_votes,
                    plane_weights=plane_weights,
                ),
            )
        self.delta_syncs_served += 1
        if since_version == shard.version:
            return SyncResult(asn=asn, version=shard.version, full=False)
        changed: List[GlobalEntry] = []
        removed: List[str] = []
        stats = self._stats_fn(plane_weights)
        for url in shard.touched_since(since_version):
            entry = shard.entries.get(url)
            if entry is not None and stats(url, asn).passes(
                min_reporters, min_votes
            ):
                changed.append(entry)
            else:
                removed.append(url)
        return SyncResult(
            asn=asn,
            version=shard.version,
            full=False,
            entries=changed,
            removed=removed,
        )

    def sync_batch_for_as(
        self,
        asn: int,
        now: float,
        since_version: Optional[int] = None,
        min_reporters: int = 1,
        min_votes: float = 0.0,
        plane_weights: Optional[Dict[str, float]] = None,
    ) -> SyncBatch:
        """:meth:`sync_for_as` in the columnar wire format.

        Serves the same full/delta decision and the same rows, but as
        parallel per-field tuples built in columnar passes over the
        shard — no intermediate per-row objects.  ``sync_for_as``
        remains the executable spec; the property tests assert both
        paths yield bit-identical client state.

        Built batches are cached on the shard keyed by ``(since,
        criterion)`` — the criterion including the sorted plane-weight
        items when a weighted pull asked for them — and invalidated by
        any shard change, so serving a whole cohort between changes
        constructs each distinct batch once (the serve counters still
        count every pull).
        """
        shard = self._shards.get(asn)
        if shard is None:
            self.full_syncs_served += 1
            return SyncBatch(asn=asn, version=0, full=True)
        self._evict_expired(shard, now)
        stale = (
            since_version is None
            or since_version < shard.floor
            or since_version > shard.version
        )
        if stale:
            self.full_syncs_served += 1
            since_key: Optional[int] = None
        else:
            self.delta_syncs_served += 1
            if since_version == shard.version:
                return SyncBatch(asn=asn, version=shard.version, full=False)
            since_key = since_version
        if plane_weights is None:
            key: Tuple = (since_key, min_reporters, min_votes)
        else:
            key = (
                since_key,
                min_reporters,
                min_votes,
                tuple(sorted(plane_weights.items())),
            )
        cache = shard.batch_cache
        batch = cache.get(key)
        if batch is None:
            batch = self._build_batch(
                shard, asn, since_key, min_reporters, min_votes, plane_weights
            )
            if len(cache) >= 128:  # bound stragglers between changes
                cache.clear()
            cache[key] = batch
        return batch

    def _build_batch(
        self,
        shard: _AsShard,
        asn: int,
        since_version: Optional[int],
        min_reporters: int,
        min_votes: float,
        plane_weights: Optional[Dict[str, float]] = None,
    ) -> SyncBatch:
        """Construct one columnar batch (cache-miss path).

        ``since_version`` is ``None`` for a full snapshot; otherwise a
        delta strictly between the shard's floor and current version.
        Columns are built by per-field passes over the selected rows —
        C-speed comprehensions instead of six appends per row.
        """
        stats = self._stats_fn(plane_weights)
        check_votes = (
            min_reporters > 1 or min_votes > 0.0 or plane_weights is not None
        )
        entries = shard.entries
        removed: List[str] = []
        if since_version is None:
            if check_votes:
                rows = [
                    entry
                    for url, entry in entries.items()
                    if stats(url, asn).passes(min_reporters, min_votes)
                ]
                urls = tuple(entry.url for entry in rows)
            else:
                rows = list(entries.values())
                urls = tuple(entries)
        else:
            rows = []
            for url in shard.touched_since(since_version):
                entry = entries.get(url)
                if entry is not None and stats(url, asn).passes(
                    min_reporters, min_votes
                ):
                    rows.append(entry)
                else:
                    removed.append(url)
            urls = tuple(entry.url for entry in rows)
        return SyncBatch(
            asn=asn,
            version=shard.version,
            full=since_version is None,
            urls=urls,
            stage_codes=tuple(encode_stages(entry.stages) for entry in rows),
            measured_at=tuple(entry.measured_at for entry in rows),
            posted_at=tuple(entry.posted_at for entry in rows),
            first_measured_at=tuple(
                entry.first_measured_at for entry in rows
            ),
            reporter_uuids=tuple(entry.last_uuid for entry in rows),
            removed=tuple(removed),
        )

    def version_for_as(self, asn: int) -> int:
        shard = self._shards.get(asn)
        return shard.version if shard is not None else 0

    def stats_for(self, url: str, asn: int) -> VoteStats:
        return self.voting.stats(normalize_url(url), asn)

    def plane_stats_for(self, url: str, asn: int) -> Dict[str, VoteStats]:
        """Per-plane provenance breakdown of one entry's vote statistics."""
        return self.voting.plane_stats(normalize_url(url), asn)

    def entry(self, url: str, asn: int) -> Optional[GlobalEntry]:
        shard = self._shards.get(asn)
        if shard is None:
            return None
        return shard.entries.get(normalize_url(url))

    def all_entries(self) -> List[GlobalEntry]:
        return [
            entry
            for shard in self._shards.values()
            for entry in shard.entries.values()
        ]

    @property
    def entry_count(self) -> int:
        return sum(len(shard.entries) for shard in self._shards.values())

    def shard_sizes(self) -> Dict[int, int]:
        """Per-AS row counts (capacity-planning view for the operators)."""
        return {asn: len(shard.entries) for asn, shard in self._shards.items()}

    def revoke(self, uuid: str) -> None:
        """Revoke a malicious client: drop identity and vote influence.

        Entries only the revoked client vouched for are evicted outright,
        so they surface in the removal half of every consumer's next
        delta; entries with surviving reporters just get their statistics
        bumped (their vote mass shrank).
        """
        self._clients.pop(uuid, None)
        affected = self.voting.revoke_client(uuid)
        for url, asn in affected:
            shard = self._shards.get(asn)
            if shard is None or url not in shard.entries:
                continue
            if not self.voting.has_reporters(url, asn):
                del shard.entries[url]
            shard.mark_changed(url)
