"""The measurement module: Algorithm 1 plus redundancy and 2-phase serving.

Per user request for a URL, :meth:`MeasurementModule.handle_request`
spawns one :class:`~repro.core.session.MeasurementSession` which drives
the flow the local_DB dictates:

- ``not-measured`` (not in the local_DB, not in the global view): issue
  *redundant requests* — one on the direct path (running the Figure-4
  detection flowchart) and, in parallel mode, ``k-1`` copies through a
  circumvention path.  The user gets the first usable response: the
  direct one if phase-1 says it is not a block page, else the
  circumvented one.  Phase 2 (size comparison) runs once both responses
  exist; a phase-1 false negative is corrected by a page refresh.
- ``blocked``: circumvent with the approach the circumvention module
  picks; with probability *p* also probe the direct path (false-report
  resilience + Blocked→Unblocked churn detection).  Local fixes measure
  the direct path implicitly and skip the probe.
- ``not-blocked``: direct path only (*selective redundancy*) — but the
  direct fetch is itself a measurement, so Unblocked→Blocked churn is
  caught and recovered via circumvention on the spot.

``handle_request`` returns as soon as content is served; measurement
bookkeeping continues in a background process (exposed as
``ServedResponse.measurement_process`` so experiments can join on it).
Every response carries the session's full stage trace
(``ServedResponse.trace``); the module aggregates per-stage durations
into ``stage_seconds`` — the PLT breakdown ``CSawClient.stats()`` and
the pilot report surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..circumvent.base import FetchResult, Transport
from ..simnet.flow import FlowContext
from ..simnet.world import World
from .blockpage import BlockpageDetector
from .circumvention import CircumventionModule
from .config import CSawConfig
from .detection import DetectionOutcome, measure_direct_path
from .localdb import LocalDatabase
from .records import BlockStatus, BlockType
from .reporting import GlobalView
from .session import MeasurementSession
from .taxonomy import failure_class
from .trace import SessionTrace, TraceMode

__all__ = ["ServedResponse", "MeasurementModule"]


@dataclass
class ServedResponse:
    """What the user got, when, and what the measurement concluded.

    Created at serve time; the background measurement process may update
    ``status``/``stages``/``corrected*`` afterwards — join on
    ``measurement_process`` before reading them in experiments.
    """

    url: str
    plt: float  # user-perceived time until first content
    served: Optional[FetchResult]
    path: str  # "direct" or the circumvention approach used
    status: BlockStatus = BlockStatus.NOT_MEASURED
    stages: List[BlockType] = field(default_factory=list)
    detection: Optional[DetectionOutcome] = None
    corrected: bool = False  # phase-1 false negative fixed by page refresh
    corrected_plt: Optional[float] = None
    probe_ran: bool = False
    measurement_process: Optional[object] = None
    trace: Optional[SessionTrace] = None  # full session stage trace

    @property
    def ok(self) -> bool:
        return self.served is not None and self.served.ok

    @property
    def effective_plt(self) -> float:
        """PLT including the refresh when the first render was a block page."""
        return self.corrected_plt if self.corrected else self.plt


from . import session as _session_module

_session_module.ServedResponse = ServedResponse


class MeasurementModule:
    """Algorithm 1, wired to the local_DB, global view, and circumvention."""

    def __init__(
        self,
        world: World,
        ctx: FlowContext,
        local_db: LocalDatabase,
        circumvention: CircumventionModule,
        global_view: Optional[GlobalView] = None,
        detector: Optional[BlockpageDetector] = None,
        config: Optional[CSawConfig] = None,
        rng_stream: str = "measurement",
    ):
        self.world = world
        self.ctx = ctx
        self.local_db = local_db
        self.circumvention = circumvention
        # Note: `or` would discard a shared-but-empty view (GlobalView
        # defines __len__, so an empty one is falsy).
        self.global_view = global_view if global_view is not None else GlobalView()
        self.config = config or CSawConfig()
        self.detector = detector or BlockpageDetector(
            ratio_threshold=self.config.blockpage_ratio_threshold
        )
        self.rng = world.rngs.stream(rng_stream)
        # Trace-mode policy, resolved once so per-session setup is a few
        # attribute loads.  Sampling draws come from a dedicated
        # per-client stream (never shared with measurement decisions), so
        # switching trace modes cannot perturb verdicts or schedules.
        self.trace_mode = TraceMode.parse(self.config.trace_mode)
        self.trace_ring = (
            self.config.trace_ring_size
            if self.trace_mode is TraceMode.RING
            else None
        )
        if self.trace_mode is TraceMode.SAMPLED:
            self.trace_rng = world.rngs.stream(rng_stream + "/trace-sampling")
            self.trace_scale = 1.0 / self.config.trace_sample_rate
        else:
            self.trace_rng = None
            self.trace_scale = 1.0
        self.sessions_traced = 0
        self.requests_handled = 0
        self.probes_launched = 0
        # Data-usage accounting (§8: redundancy costs data, a concern in
        # developing regions).  ``redundant_bytes`` counts circumvention
        # bytes fetched for URLs the direct path served fine.
        self.bytes_by_path: dict = {}
        self.redundant_bytes = 0
        # Per-stage PLT decomposition, summed over finished sessions
        # (insertion-ordered by first completion — deterministic).
        self.stage_seconds: Dict[str, float] = {}
        self.sessions_completed = 0
        # Optional MultihomingManager; when set, measurements are pinned to
        # the stricter observation on multihomed networks (§4.4).
        self.multihoming = None

    def _record(
        self, url: str, status: BlockStatus, stages: List[BlockType]
    ) -> None:
        if self.multihoming is not None:
            status, stages = self.multihoming.adjust_measurement(
                self.local_db, url, status, stages
            )
        self.local_db.record_measurement(url, status, stages)

    # -- public entry point ----------------------------------------------------

    def handle_request(
        self,
        url: str,
        ctx: Optional[FlowContext] = None,
        method: str = "GET",
    ) -> Generator:
        """Process: serve ``url``; returns a :class:`ServedResponse`.

        Returns at serve time; measurement continues in the background.
        POST requests are never duplicated (footnote 7: redundant copies
        would cause multiple writes), so they run serially and skip the
        probabilistic direct-path probe.
        """
        env = self.world.env
        ctx = ctx or self.ctx
        if method not in ("GET", "POST"):
            raise ValueError(f"unsupported method: {method!r}")
        self.requests_handled += 1
        session = MeasurementSession(
            self, ctx, url, duplicable=method == "GET"
        )
        worker = env.process(session.run())
        response = yield session.served_event
        response.measurement_process = worker
        return response

    def new_session(
        self,
        url: str,
        ctx: Optional[FlowContext] = None,
        duplicable: bool = True,
    ) -> MeasurementSession:
        """Build a session without starting it — callers that need the
        trace bus (subscribe/cancel/deadline hooks) before the first
        event fires use this, then ``env.process(session.run())``."""
        return MeasurementSession(
            self, ctx or self.ctx, url, duplicable=duplicable
        )

    def absorb_trace(self, trace: SessionTrace) -> None:
        """Fold one finished session's per-stage durations into the
        module-level PLT breakdown.

        In sampled mode each recorded session stands for ``1/p`` of the
        population, so its durations are scaled by ``trace_scale`` —
        ``stage_seconds`` stays an estimate of the *full* deployment's
        breakdown no matter the mode.
        """
        if trace.enabled and len(trace):
            scale = self.trace_scale
            for stage, seconds in trace.stage_durations().items():
                self.stage_seconds[stage] = (
                    self.stage_seconds.get(stage, 0.0) + seconds * scale
                )
            self.sessions_traced += 1
        self.sessions_completed += 1

    # -- plumbing (shared by the session flows) --------------------------------

    def _serve(self, served_event, response: ServedResponse) -> ServedResponse:
        if not served_event.triggered:
            served_event.succeed(response)
        return response

    def _with_load(self, ctx: FlowContext, gen: Generator) -> Generator:
        """Run a fetch under the client load tracker (redundancy cost)."""
        ctx.load.enter()
        try:
            result = yield from gen
        finally:
            ctx.load.exit()
        return result

    def _count_bytes(self, path: str, size: int) -> None:
        self.bytes_by_path[path] = self.bytes_by_path.get(path, 0) + size

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_path.values())

    def _fetch_via(
        self,
        ctx: FlowContext,
        url: str,
        transport: Transport,
        trace: Optional[SessionTrace] = None,
    ) -> Generator:
        # Load tracking is inlined (not via _with_load) so the fetch
        # pipeline sits one generator frame shallower — every simnet
        # event resume walks the whole yield-from chain.  A disabled
        # trace skips the traced_fetch wrapper frame too, for the same
        # reason.
        ctx.load.enter()
        try:
            if trace is None or not trace.enabled:
                result = yield from transport.fetch(self.world, ctx, url)
            else:
                result = yield from transport.traced_fetch(
                    self.world, ctx, url, trace=trace
                )
        finally:
            ctx.load.exit()
        if result.ok:
            self.circumvention.record_plt(transport.name, url, result.elapsed)
            self._count_bytes(transport.name, result.response.size_bytes)
        return result

    def _measure_direct(
        self,
        ctx: FlowContext,
        url: str,
        first_byte=None,
        trace: Optional[SessionTrace] = None,
    ) -> Generator:
        ctx.load.enter()
        try:
            outcome = yield from measure_direct_path(
                self.world, ctx, url, self.detector,
                first_byte=first_byte, trace=trace,
            )
        finally:
            ctx.load.exit()
        if outcome.response is not None:
            self._count_bytes("direct", outcome.response.size_bytes)
        return outcome

    @staticmethod
    def _detection_as_fetch(outcome: DetectionOutcome) -> FetchResult:
        return FetchResult(
            url=outcome.url,
            transport="direct",
            started=outcome.started,
            finished=outcome.finished,
            response=outcome.response,
            error=outcome.error,
            failure_stage=(
                failure_class(outcome.error) if outcome.error else None
            ),
        )
