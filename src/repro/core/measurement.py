"""The measurement module: Algorithm 1 plus redundancy and 2-phase serving.

Per user request for a URL:

- ``not-measured`` (not in the local_DB, not in the global view): issue
  *redundant requests* — one on the direct path (running the Figure-4
  detection flowchart) and, in parallel mode, ``k-1`` copies through a
  circumvention path.  The user gets the first usable response: the
  direct one if phase-1 says it is not a block page, else the
  circumvented one.  Phase 2 (size comparison) runs once both responses
  exist; a phase-1 false negative is corrected by a page refresh.
- ``blocked``: circumvent with the approach the circumvention module
  picks; with probability *p* also probe the direct path (false-report
  resilience + Blocked→Unblocked churn detection).  Local fixes measure
  the direct path implicitly and skip the probe.
- ``not-blocked``: direct path only (*selective redundancy*) — but the
  direct fetch is itself a measurement, so Unblocked→Blocked churn is
  caught and recovered via circumvention on the spot.

``handle_request`` returns as soon as content is served; measurement
bookkeeping continues in a background process (exposed as
``ServedResponse.measurement_process`` so experiments can join on it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..circumvent.base import FetchResult, Transport, classify_failure
from ..simnet.dns import DnsTimeout, NxDomain, Refused, ServFail
from ..simnet.flow import FlowContext
from ..simnet.http import HttpTimeout
from ..simnet.ipaddr import is_private
from ..simnet.tcp import ConnectionReset, ConnectTimeout, TcpError
from ..simnet.tls import TlsReset, TlsTimeout
from ..simnet.world import World
from .blockpage import BlockpageDetector
from .circumvention import CircumventionModule
from .config import CSawConfig
from .detection import DetectionOutcome, measure_direct_path
from .localdb import LocalDatabase
from .records import BlockStatus, BlockType
from .reporting import GlobalView

__all__ = ["ServedResponse", "MeasurementModule"]


@dataclass
class ServedResponse:
    """What the user got, when, and what the measurement concluded.

    Created at serve time; the background measurement process may update
    ``status``/``stages``/``corrected*`` afterwards — join on
    ``measurement_process`` before reading them in experiments.
    """

    url: str
    plt: float  # user-perceived time until first content
    served: Optional[FetchResult]
    path: str  # "direct" or the circumvention approach used
    status: BlockStatus = BlockStatus.NOT_MEASURED
    stages: List[BlockType] = field(default_factory=list)
    detection: Optional[DetectionOutcome] = None
    corrected: bool = False  # phase-1 false negative fixed by page refresh
    corrected_plt: Optional[float] = None
    probe_ran: bool = False
    measurement_process: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.served is not None and self.served.ok

    @property
    def effective_plt(self) -> float:
        """PLT including the refresh when the first render was a block page."""
        return self.corrected_plt if self.corrected else self.plt


def _failure_block_type(error: Exception) -> Optional[BlockType]:
    """Map a transport failure to the blocking symptom it suggests."""
    mapping = [
        (DnsTimeout, BlockType.DNS_TIMEOUT),
        (NxDomain, BlockType.DNS_NXDOMAIN),
        (ServFail, BlockType.DNS_SERVFAIL),
        (Refused, BlockType.DNS_REFUSED),
        (ConnectTimeout, BlockType.IP_TIMEOUT),
        (ConnectionReset, BlockType.IP_RST),
        (TlsTimeout, BlockType.SNI_TIMEOUT),
        (TlsReset, BlockType.SNI_RST),
        (HttpTimeout, BlockType.HTTP_TIMEOUT),
    ]
    for cls, block_type in mapping:
        if isinstance(error, cls):
            return block_type
    return None


class MeasurementModule:
    """Algorithm 1, wired to the local_DB, global view, and circumvention."""

    def __init__(
        self,
        world: World,
        ctx: FlowContext,
        local_db: LocalDatabase,
        circumvention: CircumventionModule,
        global_view: Optional[GlobalView] = None,
        detector: Optional[BlockpageDetector] = None,
        config: Optional[CSawConfig] = None,
        rng_stream: str = "measurement",
    ):
        self.world = world
        self.ctx = ctx
        self.local_db = local_db
        self.circumvention = circumvention
        # Note: `or` would discard a shared-but-empty view (GlobalView
        # defines __len__, so an empty one is falsy).
        self.global_view = global_view if global_view is not None else GlobalView()
        self.config = config or CSawConfig()
        self.detector = detector or BlockpageDetector(
            ratio_threshold=self.config.blockpage_ratio_threshold
        )
        self.rng = world.rngs.stream(rng_stream)
        self.requests_handled = 0
        self.probes_launched = 0
        # Data-usage accounting (§8: redundancy costs data, a concern in
        # developing regions).  ``redundant_bytes`` counts circumvention
        # bytes fetched for URLs the direct path served fine.
        self.bytes_by_path: dict = {}
        self.redundant_bytes = 0
        # Optional MultihomingManager; when set, measurements are pinned to
        # the stricter observation on multihomed networks (§4.4).
        self.multihoming = None

    def _record(
        self, url: str, status: BlockStatus, stages: List[BlockType]
    ) -> None:
        if self.multihoming is not None:
            status, stages = self.multihoming.adjust_measurement(
                self.local_db, url, status, stages
            )
        self.local_db.record_measurement(url, status, stages)

    # -- public entry point ----------------------------------------------------

    def handle_request(
        self,
        url: str,
        ctx: Optional[FlowContext] = None,
        method: str = "GET",
    ) -> Generator:
        """Process: serve ``url``; returns a :class:`ServedResponse`.

        Returns at serve time; measurement continues in the background.
        POST requests are never duplicated (footnote 7: redundant copies
        would cause multiple writes), so they run serially and skip the
        probabilistic direct-path probe.
        """
        env = self.world.env
        ctx = ctx or self.ctx
        if method not in ("GET", "POST"):
            raise ValueError(f"unsupported method: {method!r}")
        self.requests_handled += 1
        served_event = env.event()
        worker = env.process(
            self._dispatch(ctx, url, served_event, duplicable=method == "GET")
        )
        response = yield served_event
        response.measurement_process = worker
        return response

    # -- dispatch per Algorithm 1 ------------------------------------------------

    def _dispatch(
        self, ctx: FlowContext, url: str, served, duplicable: bool = True
    ) -> Generator:
        status, record = self.local_db.lookup(url)
        if status is BlockStatus.NOT_MEASURED:
            entry = self.global_view.lookup(url)
            if entry is not None:
                result = yield from self._blocked_flow(
                    ctx, url, list(entry.stages), served,
                    from_global=True, duplicable=duplicable,
                )
            else:
                result = yield from self._unknown_flow(
                    ctx, url, served, duplicable=duplicable
                )
        elif status is BlockStatus.BLOCKED:
            result = yield from self._blocked_flow(
                ctx, url, list(record.stages), served, duplicable=duplicable
            )
        else:
            result = yield from self._unblocked_flow(ctx, url, served)
        return result

    # -- plumbing -----------------------------------------------------------------

    def _serve(self, served_event, response: ServedResponse) -> ServedResponse:
        if not served_event.triggered:
            served_event.succeed(response)
        return response

    def _with_load(self, ctx: FlowContext, gen: Generator) -> Generator:
        """Run a fetch under the client load tracker (redundancy cost)."""
        ctx.load.enter()
        try:
            result = yield from gen
        finally:
            ctx.load.exit()
        return result

    def _count_bytes(self, path: str, size: int) -> None:
        self.bytes_by_path[path] = self.bytes_by_path.get(path, 0) + size

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_path.values())

    def _fetch_via(
        self, ctx: FlowContext, url: str, transport: Transport
    ) -> Generator:
        result = yield from self._with_load(
            ctx, transport.fetch(self.world, ctx, url)
        )
        if result.ok:
            self.circumvention.record_plt(transport.name, url, result.elapsed)
            self._count_bytes(transport.name, result.response.size_bytes)
        return result

    def _measure_direct(
        self, ctx: FlowContext, url: str, first_byte=None
    ) -> Generator:
        outcome = yield from self._with_load(
            ctx,
            measure_direct_path(
                self.world, ctx, url, self.detector, first_byte=first_byte
            ),
        )
        if outcome.response is not None:
            self._count_bytes("direct", outcome.response.size_bytes)
        return outcome

    @staticmethod
    def _detection_as_fetch(outcome: DetectionOutcome) -> FetchResult:
        return FetchResult(
            url=outcome.url,
            transport="direct",
            started=outcome.started,
            finished=outcome.finished,
            response=outcome.response,
            error=outcome.error,
            failure_stage=(
                classify_failure(outcome.error) if outcome.error else None
            ),
        )

    # -- not-measured: redundant requests -----------------------------------------

    def _unknown_flow(
        self, ctx: FlowContext, url: str, served, duplicable: bool = True
    ) -> Generator:
        env = self.world.env
        t0 = env.now
        config = self.config
        relay = self.circumvention.relay_for(url)

        first_byte = env.event()
        direct_proc = env.process(
            self._measure_direct(ctx, url, first_byte=first_byte)
        )
        circ_procs: List = []

        want_parallel = (
            duplicable
            and config.redundancy_mode == "parallel"
            and relay is not None
            and config.max_redundant_requests >= 2
        )
        if want_parallel and config.redundant_delay > 0:
            # Stagger the duplicate; skip it when the direct path starts
            # answering within the delay (footnote 10: "if we get a
            # response from the direct path within 2s, we do not send a
            # request on Tor").
            yield env.any_of(
                [direct_proc, first_byte, env.timeout(config.redundant_delay)]
            )
            if direct_proc.processed or first_byte.triggered:
                want_parallel = False
        if want_parallel and not direct_proc.processed:
            circ_procs = [
                env.process(self._fetch_via(ctx, url, relay))
                for _ in range(config.max_redundant_requests - 1)
            ]

        outcome: Optional[DetectionOutcome] = None
        circ_results: List[FetchResult] = []
        response: Optional[ServedResponse] = None
        circ_started = bool(circ_procs)

        def circ_success() -> Optional[FetchResult]:
            for result in circ_results:
                if result.ok:
                    return result
            return None

        def try_serve() -> None:
            nonlocal response
            if response is not None:
                return
            if (
                outcome is not None
                and outcome.status is BlockStatus.NOT_BLOCKED
                and not outcome.suspected_blockpage
                and outcome.response is not None
            ):
                response = self._serve(
                    served,
                    ServedResponse(
                        url=url,
                        plt=env.now - t0,
                        served=self._detection_as_fetch(outcome),
                        path="direct",
                        detection=outcome,
                    ),
                )
                return
            winner = circ_success()
            if winner is not None and (
                outcome is None
                or outcome.blocked
                or outcome.suspected_blockpage
            ):
                response = self._serve(
                    served,
                    ServedResponse(
                        url=url,
                        plt=env.now - t0,
                        served=winner,
                        path=winner.transport,
                        detection=outcome,
                    ),
                )

        # Ordered dict-as-set: any_of registers callbacks in iteration
        # order, so hash-ordered sets here would leak into event order.
        pending = {p: None for p in [direct_proc, *circ_procs] if not p.processed}
        if direct_proc.processed:
            outcome = direct_proc.value
        try_serve()

        while pending:
            fired = yield env.any_of(list(pending))
            for event in fired:
                pending.pop(event, None)
                if event is direct_proc:
                    outcome = event.value
                else:
                    circ_results.append(event.value)
            # Direct path classified as blocked/suspect and no duplicate in
            # flight: launch circumvention now (serial mode, k=1, or the
            # stagger timer having skipped the duplicate).
            if (
                outcome is not None
                and not circ_started
                and (outcome.blocked or outcome.suspected_blockpage)
            ):
                transport = self.circumvention.choose(url, outcome.stages)
                if transport is not None:
                    proc = env.process(self._fetch_via(ctx, url, transport))
                    pending[proc] = None
                    circ_started = True
            try_serve()

        return self._finalize_unknown(
            ctx, url, t0, served, outcome, circ_results, response
        )

    def _finalize_unknown(
        self,
        ctx: FlowContext,
        url: str,
        t0: float,
        served,
        outcome: Optional[DetectionOutcome],
        circ_results: List[FetchResult],
        response: Optional[ServedResponse],
    ) -> ServedResponse:
        env = self.world.env
        stages = list(outcome.stages) if outcome else []
        comparator = next((r for r in circ_results if r.ok), None)

        if outcome is None:
            status = BlockStatus.NOT_MEASURED
        elif outcome.suspected_blockpage:
            status = BlockStatus.BLOCKED
            if comparator is not None and not self.detector.phase2(
                outcome.response, comparator.response
            ):
                # Phase-1 false positive: sizes match, the page is real.
                status = BlockStatus.NOT_BLOCKED
                if BlockType.BLOCK_PAGE in stages:
                    stages.remove(BlockType.BLOCK_PAGE)
        elif outcome.status is BlockStatus.NOT_BLOCKED and outcome.response is not None:
            status = BlockStatus.NOT_BLOCKED
            if comparator is not None and self.detector.phase2(
                outcome.response, comparator.response
            ):
                # Phase-1 false negative: the served page was a block page.
                # Correct it by refreshing with the circumvented content.
                status = BlockStatus.BLOCKED
                stages.append(BlockType.BLOCK_PAGE)
                if response is not None and response.path == "direct":
                    response.corrected = True
                    response.corrected_plt = env.now - t0
                    response.served = comparator
                    response.path = comparator.transport
        else:
            status = outcome.status

        if response is None:
            # Nothing servable arrived (direct failed, circumvention failed
            # or unavailable): serve the direct-path failure.
            fetch = self._detection_as_fetch(outcome) if outcome else None
            response = self._serve(
                served,
                ServedResponse(
                    url=url,
                    plt=env.now - t0,
                    served=fetch,
                    path="direct",
                    detection=outcome,
                ),
            )

        if status is not BlockStatus.NOT_MEASURED:
            self._record(url, status, stages)
        if status is BlockStatus.NOT_BLOCKED:
            # The duplicates were pure overhead (§8 data-usage concern).
            self.redundant_bytes += sum(
                r.response.size_bytes for r in circ_results if r.ok
            )
        response.status = status
        response.stages = stages
        return response

    # -- blocked: circumvent (+ probabilistic direct probe) -------------------------

    def _blocked_flow(
        self,
        ctx: FlowContext,
        url: str,
        stages: List[BlockType],
        served,
        from_global: bool = False,
        duplicable: bool = True,
    ) -> Generator:
        env = self.world.env
        t0 = env.now
        transport = self.circumvention.choose(url, stages)
        if transport is None:
            # No circumvention available at all: degenerate to direct.
            result = yield from self._unblocked_flow(ctx, url, served)
            return result

        # Local fixes ride the direct path, which measures it implicitly;
        # relay approaches probe the direct path with probability p.
        probe_proc = None
        if duplicable and not transport.is_local_fix and self.rng.random() < self.config.probe_probability:
            probe_proc = env.process(self._measure_direct(ctx, url))
            self.probes_launched += 1

        result = yield env.process(self._fetch_via(ctx, url, transport))

        if result.failed:
            # The chosen approach stopped working (fix defeated or relay
            # blocked).  Merge the fresh symptom and fall back to a relay.
            if transport.is_local_fix:
                self.circumvention.mark_fix_failed(url, transport.name)
            symptom = _failure_block_type(result.error) if result.error else None
            if (
                isinstance(result.error, TcpError)
                and is_private(result.error.dst_ip)
            ):
                # Dead connect into private space: an artifact of forged
                # DNS (the redirect target), not separate IP blocking.
                symptom = None
            if symptom is not None and symptom not in stages:
                stages.append(symptom)
            fallback = self.circumvention.relay_for(url)
            if fallback is not None and fallback.name != transport.name:
                retry = yield env.process(self._fetch_via(ctx, url, fallback))
                if retry.ok:
                    result = retry

        response = self._serve(
            served,
            ServedResponse(
                url=url,
                plt=env.now - t0,
                served=result,
                path=result.transport,
                status=BlockStatus.BLOCKED,
                stages=list(stages),
                probe_ran=probe_proc is not None,
            ),
        )

        # Refresh the record (extends T_m; merges any new stage evidence).
        self._record(url, BlockStatus.BLOCKED, stages)

        if probe_proc is not None:
            outcome = yield probe_proc
            if (
                outcome.status is BlockStatus.NOT_BLOCKED
                and not outcome.suspected_blockpage
                and outcome.response is not None
            ):
                # Whitelisted (Blocked→Unblocked churn) or a false report
                # from the global_DB: the direct path works.
                self._record(url, BlockStatus.NOT_BLOCKED, [])
                response.status = BlockStatus.NOT_BLOCKED
                response.stages = []
            else:
                merged = list(stages)
                for stage in outcome.stages:
                    if stage not in merged:
                        merged.append(stage)
                self._record(url, BlockStatus.BLOCKED, merged)
                response.stages = merged
        return response

    # -- not-blocked: direct only, always measured -----------------------------------

    def _unblocked_flow(self, ctx: FlowContext, url: str, served) -> Generator:
        env = self.world.env
        t0 = env.now
        outcome = yield from self._measure_direct(ctx, url)

        if (
            outcome.status is BlockStatus.NOT_BLOCKED
            and not outcome.suspected_blockpage
            and outcome.response is not None
        ):
            self._record(url, BlockStatus.NOT_BLOCKED, [])
            return self._serve(
                served,
                ServedResponse(
                    url=url,
                    plt=env.now - t0,
                    served=self._detection_as_fetch(outcome),
                    path="direct",
                    status=BlockStatus.NOT_BLOCKED,
                    detection=outcome,
                ),
            )

        # Unblocked→Blocked churn (or a dead site): recover through
        # circumvention and re-record.
        stages = list(outcome.stages)
        transport = self.circumvention.choose(url, stages)
        circ = None
        if transport is not None:
            circ = yield env.process(self._fetch_via(ctx, url, transport))

        status = BlockStatus.BLOCKED if outcome.blocked else outcome.status
        if outcome.suspected_blockpage and circ is not None and circ.ok:
            if not self.detector.phase2(outcome.response, circ.response):
                status = BlockStatus.NOT_BLOCKED
                if BlockType.BLOCK_PAGE in stages:
                    stages.remove(BlockType.BLOCK_PAGE)

        if circ is not None and circ.ok and status is BlockStatus.BLOCKED:
            served_fetch, path = circ, circ.transport
        elif status is BlockStatus.NOT_BLOCKED and outcome.response is not None:
            served_fetch, path = self._detection_as_fetch(outcome), "direct"
        elif circ is not None and circ.ok:
            served_fetch, path = circ, circ.transport
        else:
            served_fetch, path = self._detection_as_fetch(outcome), "direct"

        if status is not BlockStatus.NOT_MEASURED:
            self._record(url, status, stages)
        return self._serve(
            served,
            ServedResponse(
                url=url,
                plt=env.now - t0,
                served=served_fetch,
                path=path,
                status=status,
                stages=stages,
                detection=outcome,
            ),
        )
