"""local_DB: the client-side URL measurement store (§4.1, §4.4).

An in-memory hash table of :class:`URLRecord` objects with:

- TTL expiry (records age back to ``not-measured``, which is how
  Blocked→Unblocked churn is eventually observed — Scenario A in §4.4);
- URL aggregation with longest-prefix matching (Figure 6b's ~55 % record
  reduction), switchable off for the ablation;
- report bookkeeping for the periodic global_DB upload.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..urlkit import normalize_url, parse_url
from .aggregation import UrlPrefixIndex, storage_key
from .records import BlockStatus, BlockType, URLRecord

__all__ = ["LocalDatabase"]


class LocalDatabase:
    """Per-client store of blocking measurements."""

    def __init__(
        self,
        asn: int = 0,
        ttl: float = 24 * 3600.0,
        aggregation: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ):
        if ttl <= 0:
            raise ValueError(f"ttl must be positive: {ttl!r}")
        self.asn = asn
        self.ttl = ttl
        self.aggregation = aggregation
        self._clock = clock or (lambda: 0.0)
        self._records: Dict[str, URLRecord] = {}
        self._index = UrlPrefixIndex()
        # Maintained on every write so report assembly never scans the
        # whole table: keys of blocked records, and the subset not yet
        # posted to the global database.  Dicts-as-ordered-sets keep
        # iteration deterministic (hash-randomized set order would leak
        # into report order and break reproducibility).
        self._blocked_keys: Dict[str, None] = {}
        self._pending_keys: Dict[str, None] = {}

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    @property
    def record_count(self) -> int:
        return len(self._records)

    def records(self) -> List[URLRecord]:
        return list(self._records.values())

    def approx_bytes(self) -> int:
        """Rough in-memory footprint of the table (§4.4 motivates the
        aggregation scheme with memory-constrained mobile devices).

        Counts the URL key, the fixed per-record fields, and the stage
        list — the quantities aggregation actually shrinks.
        """
        per_record_overhead = 88  # timestamps, status, flags, dict slot
        total = 0
        for key, record in self._records.items():
            total += per_record_overhead + 2 * len(key)  # key + record.url
            total += 16 * len(record.stages)
        return total

    # -- lookup --------------------------------------------------------------

    def lookup(self, url: str) -> Tuple[BlockStatus, Optional[URLRecord]]:
        """Blocking status of ``url`` per the stored records.

        Returns ``(NOT_MEASURED, None)`` when nothing (unexpired) matches.
        With aggregation on, a derived URL inherits the most specific
        stored record via longest-prefix matching.
        """
        url = normalize_url(url)
        now = self._clock()
        if self.aggregation:
            key = self._index.longest_prefix(url)
        else:
            key = url if url in self._records else None
        if key is None:
            return BlockStatus.NOT_MEASURED, None
        record = self._records.get(key)
        if record is None:  # index out of sync should not happen
            return BlockStatus.NOT_MEASURED, None
        if record.is_expired(now, self.ttl):
            self._drop(key)
            return BlockStatus.NOT_MEASURED, None
        return record.status, record

    # -- updates --------------------------------------------------------------

    def record_measurement(
        self,
        url: str,
        status: BlockStatus,
        stages: Optional[List[BlockType]] = None,
        now: Optional[float] = None,
    ) -> URLRecord:
        """Store a fresh measurement, applying the aggregation policy."""
        if status is BlockStatus.NOT_MEASURED:
            raise ValueError("cannot record a not-measured status")
        url = normalize_url(url)
        stages = list(stages or [])
        when = self._clock() if now is None else now

        key = storage_key(url, status, stages) if self.aggregation else url
        existing = self._records.get(key)
        if existing is not None and existing.status is status:
            existing.measured_at = when
            before = len(existing.stages)
            existing.merge_stages(stages)
            if len(existing.stages) != before:
                existing.global_posted = False
            record = existing
        else:
            record = URLRecord(
                url=key,
                asn=self.asn,
                measured_at=when,
                status=status,
                stages=stages,
            )
            self._records[key] = record
            self._index.add(key)
        self._track(key, record)

        if self.aggregation:
            self._apply_aggregation_cleanup(record)
        return record

    def _track(self, key: str, record: URLRecord) -> None:
        """Keep the blocked/pending key sets in step with ``record``."""
        if record.status is BlockStatus.BLOCKED:
            self._blocked_keys[key] = None
            if record.global_posted:
                self._pending_keys.pop(key, None)
            else:
                self._pending_keys.setdefault(key)
        else:
            self._blocked_keys.pop(key, None)
            self._pending_keys.pop(key, None)

    def _apply_aggregation_cleanup(self, record: URLRecord) -> None:
        parsed = parse_url(record.url)
        siblings = [
            key
            for key in self._index.keys_for_origin(record.url)
            if key != record.url
        ]
        if record.status is BlockStatus.NOT_BLOCKED and parsed.is_base:
            # Case (c): one not-blocked record at the base suffices; keep
            # blocked derived records (case (b) still stands for them).
            for key in siblings:
                other = self._records.get(key)
                if other is not None and other.status is BlockStatus.NOT_BLOCKED:
                    self._drop(key)
        elif record.status is BlockStatus.BLOCKED and parsed.is_base:
            # Case (a) / hostname-scoped blocking: every derived URL is
            # covered by the base record.
            for key in siblings:
                self._drop(key)

    def clear(self) -> None:
        """Drop every record (fresh-install state; used by experiments)."""
        self._records.clear()
        self._index = UrlPrefixIndex()
        self._blocked_keys.clear()
        self._pending_keys.clear()

    # -- persistence across client restarts -----------------------------------

    def snapshot(self) -> dict:
        """JSON-able dump of the table (the client persists its local_DB
        across restarts so blocked-URL knowledge survives)."""
        return {
            "asn": self.asn,
            "ttl": self.ttl,
            "aggregation": self.aggregation,
            "records": [
                {
                    "url": record.url,
                    "asn": record.asn,
                    "measured_at": record.measured_at,
                    "status": record.status.value,
                    "stages": [stage.value for stage in record.stages],
                    "global_posted": record.global_posted,
                }
                for record in self._records.values()
            ],
        }

    def restore(self, snapshot: dict) -> int:
        """Load a :meth:`snapshot` dump; returns the record count.

        Existing records are dropped first.  The snapshot's TTL applies:
        records already stale at restore time simply expire on first
        lookup, like any other.
        """
        self.clear()
        self.asn = int(snapshot["asn"])
        self.ttl = float(snapshot["ttl"])
        self.aggregation = bool(snapshot["aggregation"])
        for item in snapshot["records"]:
            record = URLRecord(
                url=item["url"],
                asn=int(item["asn"]),
                measured_at=float(item["measured_at"]),
                status=BlockStatus(item["status"]),
                stages=[BlockType(value) for value in item["stages"]],
                global_posted=bool(item["global_posted"]),
            )
            self._records[record.url] = record
            self._index.add(record.url)
            self._track(record.url, record)
        return len(self._records)

    def expire_records(self, now: Optional[float] = None) -> int:
        """Purge expired records; returns how many were dropped."""
        when = self._clock() if now is None else now
        stale = [
            key
            for key, record in self._records.items()
            if record.is_expired(when, self.ttl)
        ]
        for key in stale:
            self._drop(key)
        return len(stale)

    def _drop(self, key: str) -> None:
        self._records.pop(key, None)
        self._index.remove(key)
        self._blocked_keys.pop(key, None)
        self._pending_keys.pop(key, None)

    # -- reporting ------------------------------------------------------------

    def pending_reports(self) -> List[URLRecord]:
        """Blocked records not yet posted to the global database.

        Proportional to the pending work, not the table size: the key set
        is maintained on every write (record/merge/drop/mark_posted).
        """
        records = self._records
        return [records[key] for key in self._pending_keys]

    def mark_posted(self, urls: List[str]) -> None:
        for url in urls:
            key = normalize_url(url)
            record = self._records.get(key)
            if record is not None:
                record.global_posted = True
                self._pending_keys.pop(key, None)

    def blocked_records(self) -> List[URLRecord]:
        records = self._records
        return [records[key] for key in self._blocked_keys]
