"""Cross-layer trace bus for the request path.

Every request owns one :class:`SessionTrace`; the detection stages
(``core/detection.py``), the session flows (``core/session.py``), and
the transport wrappers (``circumvent/base.py``) all emit typed
:class:`TraceEvent`\\ s onto it with sim-time stamps.  The result is an
ICLab-style per-request provenance record: which Figure-4 stage ran
when, what evidence it produced, which transports were attempted, and
where the page-load time went.

Emission is *pure* with respect to the simulation: an event records
``clock()`` (``env.now``) but never creates engine events or advances
time, so tracing cannot perturb the bit-identical determinism the
regression goldens enforce.

Timestamps are guaranteed non-decreasing: ``emit`` rejects a stamp
earlier than its predecessor, which would indicate a trace shared
across sessions or a clock wired to the wrong environment.

Tracing has a *mode* (:class:`TraceMode`), selected per client via
``CSawConfig.trace_mode``:

- ``full`` — every event of every session is recorded (the PR-4
  behaviour, and the default);
- ``ring`` — every session records, but only the most recent
  ``trace_ring_size`` events are retained (bounded memory for
  always-on tracing at fleet scale);
- ``sampled`` — a fraction ``trace_sample_rate`` of sessions record
  in full; the rest pay a single predicate check per would-be event.
  Aggregated PLT statistics are scaled by ``1/p`` so they estimate
  the full population;
- ``off`` — no session records; every emission helper returns after
  one attribute test, no clock read, no allocation.

A disabled trace is still a valid, safely inert object: ``len() == 0``,
``stage_durations() == {}``, subscribers never fire.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional

from .records import BlockType

__all__ = [
    "TraceEvent",
    "TraceMode",
    "SessionTrace",
    "DISABLED_TRACE",
    "transport_stage",
    "STAGE_SESSION",
    "STAGE_LOCAL_DNS",
    "STAGE_GLOBAL_DNS",
    "STAGE_TCP",
    "STAGE_TLS",
    "STAGE_HTTP",
    "STAGE_BLOCKPAGE_PHASE1",
    "STAGE_BLOCKPAGE_PHASE2",
]

# Figure-4 stage names (detection) plus the session-level envelope.
STAGE_SESSION = "session"
STAGE_LOCAL_DNS = "local-dns"
STAGE_GLOBAL_DNS = "global-dns"
STAGE_TCP = "tcp"
STAGE_TLS = "tls"
STAGE_HTTP = "http"
STAGE_BLOCKPAGE_PHASE1 = "blockpage-phase1"
STAGE_BLOCKPAGE_PHASE2 = "blockpage-phase2"


def transport_stage(name: str) -> str:
    """Stage label for a circumvention-transport attempt."""
    return "transport:" + name


class TraceMode(enum.Enum):
    """How much of the request path's trace bus is recorded."""

    OFF = "off"
    SAMPLED = "sampled"
    RING = "ring"
    FULL = "full"

    @classmethod
    def parse(cls, value) -> "TraceMode":
        """Accept a TraceMode or its string value (config field)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown trace mode {value!r} (expected one of: {names})"
            ) from None


class TraceEvent:
    """One timestamped fact about a request.

    ``kind`` is one of:

    - ``begin`` / ``end`` — a stage span (``end`` carries ``duration``);
    - ``evidence`` — blocking evidence observed (``block_type`` set);
    - ``attempt`` / ``result`` — a transport fetch and its outcome;
    - ``serve`` — content handed to the user (``transport`` = path);
    - ``mark`` — out-of-band annotation (correction, record, cancel).
    """

    __slots__ = ("stage", "kind", "t", "duration", "transport",
                 "block_type", "detail")

    def __init__(
        self,
        stage: str,
        kind: str,
        t: float,
        duration: Optional[float] = None,
        transport: Optional[str] = None,
        block_type: Optional[BlockType] = None,
        detail: Optional[str] = None,
    ):
        self.stage = stage
        self.kind = kind
        self.t = t
        self.duration = duration
        self.transport = transport
        self.block_type = block_type
        self.detail = detail

    def __repr__(self) -> str:
        extras = []
        if self.duration is not None:
            extras.append(f"dur={self.duration:.3f}s")
        if self.transport is not None:
            extras.append(f"via={self.transport}")
        if self.block_type is not None:
            extras.append(self.block_type.value)
        if self.detail is not None:
            extras.append(self.detail)
        tail = (" " + " ".join(extras)) if extras else ""
        return f"<{self.t:.3f}s {self.stage}/{self.kind}{tail}>"


class SessionTrace:
    """Ordered, monotonically timestamped event log for one request.

    ``clock`` is the sim-time source (``lambda: env.now``).  Subscribers
    registered with :meth:`subscribe` see every event as it is emitted —
    this is the bus upper layers (stats aggregation, per-stage hooks)
    attach to; they are invoked in registration order and must not touch
    the simulation.
    """

    __slots__ = ("url", "actor", "enabled", "_events", "_clock", "_last_t",
                 "_subscribers")

    def __init__(
        self,
        clock: Callable[[], float],
        url: Optional[str] = None,
        actor: Optional[str] = None,
        enabled: bool = True,
        ring: Optional[int] = None,
    ):
        self.url = url
        self.actor = actor
        # The whole off/unsampled story is this one flag: every emission
        # helper tests it first and returns before touching the clock,
        # so a disabled trace costs one attribute load + branch per
        # would-be event — nothing else.
        self.enabled = enabled
        # Raw storage: 7-tuples in TraceEvent slot order, materialized
        # into TraceEvent objects on first read.  The request path emits
        # several events per request, and a per-emit object allocation
        # (plus its GC tracking — tuples of atoms get untracked, slotted
        # instances never do) is measurable against the <5% overhead
        # budget the benchmark guard enforces.  With subscribers
        # attached, events materialize eagerly so observers get the
        # typed object.  ``ring`` bounds the storage to the most recent
        # N events (always-on tracing at fleet scale).
        self._events = deque(maxlen=ring) if ring else []
        self._clock = clock
        self._last_t = float("-inf")
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    # -- emission ------------------------------------------------------------

    def _emit(self, stage, kind, duration, transport, block_type, detail,
              started=None):
        # Positional hot path: one clock read per event, no keyword
        # unpacking.  ``started`` (a span's open stamp) turns into
        # ``duration`` here so span closers don't read the clock twice.
        if not self.enabled:
            return 0.0
        t = self._clock()
        if t < self._last_t:
            raise ValueError(
                f"trace timestamp went backwards ({t} < {self._last_t}): "
                "trace shared across sessions or clock wired to the wrong "
                "environment"
            )
        self._last_t = t
        if started is not None:
            duration = t - started
        if self._subscribers:
            event = TraceEvent(
                stage, kind, t, duration, transport, block_type, detail
            )
            self._events.append(event)
            for subscriber in self._subscribers:
                subscriber(event)
        else:
            self._events.append(
                (stage, kind, t, duration, transport, block_type, detail)
            )
        return t

    def emit(
        self,
        stage: str,
        kind: str,
        *,
        duration: Optional[float] = None,
        transport: Optional[str] = None,
        block_type: Optional[BlockType] = None,
        detail: Optional[str] = None,
    ) -> Optional[TraceEvent]:
        self._emit(stage, kind, duration, transport, block_type, detail)
        if not self.enabled:
            return None
        self._materialize()
        return self._events[-1]

    def begin(self, stage: str, *, detail: Optional[str] = None) -> float:
        """Open a stage span; returns the start stamp to pass to ``end``."""
        return self._emit(stage, "begin", None, None, None, detail)

    def end(
        self,
        stage: str,
        started: float,
        *,
        block_type: Optional[BlockType] = None,
        detail: Optional[str] = None,
    ) -> float:
        """Close a stage span; duration = now − ``started``."""
        return self._emit(
            stage, "end", None, None, block_type, detail, started
        )

    def evidence(
        self, stage: str, block_type: BlockType,
        *, detail: Optional[str] = None,
    ) -> float:
        return self._emit(stage, "evidence", None, None, block_type, detail)

    def mark(self, stage: str, detail: str) -> float:
        return self._emit(stage, "mark", None, None, None, detail)

    def attempt(self, stage: str, transport: str) -> float:
        """A transport fetch starts; returns the stamp for ``result``."""
        return self._emit(stage, "attempt", None, transport, None, None)

    def result(
        self, stage: str, started: float, transport: str, detail: str
    ) -> float:
        """A transport fetch completed; duration = now − ``started``."""
        return self._emit(
            stage, "result", None, transport, None, detail, started
        )

    # -- the bus -------------------------------------------------------------

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Attach an observer called synchronously on every emit.

        On a disabled trace this is a no-op: no event will ever fire, and
        disabled sessions may share the :data:`DISABLED_TRACE` singleton,
        which must stay free of per-session state.
        """
        if self.enabled:
            self._subscribers.append(callback)

    # -- inspection ----------------------------------------------------------

    def _materialize(self) -> None:
        events = self._events
        for i, e in enumerate(events):
            if type(e) is tuple:
                events[i] = TraceEvent(*e)

    @property
    def events(self) -> List[TraceEvent]:
        """The typed event log (materializes the raw storage in place).

        Ring-mode storage (a bounded deque) is handed back as a list so
        callers always get the same interface.
        """
        self._materialize()
        if isinstance(self._events, deque):
            return list(self._events)
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        # Truthiness means "live trace", NOT "has events".  Without this,
        # ``__len__`` makes an *empty* enabled trace falsy, and the
        # hot-path guard idiom ``trace = self.trace if self.trace.enabled
        # else None`` followed by ``if trace: trace.begin(...)`` can never
        # emit a first event.  Use ``len(trace)`` to ask about contents.
        return self.enabled

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def stage_sequence(self) -> List[str]:
        """Stages in the order they were entered (``begin`` events)."""
        return [e.stage for e in self.events if e.kind == "begin"]

    def evidence_types(self) -> List[BlockType]:
        """Blocking evidence in emission order."""
        return [
            e.block_type for e in self.events
            if e.kind == "evidence" and e.block_type is not None
        ]

    def stage_durations(self) -> Dict[str, float]:
        """Time spent per stage, insertion-ordered by first completion.

        Sums ``end`` and ``result`` spans, so parallel transport attempts
        contribute their full cost (this measures *where effort went*,
        not wall-clock: overlapping stages may sum past the total PLT).

        Reads the raw storage directly — this runs once per session
        (module aggregation) and must not force materialization.
        """
        durations: Dict[str, float] = {}
        for e in self._events:
            if type(e) is tuple:
                stage, kind, _t, duration = e[0], e[1], e[2], e[3]
            else:
                stage, kind, duration = e.stage, e.kind, e.duration
            if duration is not None and (kind == "end" or kind == "result"):
                durations[stage] = durations.get(stage, 0.0) + duration
        return durations

    def render(self) -> str:
        """Human-readable multi-line rendering (README example)."""
        header = f"trace for {self.url or '?'}"
        if self.actor:
            header += f" [{self.actor}]"
        lines = [header]
        for event in self.events:
            parts = [f"  {event.t:10.3f}s  {event.stage:<22} {event.kind}"]
            if event.duration is not None:
                parts.append(f"({event.duration:.3f}s)")
            if event.transport is not None:
                parts.append(f"via={event.transport}")
            if event.block_type is not None:
                parts.append(event.block_type.value)
            if event.detail is not None:
                parts.append(f"— {event.detail}")
            lines.append(" ".join(parts))
        return "\n".join(lines)


def _no_clock() -> float:  # pragma: no cover — a disabled trace never reads it
    raise AssertionError("disabled trace must never read the clock")


#: Shared inert trace for sessions that record nothing (``TraceMode.OFF``
#: and the unsampled majority under ``TraceMode.SAMPLED``).  Emission
#: helpers return after one predicate check and :meth:`subscribe` is a
#: no-op, so one instance can serve every disabled session — removing the
#: per-request ``SessionTrace`` (and clock-closure) allocation that the
#: OFF overhead budget cannot afford.  It carries no URL/actor: a
#: disabled trace never holds data.
DISABLED_TRACE = SessionTrace(_no_clock, enabled=False)
