"""Non-web reachability measurement + VPN recovery (§8 future work).

Extends C-Saw's measure-what-you-use principle to application services:
when the user opens the messaging app, the checker probes the service's
endpoints on the direct path (classifying which are blocked), records
the status, and — when the service is blocked — tunnels the session
through a VPN endpoint, the standard recovery for non-web traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..simnet.app import AppBlocked, AppConnection, AppService, app_connect
from ..simnet.flow import FlowContext
from ..simnet.tcp import TcpError, tcp_connect
from ..simnet.topology import Host
from ..simnet.world import World
from .records import BlockStatus

__all__ = ["AppStatus", "AppReachabilityChecker"]


@dataclass
class AppStatus:
    """What the checker knows about one service from this vantage."""

    service: str
    status: BlockStatus
    blocked_endpoints: List[str] = field(default_factory=list)
    reachable_endpoints: List[str] = field(default_factory=list)
    measured_at: float = 0.0

    @property
    def fully_blocked(self) -> bool:
        return self.status is BlockStatus.BLOCKED and not self.reachable_endpoints


class AppReachabilityChecker:
    """Measure app reachability; recover blocked sessions through a VPN."""

    def __init__(
        self,
        world: World,
        vpn_endpoint: Optional[Host] = None,
        record_ttl: float = 3600.0,
    ):
        self.world = world
        self.vpn_endpoint = vpn_endpoint
        self.record_ttl = record_ttl
        self._statuses: Dict[str, AppStatus] = {}
        self.probes = 0

    # -- measurement ----------------------------------------------------------

    def check(self, ctx: FlowContext, service: AppService) -> Generator:
        """Process: probe every endpoint on the direct path."""
        env = self.world.env
        blocked, reachable = [], []
        for endpoint in service.endpoints:
            try:
                yield from tcp_connect(
                    env, self.world.network, ctx, endpoint.ip, service.port,
                    self.world.tcp_config,
                )
            except TcpError:
                blocked.append(endpoint.ip)
            else:
                reachable.append(endpoint.ip)
            self.probes += 1
        status = AppStatus(
            service=service.name,
            status=(
                BlockStatus.BLOCKED if blocked else BlockStatus.NOT_BLOCKED
            ),
            blocked_endpoints=blocked,
            reachable_endpoints=reachable,
            measured_at=env.now,
        )
        self._statuses[service.name] = status
        return status

    def status_of(self, service_name: str) -> Optional[AppStatus]:
        found = self._statuses.get(service_name)
        if found is None:
            return None
        if self.world.env.now - found.measured_at > self.record_ttl:
            del self._statuses[service_name]
            return None
        return found

    # -- connection with recovery -------------------------------------------------

    def connect(self, ctx: FlowContext, service: AppService) -> Generator:
        """Process: open a session, tunnelling through the VPN if needed.

        Direct first (which doubles as a measurement when the cached
        status expired); on total blockage, through the VPN endpoint.
        Raises :class:`AppBlocked` only when the VPN path is unavailable
        or blocked as well.
        """
        env = self.world.env
        known = self.status_of(service.name)
        if known is None or not known.fully_blocked:
            try:
                conn = yield from app_connect(self.world, ctx, service)
                self._note_success(service, conn)
                return conn
            except AppBlocked:
                self._note_total_block(service)
        if self.vpn_endpoint is None:
            raise AppBlocked(service.name, [])
        conn = yield from self._connect_via_vpn(ctx, service)
        return conn

    def _connect_via_vpn(
        self, ctx: FlowContext, service: AppService
    ) -> Generator:
        env = self.world.env
        # Censored leg to the VPN endpoint.
        tunnel = yield from tcp_connect(
            env, self.world.network, ctx, self.vpn_endpoint.ip, 1194,
            self.world.tcp_config,
        )
        # VPN handshake, then the tunnelled app session from the VPN's
        # (uncensored) vantage.
        yield env.timeout(1.5 * tunnel.rtt)
        vpn_ctx = self.world.relay_ctx(self.vpn_endpoint, stream="app-vpn")
        inner = yield from app_connect(self.world, vpn_ctx, service)
        return AppConnection(
            service=service.name,
            endpoint=inner.endpoint,
            rtt=tunnel.rtt + inner.rtt,
            via="vpn",
        )

    # -- bookkeeping -----------------------------------------------------------------

    def _note_success(self, service: AppService, conn: AppConnection) -> None:
        status = self._statuses.get(service.name)
        if status is None or status.status is BlockStatus.NOT_BLOCKED:
            self._statuses[service.name] = AppStatus(
                service=service.name,
                status=BlockStatus.NOT_BLOCKED,
                reachable_endpoints=[conn.endpoint.ip],
                measured_at=self.world.env.now,
            )

    def _note_total_block(self, service: AppService) -> None:
        self._statuses[service.name] = AppStatus(
            service=service.name,
            status=BlockStatus.BLOCKED,
            blocked_endpoints=service.endpoint_ips,
            measured_at=self.world.env.now,
        )
