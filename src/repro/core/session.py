"""MeasurementSession: one request's walk through Algorithm 1.

Each ``MeasurementModule.handle_request`` call owns exactly one session.
The session carries all per-request state that the old generator flows
kept in nested closures (``circ_success``/``try_serve``), drives the
explicit flow transitions —

- ``not-measured`` → :meth:`_unknown_flow` (redundant requests, 2-phase
  block-page confirmation);
- ``blocked``      → :meth:`_blocked_flow` (circumvent + probabilistic
  direct probe);
- ``not-blocked``  → :meth:`_unblocked_flow` (direct, always measured)

— and threads its :class:`~repro.core.trace.SessionTrace` through every
layer it touches: the Figure-4 detection stages, each transport attempt,
and the serve/correction decisions.  The served
:class:`~repro.core.measurement.ServedResponse` carries the full trace.

Hooks:

- :meth:`subscribe` attaches an observer to the trace bus — called on
  every stage transition, evidence event, and transport attempt;
- :meth:`cancel` stops the unknown-flow redundancy wait at the next
  transition (in-flight fetches are left to finish in the background);
- :meth:`set_deadline` bounds that wait in sim-seconds.

Determinism: the control flow is a line-for-line port of the old
closures — engine events (``env.event``/``process``/``timeout``/
``any_of``) are created in the identical order, and the RNG is drawn at
the identical points, so same-seed runs stay bit-identical (enforced by
the golden in ``tests/data/session_refactor_golden.json``).  ``cancel``
and ``set_deadline`` only perturb the schedule when actually used.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..circumvent.base import FetchResult
from ..simnet.ipaddr import is_private
from ..simnet.tcp import TcpError
from .detection import DetectionOutcome
from .records import BlockStatus, BlockType
from .taxonomy import block_type_for
from .trace import (
    DISABLED_TRACE,
    STAGE_BLOCKPAGE_PHASE2,
    STAGE_SESSION,
    SessionTrace,
    TraceMode,
    transport_stage,
)

__all__ = ["MeasurementSession"]

# Bound by core.measurement at import time (cycle-breaker).  The flows
# construct a ServedResponse on every serve; a per-call
# ``from .measurement import ServedResponse`` would pay sys.modules
# machinery on the hot path, and a module-level import would be circular
# (measurement imports MeasurementSession from here).
ServedResponse = None


class MeasurementSession:
    """State machine for one URL request through the measurement module."""

    __slots__ = (
        "module", "world", "env", "ctx", "url", "duplicable",
        "served_event", "trace", "t0", "outcome", "circ_results",
        "response", "circ_started", "cancelled", "_deadline_expires",
    )

    def __init__(self, module, ctx, url: str, duplicable: bool = True):
        self.module = module
        self.world = module.world
        self.env = module.world.env
        self.ctx = ctx
        self.url = url
        self.duplicable = duplicable
        # Created before the worker process is spawned (handle_request
        # yields it), matching the old event-creation order exactly.
        self.served_event = self.env.event()
        # Close over env, not self: a self-capturing clock would make
        # session → trace → clock → session a GC cycle per request.
        # Trace mode policy (resolved once on the module): SAMPLED
        # enables a p-fraction of sessions, drawn from a dedicated RNG
        # stream so verdicts stay mode-independent; RING bounds storage
        # to the most recent N events.
        # Disabled sessions (OFF, or the unsampled majority in SAMPLED
        # mode) share the inert DISABLED_TRACE singleton — no per-request
        # trace or clock-closure allocation on the fast path.
        if module.trace_mode is TraceMode.OFF or (
            module.trace_rng is not None
            and not (
                module.trace_rng.random() < module.config.trace_sample_rate
            )
        ):
            self.trace = DISABLED_TRACE
        else:
            env = self.env
            self.trace = SessionTrace(
                lambda: env.now,
                url=url,
                actor="session",
                ring=module.trace_ring,
            )
        self.t0: float = 0.0
        self.outcome: Optional[DetectionOutcome] = None
        self.circ_results: List[FetchResult] = []
        self.response = None
        self.circ_started = False
        self.cancelled = False
        self._deadline_expires: Optional[float] = None

    # -- hooks -----------------------------------------------------------------

    def subscribe(self, callback) -> None:
        """Observe every trace event this session emits (the bus)."""
        self.trace.subscribe(callback)

    def cancel(self) -> None:
        """Stop waiting on redundant fetches at the next transition."""
        self.cancelled = True

    def set_deadline(self, seconds: float) -> None:
        """Bound the unknown-flow redundancy wait to ``seconds`` from now.

        Off by default; setting it introduces extra timeout events into
        the schedule, so deterministic experiments must set it on every
        run or none.
        """
        self._deadline_expires = self.env.now + seconds

    # -- driver ----------------------------------------------------------------

    def run(self):
        """Process body: dispatch per Algorithm 1, serve, finalize."""
        module = self.module
        trace = self.trace
        traced = trace.enabled
        self.t0 = self.env.now
        if traced:
            trace.begin(STAGE_SESSION)
        status, record = module.local_db.lookup(self.url)
        if status is BlockStatus.NOT_MEASURED:
            entry = module.global_view.lookup(self.url)
            if entry is not None:
                result = yield from self._blocked_flow(
                    list(entry.stages), from_global=True
                )
            else:
                result = yield from self._unknown_flow()
        elif status is BlockStatus.BLOCKED:
            result = yield from self._blocked_flow(list(record.stages))
        else:
            result = yield from self._unblocked_flow()
        if traced:
            trace.end(STAGE_SESSION, self.t0, detail=result.status.value)
            module.absorb_trace(trace)
        else:
            module.sessions_completed += 1
        return result

    # -- serving ---------------------------------------------------------------

    def serve(self, response):
        """Hand ``response`` to the waiting request; attaches the trace."""
        trace = self.trace
        response.trace = trace
        if trace.enabled:
            trace._emit(
                STAGE_SESSION, "serve", response.plt, response.path, None, None
            )
        if not self.served_event.triggered:
            self.served_event.succeed(response)
        return response

    def circ_success(self) -> Optional[FetchResult]:
        for result in self.circ_results:
            if result.ok:
                return result
        return None

    def try_serve(self) -> None:
        """Serve as soon as a usable response exists (direct preferred)."""
        if self.response is not None:
            return
        outcome = self.outcome
        if (
            outcome is not None
            and outcome.status is BlockStatus.NOT_BLOCKED
            and not outcome.suspected_blockpage
            and outcome.response is not None
        ):
            self.response = self.serve(
                ServedResponse(
                    url=self.url,
                    plt=self.env.now - self.t0,
                    served=self.module._detection_as_fetch(outcome),
                    path="direct",
                    detection=outcome,
                )
            )
            return
        winner = self.circ_success()
        if winner is not None and (
            outcome is None
            or outcome.blocked
            or outcome.suspected_blockpage
        ):
            self.response = self.serve(
                ServedResponse(
                    url=self.url,
                    plt=self.env.now - self.t0,
                    served=winner,
                    path=winner.transport,
                    detection=outcome,
                )
            )

    # -- not-measured: redundant requests --------------------------------------

    def _unknown_flow(self):
        env = self.env
        module = self.module
        config = module.config
        ctx = self.ctx
        url = self.url
        trace = self.trace
        relay = module.circumvention.relay_for(url)

        first_byte = env.event()
        direct_proc = env.process(
            module._measure_direct(
                ctx, url, first_byte=first_byte, trace=trace
            )
        )
        circ_procs: List = []

        want_parallel = (
            self.duplicable
            and config.redundancy_mode == "parallel"
            and relay is not None
            and config.max_redundant_requests >= 2
        )
        if want_parallel and config.redundant_delay > 0:
            # Stagger the duplicate; skip it when the direct path starts
            # answering within the delay (footnote 10: "if we get a
            # response from the direct path within 2s, we do not send a
            # request on Tor").
            yield env.any_of(
                [direct_proc, first_byte, env.timeout(config.redundant_delay)]
            )
            if direct_proc.processed or first_byte.triggered:
                want_parallel = False
        if want_parallel and not direct_proc.processed:
            circ_procs = [
                env.process(
                    module._fetch_via(ctx, url, relay, trace=trace)
                )
                for _ in range(config.max_redundant_requests - 1)
            ]

        self.circ_started = bool(circ_procs)

        # Ordered dict-as-set: any_of registers callbacks in iteration
        # order, so hash-ordered sets here would leak into event order.
        pending = {
            p: None for p in [direct_proc, *circ_procs] if not p.processed
        }
        if direct_proc.processed:
            self.outcome = direct_proc.value
        self.try_serve()

        while pending:
            if self.cancelled:
                trace.mark(STAGE_SESSION, "cancelled")
                break
            waits = list(pending)
            deadline = None
            if self._deadline_expires is not None:
                remaining = self._deadline_expires - env.now
                if remaining <= 0:
                    trace.mark(STAGE_SESSION, "deadline expired")
                    break
                deadline = env.timeout(remaining)
                waits.append(deadline)
            fired = yield env.any_of(waits)
            if deadline is not None and len(fired) == 1 and deadline in fired:
                trace.mark(STAGE_SESSION, "deadline expired")
                break
            for event in fired:
                if event is deadline:
                    continue
                pending.pop(event, None)
                if event is direct_proc:
                    self.outcome = event.value
                else:
                    self.circ_results.append(event.value)
            # Direct path classified as blocked/suspect and no duplicate in
            # flight: launch circumvention now (serial mode, k=1, or the
            # stagger timer having skipped the duplicate).
            if (
                self.outcome is not None
                and not self.circ_started
                and (self.outcome.blocked or self.outcome.suspected_blockpage)
            ):
                transport = module.circumvention.choose(
                    url, self.outcome.stages
                )
                if transport is not None:
                    proc = env.process(
                        module._fetch_via(ctx, url, transport, trace=trace)
                    )
                    pending[proc] = None
                    self.circ_started = True
            self.try_serve()

        return self._finalize_unknown()

    def _finalize_unknown(self):
        """Phase-2 confirmation, correction, and record-keeping."""
        env = self.env
        module = self.module
        outcome = self.outcome
        stages = list(outcome.stages) if outcome else []
        comparator = next((r for r in self.circ_results if r.ok), None)

        if outcome is None:
            status = BlockStatus.NOT_MEASURED
        elif outcome.suspected_blockpage:
            status = BlockStatus.BLOCKED
            if comparator is not None:
                span = self.trace.begin(STAGE_BLOCKPAGE_PHASE2)
                if not module.detector.phase2(
                    outcome.response, comparator.response
                ):
                    # Phase-1 false positive: sizes match, the page is real.
                    status = BlockStatus.NOT_BLOCKED
                    if BlockType.BLOCK_PAGE in stages:
                        stages.remove(BlockType.BLOCK_PAGE)
                    self.trace.end(
                        STAGE_BLOCKPAGE_PHASE2, span,
                        detail="phase-1 false positive: sizes match",
                    )
                else:
                    self.trace.end(
                        STAGE_BLOCKPAGE_PHASE2, span,
                        detail="block page confirmed",
                    )
        elif (
            outcome.status is BlockStatus.NOT_BLOCKED
            and outcome.response is not None
        ):
            status = BlockStatus.NOT_BLOCKED
            if comparator is not None:
                span = self.trace.begin(STAGE_BLOCKPAGE_PHASE2)
                if module.detector.phase2(
                    outcome.response, comparator.response
                ):
                    # Phase-1 false negative: the served page was a block
                    # page.  Correct it by refreshing with the circumvented
                    # content.
                    status = BlockStatus.BLOCKED
                    stages.append(BlockType.BLOCK_PAGE)
                    self.trace.end(
                        STAGE_BLOCKPAGE_PHASE2, span,
                        detail="phase-1 false negative: refreshed",
                    )
                    if self.response is not None and self.response.path == "direct":
                        self.response.corrected = True
                        self.response.corrected_plt = env.now - self.t0
                        self.response.served = comparator
                        self.response.path = comparator.transport
                        self.trace.mark(
                            STAGE_SESSION,
                            "corrected: page refreshed via "
                            + comparator.transport,
                        )
                else:
                    self.trace.end(
                        STAGE_BLOCKPAGE_PHASE2, span, detail="page genuine"
                    )
        else:
            status = outcome.status

        if self.response is None:
            # Nothing servable arrived (direct failed, circumvention failed
            # or unavailable): serve the direct-path failure.
            fetch = module._detection_as_fetch(outcome) if outcome else None
            self.response = self.serve(
                ServedResponse(
                    url=self.url,
                    plt=env.now - self.t0,
                    served=fetch,
                    path="direct",
                    detection=outcome,
                )
            )

        if status is not BlockStatus.NOT_MEASURED:
            module._record(self.url, status, stages)
        if status is BlockStatus.NOT_BLOCKED:
            # The duplicates were pure overhead (§8 data-usage concern).
            module.redundant_bytes += sum(
                r.response.size_bytes for r in self.circ_results if r.ok
            )
        self.response.status = status
        self.response.stages = stages
        return self.response

    # -- blocked: circumvent (+ probabilistic direct probe) --------------------

    def _blocked_flow(self, stages: List[BlockType], from_global: bool = False):
        env = self.env
        module = self.module
        ctx = self.ctx
        url = self.url
        trace = self.trace
        if from_global:
            trace.mark(STAGE_SESSION, "blocked per global view")
        transport = module.circumvention.choose(url, stages)
        if transport is None:
            # No circumvention available at all: degenerate to direct.
            result = yield from self._unblocked_flow()
            return result

        # Local fixes ride the direct path, which measures it implicitly;
        # relay approaches probe the direct path with probability p.
        probe_proc = None
        if (
            self.duplicable
            and not transport.is_local_fix
            and module.rng.random() < module.config.probe_probability
        ):
            probe_proc = env.process(
                module._measure_direct(ctx, url, trace=trace)
            )
            module.probes_launched += 1
            trace.mark(STAGE_SESSION, "direct-path probe launched")

        result = yield env.process(
            module._fetch_via(ctx, url, transport, trace=trace)
        )

        if result.failed:
            # The chosen approach stopped working (fix defeated or relay
            # blocked).  Merge the fresh symptom and fall back to a relay.
            if transport.is_local_fix:
                module.circumvention.mark_fix_failed(url, transport.name)
            symptom = block_type_for(result.error) if result.error else None
            if (
                isinstance(result.error, TcpError)
                and is_private(result.error.dst_ip)
            ):
                # Dead connect into private space: an artifact of forged
                # DNS (the redirect target), not separate IP blocking.
                symptom = None
            if symptom is not None and symptom not in stages:
                stages.append(symptom)
                trace.evidence(transport_stage(transport.name), symptom)
            fallback = module.circumvention.relay_for(url)
            if fallback is not None and fallback.name != transport.name:
                retry = yield env.process(
                    module._fetch_via(ctx, url, fallback, trace=trace)
                )
                if retry.ok:
                    result = retry

        self.response = self.serve(
            ServedResponse(
                url=url,
                plt=env.now - self.t0,
                served=result,
                path=result.transport,
                status=BlockStatus.BLOCKED,
                stages=list(stages),
                probe_ran=probe_proc is not None,
            )
        )

        # Refresh the record (extends T_m; merges any new stage evidence).
        module._record(url, BlockStatus.BLOCKED, stages)

        if probe_proc is not None:
            outcome = yield probe_proc
            if (
                outcome.status is BlockStatus.NOT_BLOCKED
                and not outcome.suspected_blockpage
                and outcome.response is not None
            ):
                # Whitelisted (Blocked→Unblocked churn) or a false report
                # from the global_DB: the direct path works.
                module._record(url, BlockStatus.NOT_BLOCKED, [])
                self.response.status = BlockStatus.NOT_BLOCKED
                self.response.stages = []
                trace.mark(
                    STAGE_SESSION, "probe: direct path works; record cleared"
                )
            else:
                merged = list(stages)
                for stage in outcome.stages:
                    if stage not in merged:
                        merged.append(stage)
                module._record(url, BlockStatus.BLOCKED, merged)
                self.response.stages = merged
        return self.response

    # -- not-blocked: direct only, always measured ------------------------------

    def _unblocked_flow(self):
        env = self.env
        module = self.module
        ctx = self.ctx
        url = self.url
        trace = self.trace
        outcome = yield from module._measure_direct(ctx, url, trace=trace)

        if (
            outcome.status is BlockStatus.NOT_BLOCKED
            and not outcome.suspected_blockpage
            and outcome.response is not None
        ):
            module._record(url, BlockStatus.NOT_BLOCKED, [])
            self.response = self.serve(
                ServedResponse(
                    url=url,
                    plt=env.now - self.t0,
                    served=module._detection_as_fetch(outcome),
                    path="direct",
                    status=BlockStatus.NOT_BLOCKED,
                    detection=outcome,
                )
            )
            return self.response

        # Unblocked→Blocked churn (or a dead site): recover through
        # circumvention and re-record.
        stages = list(outcome.stages)
        transport = module.circumvention.choose(url, stages)
        circ = None
        if transport is not None:
            circ = yield env.process(
                module._fetch_via(ctx, url, transport, trace=trace)
            )

        status = BlockStatus.BLOCKED if outcome.blocked else outcome.status
        if outcome.suspected_blockpage and circ is not None and circ.ok:
            span = trace.begin(STAGE_BLOCKPAGE_PHASE2)
            if not module.detector.phase2(outcome.response, circ.response):
                status = BlockStatus.NOT_BLOCKED
                if BlockType.BLOCK_PAGE in stages:
                    stages.remove(BlockType.BLOCK_PAGE)
                trace.end(
                    STAGE_BLOCKPAGE_PHASE2, span,
                    detail="phase-1 false positive: sizes match",
                )
            else:
                trace.end(
                    STAGE_BLOCKPAGE_PHASE2, span,
                    detail="block page confirmed",
                )

        if circ is not None and circ.ok and status is BlockStatus.BLOCKED:
            served_fetch, path = circ, circ.transport
        elif status is BlockStatus.NOT_BLOCKED and outcome.response is not None:
            served_fetch, path = module._detection_as_fetch(outcome), "direct"
        elif circ is not None and circ.ok:
            served_fetch, path = circ, circ.transport
        else:
            served_fetch, path = module._detection_as_fetch(outcome), "direct"

        if status is not BlockStatus.NOT_MEASURED:
            module._record(url, status, stages)
        self.response = self.serve(
            ServedResponse(
                url=url,
                plt=env.now - self.t0,
                served=served_fetch,
                path=path,
                status=status,
                stages=stages,
                detection=outcome,
            )
        )
        return self.response
