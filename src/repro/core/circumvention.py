"""Adaptive circumvention selection (§4.3.2).

Selection policy, per the paper:

1. Prefer *local fixes* over relay approaches — they avoid relay path
   stretch entirely.  Which local fix works depends on the observed
   blocking stages:

   ============ =============================================
   fix          defeats blocking at stages
   ============ =============================================
   public-dns   dns (resolver-based tampering)
   https        http (cleartext URL filters)
   ip-hostname  dns + http (keyword/hostname filters)
   fronting     dns + ip + tls + http (everything but blocking
                the front itself)
   ============ =============================================

2. Among relay approaches, pick the smallest moving-average PLT for this
   URL (falling back to the approach's global average, then to a prior).

3. Every n-th access to a URL, pick a *random* viable approach instead,
   so approaches that have improved get rediscovered.

4. A user preferring anonymity is restricted to anonymous methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circumvent.base import Transport
from ..simnet.world import World
from ..urlkit import normalize_url
from .config import CSawConfig
from .records import BlockType

__all__ = ["CircumventionModule", "fix_defeats"]

# Which blocking-stage sets each local fix can defeat.
_FIX_COVERAGE: Dict[str, Set[str]] = {
    "public-dns": {"dns"},
    "hold-on": {"dns"},  # survives on-path injection races too
    "https": {"http"},
    "ip-as-hostname": {"dns", "http"},
    "domain-fronting": {"dns", "ip", "tls", "http"},
}

# Cheapest-first preference among local fixes (§4.3.2: least overhead).
# hold-on sits behind public-dns: it carries a standing latency margin,
# so it is only reached once public DNS is observed to fail (injection).
_FIX_PREFERENCE = [
    "public-dns",
    "hold-on",
    "https",
    "ip-as-hostname",
    "domain-fronting",
]

# Pessimistic PLT priors (seconds) for relays never tried.
_RELAY_PRIORS: Dict[str, float] = {"lantern": 3.0, "tor": 5.0}
_DEFAULT_RELAY_PRIOR = 4.0


def fix_defeats(fix_name: str, stages: Sequence[BlockType]) -> bool:
    """Whether local fix ``fix_name`` defeats all observed blocking stages."""
    coverage = _FIX_COVERAGE.get(fix_name)
    if coverage is None:
        return False
    observed = {stage.stage for stage in stages}
    return bool(observed) and observed <= coverage


@dataclass
class _PltTracker:
    """Moving-average PLTs per (approach, URL) and per approach."""

    alpha: float = 0.3
    by_url: Dict[Tuple[str, str], float] = field(default_factory=dict)
    by_transport: Dict[str, float] = field(default_factory=dict)

    def record(self, transport_name: str, url: str, plt: float) -> None:
        for key, table in (
            ((transport_name, url), self.by_url),
            (transport_name, self.by_transport),
        ):
            previous = table.get(key)
            table[key] = (
                plt
                if previous is None
                else (1 - self.alpha) * previous + self.alpha * plt
            )

    def estimate(self, transport_name: str, url: str) -> float:
        by_url = self.by_url.get((transport_name, url))
        if by_url is not None:
            return by_url
        by_transport = self.by_transport.get(transport_name)
        if by_transport is not None:
            return by_transport
        base = transport_name.split(":", 1)[0]
        return _RELAY_PRIORS.get(base, _DEFAULT_RELAY_PRIOR)


class CircumventionModule:
    """Hosts the available methods and picks one per blocked URL."""

    def __init__(
        self,
        world: World,
        transports: List[Transport],
        config: Optional[CSawConfig] = None,
        rng_stream: str = "circumvention",
    ):
        self.world = world
        self.config = config or CSawConfig()
        self.rng = world.rngs.stream(rng_stream)
        self.transports: Dict[str, Transport] = {}
        for transport in transports:
            self.register(transport)
        self._tracker = _PltTracker(alpha=self.config.ewma_alpha)
        self._access_counts: Dict[str, int] = {}
        # Local fixes observed to fail for a URL (e.g. the censor also
        # drops Host:<ip> requests, defeating ip-as-hostname): data-driven
        # adaptation skips them on subsequent accesses.
        self._failed_fixes: Dict[str, Set[str]] = {}

    def register(self, transport: Transport) -> None:
        if transport.name in self.transports:
            raise ValueError(f"transport already registered: {transport.name!r}")
        self.transports[transport.name] = transport

    # -- observations --------------------------------------------------------

    def record_plt(self, transport_name: str, url: str, plt: float) -> None:
        self._tracker.record(transport_name, normalize_url(url), plt)

    def estimate_plt(self, transport_name: str, url: str) -> float:
        return self._tracker.estimate(transport_name, normalize_url(url))

    # -- candidate sets --------------------------------------------------------

    def local_fixes(self) -> List[Transport]:
        return [t for t in self.transports.values() if t.is_local_fix]

    def relays(self) -> List[Transport]:
        return [
            t
            for t in self.transports.values()
            if not t.is_local_fix and t.name != "direct"
        ]

    def mark_fix_failed(self, url: str, fix_name: str) -> None:
        """Blacklist a local fix for this URL after a failed attempt."""
        self._failed_fixes.setdefault(normalize_url(url), set()).add(fix_name)

    def local_fix_for(
        self, url: str, stages: Sequence[BlockType]
    ) -> Optional[Transport]:
        """Cheapest local fix defeating all observed stages (or None)."""
        if self.config.prefer_anonymity:
            return None  # local fixes expose the user; anonymity wins
        failed = self._failed_fixes.get(normalize_url(url), set())
        for name in _FIX_PREFERENCE:
            if name in failed:
                continue
            transport = self.transports.get(name)
            if (
                transport is not None
                and fix_defeats(name, stages)
                and transport.available_for(self.world, url)
            ):
                return transport
        return None

    def _viable_relays(self, url: str) -> List[Transport]:
        relays = [
            t for t in self.relays() if t.available_for(self.world, url)
        ]
        if self.config.prefer_anonymity:
            relays = [t for t in relays if t.provides_anonymity]
        return relays

    def relay_for(self, url: str, explore: bool = False) -> Optional[Transport]:
        """Smallest-moving-average relay (or a random one when exploring)."""
        url = normalize_url(url)
        relays = self._viable_relays(url)
        if not relays:
            return None
        if explore and len(relays) > 1:
            return self.rng.choice(relays)
        return min(relays, key=lambda t: self._tracker.estimate(t.name, url))

    # -- the selection entry point ---------------------------------------------

    def choose(self, url: str, stages: Sequence[BlockType]) -> Optional[Transport]:
        """Pick the approach for one access to a blocked URL.

        Tracks per-URL access counts internally to honour the every-n-th
        exploration rule.
        """
        url = normalize_url(url)
        count = self._access_counts.get(url, 0) + 1
        self._access_counts[url] = count

        # Local fixes always win when one defeats the observed blocking
        # (§4.3.2: "we always prefer local-fixes over relay-based
        # approaches").  Exploration applies among relays only.
        fix = self.local_fix_for(url, stages)
        if fix is not None:
            return fix
        explore = count % self.config.explore_every_n == 0
        return self.relay_for(url, explore=explore)
