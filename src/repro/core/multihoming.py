"""Multihoming detection and strategy pinning (§4.4).

A multihomed access network maps flows randomly across providers.  If one
provider blocks a URL and another does not, naive caching oscillates
between "blocked" and "not-blocked", alternating cheap and expensive
fetches.  C-Saw:

1. detects multihoming by periodically probing the apparent ASN — more
   than one ASN over a short window ⇒ multihomed;
2. once multihomed, *pins* each URL's treatment to the stricter
   observation: a blocked record is not downgraded by a single direct
   success (which may just have ridden the non-filtering provider), and
   stage evidence accumulates across providers so the circumvention
   strategy matches the strictest censor.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Set, Tuple

from ..simnet.flow import FlowContext
from ..simnet.topology import AccessNetwork
from ..simnet.world import World
from .localdb import LocalDatabase
from .records import BlockStatus, BlockType

__all__ = ["MultihomingManager"]


class MultihomingManager:
    """ASN probing plus the blocked-record pinning rule."""

    def __init__(
        self,
        world: World,
        access: AccessNetwork,
        probe_interval: float = 60.0,
        window: int = 8,
        rng_stream: str = "multihoming",
    ):
        if window < 2:
            raise ValueError("window must cover at least two probes")
        self.world = world
        self.access = access
        self.probe_interval = probe_interval
        self.window = window
        self.rng = world.rngs.stream(rng_stream)
        self._observations: Deque[Tuple[float, int]] = deque(maxlen=window)
        self.probes = 0

    # -- detection ---------------------------------------------------------

    def probe_once(self, ctx: FlowContext) -> Generator:
        """Process: one ASN lookup (e.g. an ip-to-ASN service round trip).

        Each probe rides a *fresh* flow, so a multihomed network shows its
        different providers across probes.
        """
        env = self.world.env
        flow_isp = self.access.pick_isp(self.rng)
        # One round trip to a whois/ASN service.
        yield env.timeout(0.05 + ctx.access.access_rtt)
        self._observations.append((env.now, flow_isp.asn))
        self.probes += 1
        return flow_isp.asn

    def run_periodic(self, ctx: FlowContext, until: float) -> Generator:
        """Background process: probe every ``probe_interval`` seconds."""
        env = self.world.env
        while env.now < until:
            yield env.timeout(self.probe_interval)
            yield from self.probe_once(ctx)

    @property
    def observed_asns(self) -> Set[int]:
        return {asn for _t, asn in self._observations}

    @property
    def is_multihomed(self) -> bool:
        return len(self.observed_asns) > 1

    # -- strategy pinning -------------------------------------------------------

    def adjust_measurement(
        self,
        local_db: LocalDatabase,
        url: str,
        status: BlockStatus,
        stages: List[BlockType],
    ) -> Tuple[BlockStatus, List[BlockType]]:
        """Pin to the stricter observation when multihomed.

        A NOT_BLOCKED result against an existing BLOCKED record is
        discarded (the flow likely rode the non-filtering provider);
        blocked results merge stage evidence with the record so the
        strictest blocking drives circumvention choice.
        """
        if not self.is_multihomed:
            return status, stages
        existing_status, record = local_db.lookup(url)
        if existing_status is not BlockStatus.BLOCKED or record is None:
            return status, stages
        if status is BlockStatus.NOT_BLOCKED:
            return BlockStatus.BLOCKED, list(record.stages)
        merged = list(record.stages)
        for stage in stages:
            if stage not in merged:
                merged.append(stage)
        return BlockStatus.BLOCKED, merged
