"""URL record vocabulary: blocking status, blocking types, DB records.

Mirrors Table 3 of the paper: each local_DB record tracks the URL, the AS
it was measured from, the measurement time, the blocking status, and one
blocking type per *stage* (multi-stage blocking — e.g. ISP-B's DNS
blocking followed by HTTP/HTTPS drops — fills several stage slots).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

__all__ = [
    "BlockStatus",
    "BlockType",
    "URLRecord",
    "encode_stages",
    "decode_stages",
]


class BlockStatus(enum.Enum):
    NOT_MEASURED = "not-measured"
    BLOCKED = "blocked"
    NOT_BLOCKED = "not-blocked"


class BlockType(enum.Enum):
    """Symptom-level blocking type, as observed on the direct path."""

    DNS_TIMEOUT = "dns-timeout"  # "No DNS" in Figure 2
    DNS_NXDOMAIN = "dns-nxdomain"
    DNS_SERVFAIL = "dns-servfail"
    DNS_REFUSED = "dns-refused"
    DNS_REDIRECT = "dns-redirect"  # "DNS Redir"
    IP_TIMEOUT = "tcp-timeout"  # "No HTTP Resp" / TCP connection timeout
    IP_RST = "tcp-rst"  # "RST"
    HTTP_TIMEOUT = "http-get-timeout"
    HTTP_RST = "http-rst"
    BLOCK_PAGE = "block-page"  # "Block Page w/o Redir" or via redirect
    SNI_TIMEOUT = "sni-timeout"
    SNI_RST = "sni-rst"
    # The *content provider* withholds content from the client's region
    # (HTTP 451-style geo filtering, §8) — not on-path censorship, but
    # circumventable the same way: through a relay outside the region.
    SERVER_FILTERING = "server-filtering"

    @property
    def stage(self) -> str:
        """Where the symptom appears: dns | ip | http | tls | server."""
        name = self.value
        if name.startswith("dns"):
            return "dns"
        if name.startswith("tcp"):
            return "ip"
        if name.startswith("sni"):
            return "tls"
        if name.startswith("server"):
            return "server"
        return "http"

    @property
    def hostname_scoped(self) -> bool:
        """True when the censor filters a hostname/IP, not a specific URL.

        DNS, IP, and SNI blocking cannot distinguish paths on the same
        host, so the aggregation policy collapses such records onto the
        base URL (§4.4).  Server-side geo filtering applies region-wide
        per provider, so it aggregates the same way.
        """
        return self.stage in ("dns", "ip", "tls", "server")


# -- compact stage-list codec (columnar sync wire format) ----------------------
#
# A stage list travels as one small integer: each stage is a 4-bit
# nibble (1-based index into BlockType definition order, 0 terminates),
# most-recently-appended stage in the low nibble.  The encoding is
# *order-preserving* — decode returns the exact observation order the
# reporter recorded — which is what lets the batched delta-sync path
# rebuild entries bit-identical to the per-row object path.

_BLOCK_TYPES: tuple = ()  # filled below, after the enum exists
_STAGE_NIBBLE: dict = {}


def encode_stages(stages) -> int:
    """Pack an ordered stage list into one int (13 types → 4 bits each)."""
    code = 0
    nibble = _STAGE_NIBBLE
    for stage in stages:
        code = (code << 4) | nibble[stage]
    return code


def decode_stages(code: int) -> List[BlockType]:
    """Unpack :func:`encode_stages` output, restoring observation order."""
    stages: List[BlockType] = []
    types = _BLOCK_TYPES
    while code:
        stages.append(types[(code & 0xF) - 1])
        code >>= 4
    stages.reverse()
    return stages


@dataclass
class URLRecord:
    """One local_DB entry (Table 3)."""

    url: str
    asn: int
    measured_at: float  # T_m
    status: BlockStatus
    stages: List[BlockType] = field(default_factory=list)
    global_posted: bool = False

    def is_expired(self, now: float, ttl: float) -> bool:
        return now - self.measured_at > ttl

    @property
    def hostname_scoped(self) -> bool:
        return any(stage.hostname_scoped for stage in self.stages)

    def merge_stages(self, other_stages: List[BlockType]) -> None:
        """Union in stages observed by another measurement, stable order."""
        for stage in other_stages:
            if stage not in self.stages:
                self.stages.append(stage)

    def __repr__(self) -> str:
        kinds = ",".join(s.value for s in self.stages) or "-"
        return (
            f"URLRecord({self.url!r}, AS{self.asn}, {self.status.value}, "
            f"[{kinds}], t={self.measured_at:.1f})"
        )


_BLOCK_TYPES = tuple(BlockType)
assert len(_BLOCK_TYPES) <= 15, "stage nibble codec needs BlockType to fit 4 bits"
_STAGE_NIBBLE = {stage: i + 1 for i, stage in enumerate(_BLOCK_TYPES)}
