"""In-line blocking detection on the direct path (Figure 4).

The flowchart, as implemented — one named stage per step, each emitting
``begin``/``end``/``evidence`` events onto the request's
:class:`~repro.core.trace.SessionTrace`:

1. ``local-dns``: resolve via the local (ISP) resolver.  On failure or a
   suspicious answer, re-resolve via the global/public DNS (GDNS) in a
   ``global-dns`` span:
   - local fails, GDNS answers → DNS blocking (continue with the GDNS
     address to expose multi-stage blocking);
   - both fail identically → the site genuinely does not resolve: *no
     blocking* (a network problem is not censorship).
2. ``tcp``: connect: timeout → IP blocking (blackhole), reset → IP
   blocking (RST injection).
3. ``tls`` (HTTPS only): handshake: timeout/reset → SNI blocking.
4. ``http``: send the GET: timeout → HTTP blocking (dropped GET), reset
   → HTTP blocking (RST).  Redirect hops stay inside this span.
5. ``blockpage-phase1``: got a page → phase-1 block-page heuristic.  A
   suspected block page is *tentatively* blocked pending phase 2 (the
   measurement session owns the circumvented response needed for the
   size comparison).

A DNS answer pointing into private address space is treated as a DNS
redirect; if the page it serves is a block page (or nothing listens),
DNS blocking is confirmed.

Failure→symptom mapping lives in :mod:`repro.core.taxonomy`; this module
holds only the flowchart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..simnet.dns import DnsError, resolve
from ..simnet.flow import FlowContext
from ..simnet.http import HttpResponse, HttpTimeout, http_exchange
from ..simnet.ipaddr import is_private
from ..simnet.tcp import ConnectionReset, ConnectTimeout, TcpError, tcp_connect
from ..simnet.tls import TlsReset, TlsTimeout, tls_handshake
from ..simnet.world import World
from ..urlkit import parse_url
from .blockpage import BlockpageDetector
from .records import BlockStatus, BlockType
from .taxonomy import block_type_for, dns_block_type
from .trace import (
    STAGE_BLOCKPAGE_PHASE1,
    STAGE_GLOBAL_DNS,
    STAGE_HTTP,
    STAGE_LOCAL_DNS,
    STAGE_TCP,
    STAGE_TLS,
    SessionTrace,
)

__all__ = ["DetectionOutcome", "measure_direct_path"]


@dataclass
class DetectionOutcome:
    """What the direct-path measurement concluded."""

    url: str
    status: BlockStatus
    stages: List[BlockType] = field(default_factory=list)
    response: Optional[HttpResponse] = None
    error: Optional[Exception] = None
    started: float = 0.0
    finished: float = 0.0
    detection_time: float = 0.0  # time until the classification was made
    suspected_blockpage: bool = False  # phase-1 hit awaiting phase-2 confirm
    trace: Optional[SessionTrace] = None  # full per-stage event log

    @property
    def blocked(self) -> bool:
        return self.status is BlockStatus.BLOCKED

    @property
    def elapsed(self) -> float:
        return self.finished - self.started

    def __repr__(self) -> str:
        kinds = ",".join(s.value for s in self.stages) or "-"
        return (
            f"DetectionOutcome({self.url!r}, {self.status.value}, [{kinds}], "
            f"detect={self.detection_time:.2f}s)"
        )


class _DirectPathRun:
    """Mutable state threaded through one walk of the flowchart.

    Stage methods return a terminal :class:`DetectionOutcome` or ``None``
    to continue; :meth:`run` chains them.  The decomposition is pure code
    motion from the old monolithic generator — the yield sequence (and
    therefore every engine-event creation) is unchanged.
    """

    __slots__ = (
        "world", "env", "ctx", "url", "detector", "max_redirects",
        "first_byte", "trace", "parsed", "started", "stages",
        "evidence_at", "dns_suspect", "ip", "conn", "response",
    )

    def __init__(self, world, ctx, url, detector, max_redirects,
                 first_byte, trace):
        self.world = world
        self.env = world.env
        self.ctx = ctx
        self.url = url
        self.detector = detector
        self.max_redirects = max_redirects
        self.first_byte = first_byte
        self.trace = trace
        self.parsed = parse_url(url)
        self.started = self.env.now
        self.stages: List[BlockType] = []
        # Detection time = the moment the *last* piece of blocking
        # evidence appeared (Table 5 semantics): a DNS-only block is
        # "detected" when the GDNS answer contradicts the local resolver,
        # even though the flow then continues to fetch the page.
        self.evidence_at: List[float] = []
        self.dns_suspect: Optional[BlockType] = None
        self.ip: Optional[str] = None
        self.conn = None
        self.response: Optional[HttpResponse] = None

    def note_evidence(self, stage_label: str, block_type: BlockType) -> None:
        self.stages.append(block_type)
        self.evidence_at.append(self.env.now)
        self.trace.evidence(stage_label, block_type)

    def outcome(
        self,
        status: BlockStatus,
        *,
        response: Optional[HttpResponse] = None,
        error: Optional[Exception] = None,
        detection_at: Optional[float] = None,
        suspected: bool = False,
    ) -> DetectionOutcome:
        if detection_at is not None:
            decided = detection_at
        elif self.evidence_at:
            decided = self.evidence_at[-1]
        else:
            decided = self.env.now
        return DetectionOutcome(
            url=self.url,
            status=status,
            stages=list(self.stages),
            response=response,
            error=error,
            started=self.started,
            finished=self.env.now,
            detection_time=decided - self.started,
            suspected_blockpage=suspected,
            trace=self.trace,
        )

    def run(self) -> Generator:
        terminal = yield from self._stage_dns()
        if terminal is None:
            terminal = yield from self._stage_tcp()
        if terminal is None:
            terminal = yield from self._stage_tls()
        if terminal is None:
            terminal = yield from self._stage_http()
        if terminal is None:
            terminal = self._stage_blockpage_phase1()
        return terminal

    # ---- stage 1: DNS (local, then GDNS cross-check) ------------------------

    def _stage_dns(self) -> Generator:
        world, env, ctx, parsed = self.world, self.env, self.ctx, self.parsed
        # Trace calls throughout the stages are guarded at the call site:
        # a disabled trace then costs one local predicate per stage
        # instead of a begin/end call pair (the TraceMode.OFF budget).
        trace = self.trace if self.trace.enabled else None
        span = trace.begin(STAGE_LOCAL_DNS) if trace else 0.0
        try:
            ips = yield from resolve(
                env, world.network, ctx, parsed.host,
                world.isp_resolver(ctx), world.dns_config,
            )
            self.ip = ips[0]
            if trace:
                trace.end(STAGE_LOCAL_DNS, span)
        except DnsError as local_error:
            if trace:
                trace.end(
                    STAGE_LOCAL_DNS, span, detail=type(local_error).__name__
                )
            if world.public_resolver is None:
                # No GDNS available: treat the local failure as blocking
                # evidence (cannot distinguish a dead domain).
                self.note_evidence(
                    STAGE_LOCAL_DNS, dns_block_type(local_error)
                )
                return self.outcome(BlockStatus.BLOCKED, error=local_error)
            gspan = trace.begin(STAGE_GLOBAL_DNS) if trace else 0.0
            try:
                ips = yield from resolve(
                    env, world.network, ctx, parsed.host,
                    world.public_resolver, world.dns_config,
                )
            except DnsError as gdns_error:
                # Both resolvers fail: the domain genuinely does not resolve.
                if trace:
                    trace.end(
                        STAGE_GLOBAL_DNS, gspan,
                        detail=type(gdns_error).__name__,
                    )
                return self.outcome(BlockStatus.NOT_BLOCKED, error=gdns_error)
            if trace:
                trace.end(STAGE_GLOBAL_DNS, gspan)
            # GDNS answered where the local resolver failed: DNS blocking.
            self.note_evidence(STAGE_LOCAL_DNS, dns_block_type(local_error))
            self.dns_suspect = self.stages[-1]
            self.ip = ips[0]

        # A resolution into private space is a DNS redirect to a local box.
        if self.dns_suspect is None and is_private(self.ip):
            self.note_evidence(STAGE_LOCAL_DNS, BlockType.DNS_REDIRECT)
            self.dns_suspect = BlockType.DNS_REDIRECT
            if world.public_resolver is not None:
                gspan = trace.begin(STAGE_GLOBAL_DNS) if trace else 0.0
                try:
                    ips = yield from resolve(
                        env, world.network, ctx, parsed.host,
                        world.public_resolver, world.dns_config,
                    )
                    self.ip = ips[0]  # continue with the honest address
                except DnsError:
                    pass  # fall through with the redirect address
                if trace:
                    trace.end(STAGE_GLOBAL_DNS, gspan)
        return None

    # ---- stage 2: TCP --------------------------------------------------------

    def _stage_tcp(self) -> Generator:
        world, env = self.world, self.env
        trace = self.trace if self.trace.enabled else None
        span = trace.begin(STAGE_TCP) if trace else 0.0
        try:
            self.conn = yield from tcp_connect(
                env, world.network, self.ctx, self.ip, self.parsed.port,
                world.tcp_config,
            )
        except (ConnectTimeout, ConnectionReset) as error:
            if trace:
                trace.end(STAGE_TCP, span, detail=type(error).__name__)
            if self.dns_suspect is BlockType.DNS_REDIRECT and is_private(self.ip):
                # We are still holding the forged address (on-path injection
                # defeats the GDNS retry too): the dead connect is a symptom
                # of the DNS redirect, not separate IP blocking.
                return self.outcome(BlockStatus.BLOCKED, error=error)
            self.note_evidence(STAGE_TCP, block_type_for(error))
            return self.outcome(BlockStatus.BLOCKED, error=error)
        if trace:
            trace.end(STAGE_TCP, span)
        return None

    # ---- stage 3: TLS (https only) -------------------------------------------

    def _stage_tls(self) -> Generator:
        if self.parsed.scheme != "https":
            return None
        world, env = self.world, self.env
        trace = self.trace if self.trace.enabled else None
        span = trace.begin(STAGE_TLS) if trace else 0.0
        try:
            yield from tls_handshake(
                env, self.ctx, self.conn, self.parsed.host, world.tls_config
            )
        except (TlsTimeout, TlsReset) as error:
            if trace:
                trace.end(STAGE_TLS, span, detail=type(error).__name__)
            self.note_evidence(STAGE_TLS, block_type_for(error))
            return self.outcome(BlockStatus.BLOCKED, error=error)
        if trace:
            trace.end(STAGE_TLS, span)
        return None

    # ---- stage 4: HTTP (incl. redirect chase) --------------------------------

    def _stage_http(self) -> Generator:
        world, env, ctx = self.world, self.env, self.ctx
        trace = self.trace if self.trace.enabled else None
        span = trace.begin(STAGE_HTTP) if trace else 0.0
        current = self.parsed
        for _hop in range(self.max_redirects + 1):
            try:
                self.response = yield from http_exchange(
                    env, world.network, world.web, ctx, self.conn,
                    current.scheme, current.host, current.path,
                    world.http_config, first_byte=self.first_byte,
                )
            except HttpTimeout as error:
                if trace:
                    trace.end(STAGE_HTTP, span, detail="HttpTimeout")
                self.note_evidence(STAGE_HTTP, BlockType.HTTP_TIMEOUT)
                return self.outcome(BlockStatus.BLOCKED, error=error)
            except ConnectionReset as error:
                if trace:
                    trace.end(STAGE_HTTP, span, detail="ConnectionReset")
                self.note_evidence(STAGE_HTTP, BlockType.HTTP_RST)
                return self.outcome(BlockStatus.BLOCKED, error=error)
            if self.response.is_redirect and self.response.location:
                current = parse_url(self.response.location)
                if trace:
                    trace.mark(STAGE_HTTP, "redirect to " + current.host)
                if _looks_like_ip(current.host):
                    redirect_ip = current.host
                else:
                    try:
                        redirect_ip = yield from _redirect_resolve(
                            world, ctx, current.host
                        )
                    except DnsError as error:
                        if trace:
                            trace.end(
                                STAGE_HTTP, span, detail=type(error).__name__
                            )
                        self.note_evidence(STAGE_HTTP, dns_block_type(error))
                        return self.outcome(BlockStatus.BLOCKED, error=error)
                try:
                    self.conn = yield from tcp_connect(
                        env, world.network, ctx, redirect_ip, current.port,
                        world.tcp_config,
                    )
                except TcpError as error:
                    if trace:
                        trace.end(
                            STAGE_HTTP, span, detail=type(error).__name__
                        )
                    self.note_evidence(STAGE_HTTP, BlockType.IP_TIMEOUT)
                    return self.outcome(BlockStatus.BLOCKED, error=error)
                continue
            break
        if trace:
            trace.end(STAGE_HTTP, span)
        return None

    # ---- stage 5: block-page detection (phase 1) -----------------------------

    def _stage_blockpage_phase1(self) -> DetectionOutcome:
        response = self.response
        assert response is not None
        trace = self.trace if self.trace.enabled else None
        span = trace.begin(STAGE_BLOCKPAGE_PHASE1) if trace else 0.0
        if response.status == 451:
            # The *server* withheld the content from this region (§8): an
            # explicit signal, no phase-2 comparison needed.  Circumventable
            # only through a relay whose vantage lies outside the region.
            self.note_evidence(
                STAGE_BLOCKPAGE_PHASE1, BlockType.SERVER_FILTERING
            )
            if trace:
                trace.end(
                    STAGE_BLOCKPAGE_PHASE1, span, detail="status 451"
                )
            return self.outcome(BlockStatus.BLOCKED, response=response)
        if self.detector.phase1(response):
            self.note_evidence(STAGE_BLOCKPAGE_PHASE1, BlockType.BLOCK_PAGE)
            if trace:
                trace.end(
                    STAGE_BLOCKPAGE_PHASE1, span, detail="phase-1 hit"
                )
            return self.outcome(
                BlockStatus.BLOCKED, response=response, suspected=True
            )
        if trace:
            trace.end(STAGE_BLOCKPAGE_PHASE1, span)

        if self.dns_suspect is BlockType.DNS_REDIRECT:
            # The redirect address served an ordinary page after all — treat
            # as geo-DNS/CDN behaviour, not blocking.
            self.stages.remove(BlockType.DNS_REDIRECT)
            if trace:
                trace.mark(
                    STAGE_LOCAL_DNS, "dns-redirect withdrawn: real page served"
                )
            self.dns_suspect = None
        if self.dns_suspect is not None:
            # Local resolver lied but the page loads fine via the GDNS
            # address: still DNS blocking (the user could not have loaded
            # it unaided).
            return self.outcome(BlockStatus.BLOCKED, response=response)

        return self.outcome(BlockStatus.NOT_BLOCKED, response=response)


def measure_direct_path(
    world: World,
    ctx: FlowContext,
    url: str,
    detector: Optional[BlockpageDetector] = None,
    max_redirects: int = 3,
    first_byte=None,
    trace: Optional[SessionTrace] = None,
    actor: str = "direct",
) -> Generator:
    """Process implementing the Figure-4 flowchart; returns DetectionOutcome.

    ``first_byte`` (optional Event) fires when the direct path starts
    answering — used by the redundancy stagger to skip the duplicate.
    ``trace`` threads an existing :class:`SessionTrace` through the
    stages; callers that pass none still get a per-run trace on the
    returned outcome.
    """
    detector = detector or BlockpageDetector()
    if trace is None:
        trace = SessionTrace(lambda: world.env.now, url=url, actor=actor)
    run = _DirectPathRun(
        world, ctx, url, detector, max_redirects, first_byte, trace
    )
    # Hand back the run generator directly instead of delegating to it:
    # the setup above is pure (no engine events, no RNG), so running it
    # at call time instead of first resume is behavior-identical, and it
    # keeps detection one yield-from frame shallower.
    return run.run()


def _looks_like_ip(host: str) -> bool:
    parts = host.split(".")
    return len(parts) == 4 and all(p.isdigit() for p in parts)


def _redirect_resolve(world: World, ctx: FlowContext, host: str) -> Generator:
    """Resolve a redirect target's host (ISP resolver)."""
    ips = yield from resolve(
        world.env, world.network, ctx, host,
        world.isp_resolver(ctx), world.dns_config,
    )
    return ips[0]
