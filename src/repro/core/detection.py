"""In-line blocking detection on the direct path (Figure 4).

The flowchart, as implemented:

1. Resolve via the local (ISP) resolver.  On failure or a suspicious
   answer, re-resolve via the global/public DNS (GDNS):
   - local fails, GDNS answers → DNS blocking (continue with the GDNS
     address to expose multi-stage blocking);
   - both fail identically → the site genuinely does not resolve: *no
     blocking* (a network problem is not censorship).
2. TCP connect: timeout → IP blocking (blackhole), reset → IP blocking
   (RST injection).
3. HTTPS only: TLS handshake: timeout/reset → SNI blocking.
4. Send the GET: timeout → HTTP blocking (dropped GET), reset → HTTP
   blocking (RST).
5. Got a page → phase-1 block-page heuristic.  A suspected block page is
   *tentatively* blocked pending phase 2 (the measurement module owns the
   circumvented response needed for the size comparison).

A DNS answer pointing into private address space is treated as a DNS
redirect; if the page it serves is a block page (or nothing listens), DNS
blocking is confirmed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..simnet.dns import (
    DnsError,
    DnsTimeout,
    NxDomain,
    Refused,
    ServFail,
    resolve,
)
from ..simnet.flow import FlowContext
from ..simnet.http import HttpResponse, HttpTimeout, http_exchange
from ..simnet.ipaddr import is_private
from ..simnet.tcp import ConnectionReset, ConnectTimeout, TcpError, tcp_connect
from ..simnet.tls import TlsReset, TlsTimeout, tls_handshake
from ..simnet.world import World
from ..urlkit import parse_url
from .blockpage import BlockpageDetector
from .records import BlockStatus, BlockType

__all__ = ["DetectionOutcome", "measure_direct_path"]

_DNS_ERROR_TYPES = {
    DnsTimeout: BlockType.DNS_TIMEOUT,
    NxDomain: BlockType.DNS_NXDOMAIN,
    ServFail: BlockType.DNS_SERVFAIL,
    Refused: BlockType.DNS_REFUSED,
}


@dataclass
class DetectionOutcome:
    """What the direct-path measurement concluded."""

    url: str
    status: BlockStatus
    stages: List[BlockType] = field(default_factory=list)
    response: Optional[HttpResponse] = None
    error: Optional[Exception] = None
    started: float = 0.0
    finished: float = 0.0
    detection_time: float = 0.0  # time until the classification was made
    suspected_blockpage: bool = False  # phase-1 hit awaiting phase-2 confirm

    @property
    def blocked(self) -> bool:
        return self.status is BlockStatus.BLOCKED

    @property
    def elapsed(self) -> float:
        return self.finished - self.started

    def __repr__(self) -> str:
        kinds = ",".join(s.value for s in self.stages) or "-"
        return (
            f"DetectionOutcome({self.url!r}, {self.status.value}, [{kinds}], "
            f"detect={self.detection_time:.2f}s)"
        )


def _dns_block_type(error: DnsError) -> BlockType:
    for cls, block_type in _DNS_ERROR_TYPES.items():
        if isinstance(error, cls):
            return block_type
    return BlockType.DNS_TIMEOUT


def measure_direct_path(
    world: World,
    ctx: FlowContext,
    url: str,
    detector: Optional[BlockpageDetector] = None,
    max_redirects: int = 3,
    first_byte=None,
) -> Generator:
    """Process implementing the Figure-4 flowchart; returns DetectionOutcome.

    ``first_byte`` (optional Event) fires when the direct path starts
    answering — used by the redundancy stagger to skip the duplicate.
    """
    env = world.env
    detector = detector or BlockpageDetector()
    started = env.now
    parsed = parse_url(url)
    stages: List[BlockType] = []
    # Detection time = the moment the *last* piece of blocking evidence
    # appeared (Table 5 semantics): a DNS-only block is "detected" when the
    # GDNS answer contradicts the local resolver, even though the flow then
    # continues to fetch the page for the user.
    evidence_at: List[float] = []

    def note_evidence(block_type: BlockType) -> None:
        stages.append(block_type)
        evidence_at.append(env.now)

    def outcome(
        status: BlockStatus,
        *,
        response: Optional[HttpResponse] = None,
        error: Optional[Exception] = None,
        detection_at: Optional[float] = None,
        suspected: bool = False,
    ) -> DetectionOutcome:
        if detection_at is not None:
            decided = detection_at
        elif evidence_at:
            decided = evidence_at[-1]
        else:
            decided = env.now
        return DetectionOutcome(
            url=url,
            status=status,
            stages=list(stages),
            response=response,
            error=error,
            started=started,
            finished=env.now,
            detection_time=decided - started,
            suspected_blockpage=suspected,
        )

    # ---- stage 1: DNS -------------------------------------------------------
    dns_suspect: Optional[BlockType] = None
    ip: Optional[str] = None
    try:
        ips = yield from resolve(
            env, world.network, ctx, parsed.host,
            world.isp_resolver(ctx), world.dns_config,
        )
        ip = ips[0]
    except DnsError as error:
        local_error = error
        if world.public_resolver is None:
            # No GDNS available: treat the local failure as blocking
            # evidence (cannot distinguish a dead domain).
            note_evidence(_dns_block_type(local_error))
            return outcome(BlockStatus.BLOCKED, error=local_error)
        try:
            ips = yield from resolve(
                env, world.network, ctx, parsed.host,
                world.public_resolver, world.dns_config,
            )
        except DnsError as gdns_error:
            # Both resolvers fail: the domain genuinely does not resolve.
            return outcome(BlockStatus.NOT_BLOCKED, error=gdns_error)
        # GDNS answered where the local resolver failed: DNS blocking.
        note_evidence(_dns_block_type(local_error))
        dns_suspect = stages[-1]
        ip = ips[0]

    # A resolution into private space is a DNS redirect to a local box.
    if dns_suspect is None and is_private(ip):
        note_evidence(BlockType.DNS_REDIRECT)
        dns_suspect = BlockType.DNS_REDIRECT
        if world.public_resolver is not None:
            try:
                ips = yield from resolve(
                    env, world.network, ctx, parsed.host,
                    world.public_resolver, world.dns_config,
                )
                ip = ips[0]  # continue with the honest address
            except DnsError:
                pass  # fall through with the redirect address

    # ---- stage 2: TCP -------------------------------------------------------
    try:
        conn = yield from tcp_connect(
            env, world.network, ctx, ip, parsed.port, world.tcp_config
        )
    except (ConnectTimeout, ConnectionReset) as error:
        if dns_suspect is BlockType.DNS_REDIRECT and is_private(ip):
            # We are still holding the forged address (on-path injection
            # defeats the GDNS retry too): the dead connect is a symptom
            # of the DNS redirect, not separate IP blocking.
            return outcome(BlockStatus.BLOCKED, error=error)
        note_evidence(
            BlockType.IP_TIMEOUT
            if isinstance(error, ConnectTimeout)
            else BlockType.IP_RST
        )
        return outcome(BlockStatus.BLOCKED, error=error)

    # ---- stage 3: TLS (https only) ------------------------------------------
    if parsed.scheme == "https":
        try:
            yield from tls_handshake(env, ctx, conn, parsed.host, world.tls_config)
        except TlsTimeout as error:
            note_evidence(BlockType.SNI_TIMEOUT)
            return outcome(BlockStatus.BLOCKED, error=error)
        except TlsReset as error:
            note_evidence(BlockType.SNI_RST)
            return outcome(BlockStatus.BLOCKED, error=error)

    # ---- stage 4: HTTP ------------------------------------------------------
    response: Optional[HttpResponse] = None
    current = parsed
    for _hop in range(max_redirects + 1):
        try:
            response = yield from http_exchange(
                env, world.network, world.web, ctx, conn,
                current.scheme, current.host, current.path, world.http_config,
                first_byte=first_byte,
            )
        except HttpTimeout as error:
            note_evidence(BlockType.HTTP_TIMEOUT)
            return outcome(BlockStatus.BLOCKED, error=error)
        except ConnectionReset as error:
            note_evidence(BlockType.HTTP_RST)
            return outcome(BlockStatus.BLOCKED, error=error)
        if response.is_redirect and response.location:
            current = parse_url(response.location)
            if _looks_like_ip(current.host):
                redirect_ip = current.host
            else:
                try:
                    redirect_ip = yield from _redirect_resolve(
                        world, ctx, current.host
                    )
                except DnsError as error:
                    note_evidence(_dns_block_type(error))
                    return outcome(BlockStatus.BLOCKED, error=error)
            try:
                conn = yield from tcp_connect(
                    env, world.network, ctx, redirect_ip, current.port,
                    world.tcp_config,
                )
            except TcpError as error:
                note_evidence(BlockType.IP_TIMEOUT)
                return outcome(BlockStatus.BLOCKED, error=error)
            continue
        break

    # ---- stage 5: block-page detection (phase 1) -----------------------------
    assert response is not None
    if response.status == 451:
        # The *server* withheld the content from this region (§8): an
        # explicit signal, no phase-2 comparison needed.  Circumventable
        # only through a relay whose vantage lies outside the region.
        note_evidence(BlockType.SERVER_FILTERING)
        return outcome(BlockStatus.BLOCKED, response=response)
    if detector.phase1(response):
        note_evidence(BlockType.BLOCK_PAGE)
        return outcome(
            BlockStatus.BLOCKED, response=response, suspected=True
        )

    if dns_suspect is BlockType.DNS_REDIRECT:
        # The redirect address served an ordinary page after all — treat as
        # geo-DNS/CDN behaviour, not blocking.
        stages.remove(BlockType.DNS_REDIRECT)
        dns_suspect = None
    if dns_suspect is not None:
        # Local resolver lied but the page loads fine via the GDNS address:
        # still DNS blocking (the user could not have loaded it unaided).
        return outcome(BlockStatus.BLOCKED, response=response)

    return outcome(BlockStatus.NOT_BLOCKED, response=response)


def _looks_like_ip(host: str) -> bool:
    parts = host.split(".")
    return len(parts) == 4 and all(p.isdigit() for p in parts)


def _redirect_resolve(world: World, ctx: FlowContext, host: str) -> Generator:
    """Resolve a redirect target's host (ISP resolver)."""
    ips = yield from resolve(
        world.env, world.network, ctx, host,
        world.isp_resolver(ctx), world.dns_config,
    )
    return ips[0]
