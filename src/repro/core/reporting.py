"""Client↔global_DB synchronisation (§4.2, §5).

Clients register once (CAPTCHA-gated), then periodically:

- upload reports about blocked URLs — carried over Tor so the censor
  cannot identify contributors (no PII ever leaves the client);
- download the blocked-URL list for their own AS into a local
  :class:`GlobalView`, so crowdsourced knowledge is available before the
  first local measurement.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from ..circumvent.base import Transport, fetch_pipeline
from ..simnet.flow import FlowContext
from ..simnet.world import World
from ..urlkit import base_url, normalize_url
from .config import CSawConfig
from .globaldb import GlobalEntry, ServerDB, SyncBatch, SyncResult
from .localdb import LocalDatabase
from .records import decode_stages

__all__ = ["GlobalView", "ReportingService", "ensure_collector"]

COLLECTOR_HOSTNAME = "collector.csaw-metrics.io"


def ensure_collector(world: World) -> str:
    """Create the measurement-collection endpoint site (idempotent)."""
    if world.web.site_for(COLLECTOR_HOSTNAME) is None:
        site = world.web.add_site(
            COLLECTOR_HOSTNAME, location="us-east", supports_https=True
        )
        world.web.add_page(f"https://{COLLECTOR_HOSTNAME}/", size_bytes=600)
    return f"https://{COLLECTOR_HOSTNAME}/"


class GlobalView:
    """Client-side cache of the AS's blocked list from the global_DB.

    Tracks the server-side shard version it last saw (plus which AS that
    version belongs to), so the next pull can request only the diff.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, GlobalEntry] = {}
        self.last_synced: Optional[float] = None
        self.version: int = 0
        self.synced_asn: Optional[int] = None

    def __len__(self) -> int:
        return len(self._entries)

    def replace(self, entries: List[GlobalEntry], now: float) -> None:
        self._entries = {entry.url: entry for entry in entries}
        self.last_synced = now
        self.version = 0
        self.synced_asn = None

    def since_version(self, asn: int) -> Optional[int]:
        """What to present to the server: our version, or None (full pull)
        when we have never synced this AS — e.g. right after mobility."""
        return self.version if self.synced_asn == asn else None

    def apply_sync(self, result: SyncResult, now: float) -> None:
        """Fold one :class:`SyncResult` into the cached view."""
        if result.full:
            self._entries = {entry.url: entry for entry in result.entries}
        else:
            for url in result.removed:
                self._entries.pop(url, None)
            for entry in result.entries:
                self._entries[entry.url] = entry
        self.version = result.version
        self.synced_asn = result.asn
        self.last_synced = now

    def apply_batch(self, batch: SyncBatch, now: float) -> None:
        """Fold one columnar :class:`SyncBatch` into the cached view.

        One pass over the parallel columns, rebuilding entries in place
        — bit-identical to :meth:`apply_sync` on the equivalent
        :class:`SyncResult` (the property tests enforce it).
        """
        asn = batch.asn
        columns = zip(
            batch.urls,
            batch.stage_codes,
            batch.measured_at,
            batch.posted_at,
            batch.first_measured_at,
            batch.reporter_uuids,
        )
        if batch.full:
            self._entries = {
                url: GlobalEntry(
                    url=url,
                    asn=asn,
                    stages=decode_stages(code),
                    measured_at=measured,
                    posted_at=posted,
                    last_uuid=uuid,
                    first_measured_at=first,
                )
                for url, code, measured, posted, first, uuid in columns
            }
        else:
            entries = self._entries
            for url in batch.removed:
                entries.pop(url, None)
            for url, code, measured, posted, first, uuid in columns:
                entries[url] = GlobalEntry(
                    url=url,
                    asn=asn,
                    stages=decode_stages(code),
                    measured_at=measured,
                    posted_at=posted,
                    last_uuid=uuid,
                    first_measured_at=first,
                )
        self.version = batch.version
        self.synced_asn = asn
        self.last_synced = now

    def lookup(self, url: str) -> Optional[GlobalEntry]:
        """Exact match first, then the URL's base (aggregated entries)."""
        url = normalize_url(url)
        found = self._entries.get(url)
        if found is not None:
            return found
        return self._entries.get(base_url(url))

    def urls(self) -> List[str]:
        return list(self._entries)


class ReportingService:
    """Registration, periodic report upload, periodic blocked-list pull."""

    def __init__(
        self,
        world: World,
        server: ServerDB,
        local_db: LocalDatabase,
        global_view: GlobalView,
        config: Optional[CSawConfig] = None,
        report_transport: Optional[Transport] = None,
        min_reporters: int = 1,
        min_votes: float = 0.0,
        plane=None,
    ):
        self.world = world
        self.server = server
        self.local_db = local_db
        self.global_view = global_view
        self.config = config or CSawConfig()
        self.report_transport = report_transport  # Tor, for anonymity
        self.min_reporters = min_reporters
        self.min_votes = min_votes
        # The measurement plane this client reports through; the default
        # is the in-browser C-Saw plane (imported lazily — the planes
        # package imports core modules).  Registration and every
        # uploaded ReportItem carry the plane's provenance tag.
        if plane is None:
            from ..planes.csaw import CSawBrowserPlane

            plane = CSawBrowserPlane(fraction=1.0)
        self.plane = plane
        self.uuid: Optional[str] = None
        self.reports_posted = 0
        self.downloads = 0
        self.full_syncs = 0
        self.delta_syncs = 0
        self.sync_rows_received = 0  # entries + removals over all pulls
        self.sync_bytes_received = 0  # estimated wire bytes over all pulls
        self._collector_url = ensure_collector(world)

    @property
    def registered(self) -> bool:
        return self.uuid is not None

    # -- RPC plumbing ---------------------------------------------------------

    def _rpc(self, ctx: FlowContext) -> Generator:
        """One round trip to the collection service.

        Over Tor when a report transport is configured (anonymity);
        otherwise a plain fetch.  The RPC outcome is the latency cost —
        the payloads themselves are exchanged with the in-process server.
        """
        if self.report_transport is not None:
            result = yield from self.report_transport.fetch(
                self.world, ctx, self._collector_url
            )
        else:
            result = yield from fetch_pipeline(
                self.world, ctx, self._collector_url, transport_name="report-rpc"
            )
        return result

    # -- operations --------------------------------------------------------------

    def register(self, ctx: FlowContext, captcha_passed: bool = True) -> Generator:
        """Process: solve the CAPTCHA, register, pull the first blocked list."""
        env = self.world.env
        # "No CAPTCHA reCAPTCHA" solve time for a human.
        yield env.timeout(ctx.rng.uniform(3.0, 12.0))
        rpc = yield from self._rpc(ctx)
        if rpc.failed:
            return None
        profile = self.plane.profile
        self.uuid = self.server.register(
            env.now,
            captcha_passed=captcha_passed,
            plane=profile.name,
            captcha_gated=profile.registered,
        )
        yield from self.download_blocked_list(ctx)
        return self.uuid

    def post_reports(self, ctx: FlowContext) -> Generator:
        """Process: upload pending blocked-URL records (over Tor)."""
        if self.uuid is None:
            raise RuntimeError("client not registered with the global DB")
        pending = self.local_db.pending_reports()
        if not pending:
            return 0
        rpc = yield from self._rpc(ctx)
        if rpc.failed:
            return 0  # retry at the next interval
        items = self.plane.report_items(pending)
        accepted = self.server.post_update(self.uuid, items, self.world.env.now)
        self.local_db.mark_posted([record.url for record in pending])
        self.reports_posted += accepted
        return accepted

    def download_blocked_list(self, ctx: FlowContext) -> Generator:
        """Process: pull this AS's blocked list into the global view.

        Presents the view's last-seen shard version so the server can
        answer with just the diff; the first pull (and any pull after
        mobility or server-side log truncation) transfers the full
        snapshot.
        """
        rpc = yield from self._rpc(ctx)
        if rpc.failed:
            return 0
        now = self.world.env.now
        asn = self.local_db.asn
        since = self.global_view.since_version(asn)
        if self.config.sync_wire_format == "columnar":
            batch = self.server.sync_batch_for_as(
                asn,
                now,
                since_version=since,
                min_reporters=self.min_reporters,
                min_votes=self.min_votes,
            )
            self.global_view.apply_batch(batch, now)
            received = len(batch.urls)
        else:
            batch = self.server.sync_for_as(
                asn,
                now,
                since_version=since,
                min_reporters=self.min_reporters,
                min_votes=self.min_votes,
            )
            self.global_view.apply_sync(batch, now)
            received = len(batch.entries)
        self.downloads += 1
        if batch.full:
            self.full_syncs += 1
        else:
            self.delta_syncs += 1
        self.sync_rows_received += batch.transferred
        self.sync_bytes_received += batch.wire_bytes
        return received

    def run_periodic(self, ctx: FlowContext, until: float) -> Generator:
        """Background process: report + download loops until ``until``."""
        env = self.world.env
        while env.now < until:
            delay = min(self.config.report_interval, self.config.download_interval)
            yield env.timeout(delay)
            if self.uuid is not None:
                yield from self.post_reports(ctx)
            yield from self.download_blocked_list(ctx)
