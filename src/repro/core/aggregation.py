"""URL aggregation for the local database (§4.4).

The policy, verbatim from the paper:

HTTP blocking:
  (a) base URL blocked → keep one record at the base; every derived URL is
      considered blocked;
  (b) derived URL blocked → its base (or sibling paths) may or may not be
      blocked; keep a record *for the derived URL*;
  (c) any URL found uncensored → keep a single record at the base URL.

IP / DNS / HTTPS(SNI) blocking filters a hostname or address, so a blocked
observation — even on a derived URL — collapses to a single base-URL
record.

Cases (b) and (c) together require longest-prefix matching to find the
correct status of a derived URL, which :class:`UrlPrefixIndex` provides.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..urlkit import parse_url
from .records import BlockStatus, BlockType

__all__ = ["storage_key", "UrlPrefixIndex"]


def storage_key(url: str, status: BlockStatus, stages: List[BlockType]) -> str:
    """Where a fresh measurement of ``url`` should be stored.

    Implements the per-blocking-type aggregation policy above.
    """
    parsed = parse_url(url)
    if status is BlockStatus.NOT_BLOCKED:
        return parsed.base().url  # case (c): one record at the base
    if status is BlockStatus.BLOCKED:
        if any(stage.hostname_scoped for stage in stages):
            return parsed.base().url  # DNS/IP/SNI: hostname-level blocking
        return parsed.url  # HTTP blocking, cases (a)/(b)
    return parsed.url  # NOT_MEASURED placeholder entries keep their key


class UrlPrefixIndex:
    """Longest-prefix lookup over stored URL keys, per origin.

    Keys are exact URLs; lookup walks from the full path toward the base
    URL, returning the first stored key.  Paths are matched on whole
    segments ("/a" is a prefix of "/a/b" but not of "/ab").
    """

    def __init__(self) -> None:
        # origin -> {path -> key url}
        self._by_origin: Dict[str, Dict[str, str]] = {}

    def __len__(self) -> int:
        return sum(len(paths) for paths in self._by_origin.values())

    def add(self, url: str) -> None:
        parsed = parse_url(url)
        self._by_origin.setdefault(parsed.origin, {})[parsed.path] = parsed.url

    def remove(self, url: str) -> None:
        parsed = parse_url(url)
        paths = self._by_origin.get(parsed.origin)
        if paths is not None:
            paths.pop(parsed.path, None)
            if not paths:
                del self._by_origin[parsed.origin]

    def keys_for_origin(self, url: str) -> List[str]:
        parsed = parse_url(url)
        return list(self._by_origin.get(parsed.origin, {}).values())

    def longest_prefix(self, url: str) -> Optional[str]:
        """The stored key whose path is the longest prefix of ``url``'s."""
        parsed = parse_url(url)
        paths = self._by_origin.get(parsed.origin)
        if not paths:
            return None
        for candidate in _prefix_walk(parsed.path):
            if candidate in paths:
                return paths[candidate]
        return None

    def exact(self, url: str) -> Optional[str]:
        parsed = parse_url(url)
        paths = self._by_origin.get(parsed.origin)
        if not paths:
            return None
        return paths.get(parsed.path)


def _prefix_walk(path: str) -> Iterable[str]:
    """Yield ``path`` and its segment-wise prefixes, longest first.

    '/a/b/c' -> '/a/b/c', '/a/b', '/a', '/'.
    """
    yield path
    trimmed = path.rstrip("/")
    while trimmed:
        trimmed = trimmed.rsplit("/", 1)[0]
        yield trimmed if trimmed else "/"
