"""CSawClient: the client-side proxy, assembled (§3, Figure 3).

One object per simulated user, owning:

- a :class:`LocalDatabase` (local_DB) and :class:`GlobalView` (the local
  copy of this AS's blocked list);
- a :class:`CircumventionModule` hosting the configured transports;
- a :class:`MeasurementModule` implementing Algorithm 1;
- a :class:`ReportingService` talking to the shared :class:`ServerDB`
  (reports carried over Tor when a report transport is given);
- a :class:`MultihomingManager` when attached to several providers.

All URL requests — page loads included, each embedded object counts as a
URL request of its own — go through :meth:`request`, i.e. through the
measurement module, which is what lets the pilot study observe blocking
of CDN servers that only ever appear as embedded resources (§7.4).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..circumvent.base import Transport
from ..simnet.browser import load_page
from ..simnet.flow import ClientLoadTracker, FlowContext
from ..simnet.topology import AccessNetwork, AutonomousSystem
from ..simnet.world import World
from .blockpage import BlockpageDetector
from .circumvention import CircumventionModule
from .config import CSawConfig
from .globaldb import ServerDB
from .localdb import LocalDatabase
from .measurement import MeasurementModule
from .multihoming import MultihomingManager
from .reporting import GlobalView, ReportingService

__all__ = ["CSawClient"]


class CSawClient:
    """One installed C-Saw instance: proxy + databases + background jobs."""

    def __init__(
        self,
        world: World,
        name: str,
        isps: List[AutonomousSystem],
        transports: List[Transport],
        server_db: Optional[ServerDB] = None,
        config: Optional[CSawConfig] = None,
        report_transport: Optional[Transport] = None,
        location: str = "pakistan",
        bandwidth_bps: float = 20e6,
    ):
        self.world = world
        self.name = name
        self.config = config or CSawConfig()
        self.host, self.access = world.add_client(
            name, isps, location=location, bandwidth_bps=bandwidth_bps
        )
        self.load = ClientLoadTracker()
        self._rng = world.rngs.stream(f"client/{name}")

        self.local_db = LocalDatabase(
            asn=isps[0].asn if isps else 0,
            ttl=self.config.record_ttl,
            aggregation=self.config.aggregation_enabled,
            clock=lambda: world.env.now,
        )
        self.global_view = GlobalView()
        self.detector = BlockpageDetector(
            ratio_threshold=self.config.blockpage_ratio_threshold
        )
        self.circumvention = CircumventionModule(
            world,
            transports,
            config=self.config,
            rng_stream=f"client/{name}/circumvention",
        )
        self.measurement = MeasurementModule(
            world,
            self.new_ctx(),
            self.local_db,
            self.circumvention,
            global_view=self.global_view,
            detector=self.detector,
            config=self.config,
            rng_stream=f"client/{name}/measurement",
        )
        self.multihoming: Optional[MultihomingManager] = None
        if self.access.multihomed:
            self.multihoming = MultihomingManager(
                world, self.access, rng_stream=f"client/{name}/multihoming"
            )
            self.measurement.multihoming = self.multihoming

        self.reporting: Optional[ReportingService] = None
        if server_db is not None:
            self.reporting = ReportingService(
                world,
                server_db,
                self.local_db,
                self.global_view,
                config=self.config,
                report_transport=report_transport,
                min_reporters=self.config.min_reporters,
                min_votes=self.config.min_votes,
            )

    # -- flow contexts ---------------------------------------------------------

    def new_ctx(self) -> FlowContext:
        """A fresh flow context (multihomed access re-picks the provider)."""
        return FlowContext.for_new_flow(
            self.host, self.access, self._rng, load=self.load
        )

    # -- lifecycle ----------------------------------------------------------------

    def install(self, captcha_passed: bool = True) -> Generator:
        """Process: register with the global DB and pull the blocked list."""
        if self.reporting is None:
            return None
        uuid = yield from self.reporting.register(
            self.new_ctx(), captcha_passed=captcha_passed
        )
        return uuid

    def start_background(self, until: float) -> None:
        """Launch periodic reporting/downloading and multihoming probing."""
        env = self.world.env
        if self.reporting is not None:
            env.process(self.reporting.run_periodic(self.new_ctx(), until))
        if self.multihoming is not None:
            env.process(self.multihoming.run_periodic(self.new_ctx(), until))

    def migrate(self, isps: List[AutonomousSystem]) -> Generator:
        """Process: move to a new access network (user mobility, §8).

        The local_DB's per-AS knowledge no longer describes the new
        vantage, so records are dropped and the blocked list for the new
        AS is pulled from the global database — "C-Saw will automatically
        adapt to user mobility".
        """
        if not isps:
            raise ValueError("migration needs at least one provider")
        self.access = AccessNetwork(
            isps=list(isps), access_rtt=self.access.access_rtt
        )
        self.host.asn = isps[0].asn
        self.local_db.asn = isps[0].asn
        self.local_db.clear()
        if self.access.multihomed:
            self.multihoming = MultihomingManager(
                self.world,
                self.access,
                rng_stream=f"client/{self.name}/multihoming/{isps[0].asn}",
            )
        else:
            self.multihoming = None
        self.measurement.multihoming = self.multihoming
        self.measurement.ctx = self.new_ctx()
        if self.reporting is not None and self.reporting.registered:
            count = yield from self.reporting.download_blocked_list(
                self.new_ctx()
            )
            return count
        return 0

    def validate(self, url: str) -> Generator:
        """Process: explicitly re-measure a URL on the direct path (§5).

        Individual validation of crowdsourced entries: bypasses the
        probability-p sampling, updates the local_DB with whatever the
        direct path shows, and — when the URL turns out *not* blocked —
        withdraws this client's vouch from the global database (dissent
        only removes the validator's own vote).

        Returns the :class:`DetectionOutcome`.
        """
        from .detection import measure_direct_path
        from .records import BlockStatus

        ctx = self.new_ctx()
        outcome = yield from measure_direct_path(
            self.world, ctx, url, self.detector
        )
        if (
            outcome.status is BlockStatus.NOT_BLOCKED
            and not outcome.suspected_blockpage
            and outcome.response is not None
        ):
            self.local_db.record_measurement(url, BlockStatus.NOT_BLOCKED, [])
            if self.reporting is not None and self.reporting.registered:
                self.reporting.server.post_dissent(
                    self.reporting.uuid, url, self.asn, self.world.env.now
                )
        elif outcome.blocked:
            self.local_db.record_measurement(
                url, BlockStatus.BLOCKED, list(outcome.stages)
            )
        return outcome

    # -- serving ---------------------------------------------------------------------

    def request(self, url: str) -> Generator:
        """Process: one URL request through the proxy → ServedResponse."""
        response = yield from self.measurement.handle_request(
            url, ctx=self.new_ctx()
        )
        return response

    def _page_fetcher(self, url: str) -> Generator:
        served = yield from self.measurement.handle_request(url, ctx=self.new_ctx())
        return served.served

    def load_page(self, url: str, max_parallel: int = 6) -> Generator:
        """Process: full page load (document + objects) → PageLoadResult."""
        result = yield from load_page(
            self.world.env, self._page_fetcher, url, max_parallel=max_parallel
        )
        return result

    # -- introspection ----------------------------------------------------------------

    @property
    def asn(self) -> int:
        return self.local_db.asn

    def stats(self) -> dict:
        return {
            "requests": self.measurement.requests_handled,
            "probes": self.measurement.probes_launched,
            "local_db_records": self.local_db.record_count,
            "local_db_bytes": self.local_db.approx_bytes(),
            "blocked_records": len(self.local_db.blocked_records()),
            "global_view_entries": len(self.global_view),
            "global_view_version": self.global_view.version,
            "reports_posted": (
                self.reporting.reports_posted if self.reporting else 0
            ),
            "full_syncs": self.reporting.full_syncs if self.reporting else 0,
            "delta_syncs": (
                self.reporting.delta_syncs if self.reporting else 0
            ),
            "sync_rows_received": (
                self.reporting.sync_rows_received if self.reporting else 0
            ),
            "sync_bytes_received": (
                self.reporting.sync_bytes_received if self.reporting else 0
            ),
            "data_used_bytes": self.measurement.total_bytes,
            "redundant_data_bytes": self.measurement.redundant_bytes,
            # Where page-load time went, summed over finished sessions
            # (stage → sim-seconds; see analysis.plt_decomposition).
            "plt_breakdown": dict(self.measurement.stage_seconds),
            "sessions_completed": self.measurement.sessions_completed,
        }
