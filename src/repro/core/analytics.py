"""Consumer-side analytics over the global database (§4.2).

The paper: "The UUID also allows consumers of measurements to perform
user-centric analytics (e.g., number of users reporting measurements
from a certain AS)."  This module is that consumer: aggregate views over
the global database that researchers, rights groups, or the C-Saw
operators themselves would pull — reporter counts per AS, blocking-type
mixes, top blocked domains, detection timelines, and stale entries that
suggest Blocked→Unblocked churn.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..urlkit import parse_url, registered_domain
from .globaldb import GlobalEntry, ServerDB

__all__ = ["AsSummary", "MeasurementAnalytics"]


@dataclass(frozen=True)
class AsSummary:
    """One AS's censorship profile, as the crowd reported it."""

    asn: int
    blocked_urls: int
    blocked_domains: int
    reporters: int
    blocking_types: Tuple[Tuple[str, int], ...]  # (type, url count), sorted

    @property
    def dominant_type(self) -> Optional[str]:
        return self.blocking_types[0][0] if self.blocking_types else None


class MeasurementAnalytics:
    """Aggregations over a :class:`ServerDB`'s entries and votes."""

    def __init__(self, server: ServerDB):
        self.server = server

    # -- per-AS views ---------------------------------------------------------

    def reporters_per_as(self) -> Dict[int, int]:
        """Distinct reporting identities per AS (the paper's example)."""
        reporters: Dict[int, set] = defaultdict(set)
        for entry in self.server.all_entries():
            reporters[entry.asn] |= self.server.voting.reporters_for(
                entry.url, entry.asn
            )
        return {asn: len(ids) for asn, ids in reporters.items()}

    def as_summary(self, asn: int) -> AsSummary:
        entries = [e for e in self.server.all_entries() if e.asn == asn]
        domains = {registered_domain(parse_url(e.url).host) for e in entries}
        type_counts: Counter = Counter()
        # Ordered dict-as-set; incoming reporter sets are sorted at the
        # boundary so insertion order never depends on hash order.
        reporters: Dict[str, None] = {}
        for entry in entries:
            for stage in entry.stages:
                type_counts[stage.value] += 1
            reporters.update(
                dict.fromkeys(
                    sorted(self.server.voting.reporters_for(entry.url, entry.asn))
                )
            )
        return AsSummary(
            asn=asn,
            blocked_urls=len(entries),
            blocked_domains=len(domains),
            reporters=len(reporters),
            blocking_types=tuple(type_counts.most_common()),
        )

    def all_as_summaries(self) -> List[AsSummary]:
        asns = sorted({e.asn for e in self.server.all_entries()})
        return [self.as_summary(asn) for asn in asns]

    # -- cross-AS views ----------------------------------------------------------

    def top_blocked_domains(self, limit: int = 10) -> List[Tuple[str, int]]:
        """Domains blocked in the most ASes (censorship consensus)."""
        per_domain: Dict[str, set] = defaultdict(set)
        for entry in self.server.all_entries():
            domain = registered_domain(parse_url(entry.url).host)
            per_domain[domain].add(entry.asn)
        ranked = sorted(
            ((domain, len(asns)) for domain, asns in per_domain.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:limit]

    def mechanism_heterogeneity(self) -> Dict[str, List[Tuple[int, str]]]:
        """Domains blocked *differently* across ASes (§2.3's insight).

        Returns {domain: [(asn, dominant mechanism), ...]} restricted to
        domains whose dominant mechanism differs between at least two
        ASes — the cases where knowing the per-AS mechanism changes the
        best circumvention choice.
        """
        per_domain: Dict[str, Dict[int, Counter]] = defaultdict(
            lambda: defaultdict(Counter)
        )
        for entry in self.server.all_entries():
            domain = registered_domain(parse_url(entry.url).host)
            for stage in entry.stages:
                per_domain[domain][entry.asn][stage.stage] += 1
        varied = {}
        for domain, by_asn in per_domain.items():
            dominants = [
                (asn, counts.most_common(1)[0][0])
                for asn, counts in sorted(by_asn.items())
                if counts
            ]
            if len({mech for _asn, mech in dominants}) > 1:
                varied[domain] = dominants
        return varied

    def detection_timeline(
        self, bucket_seconds: float = 3600.0
    ) -> List[Tuple[float, int]]:
        """Histogram of first-detection times (blocking-wave visibility)."""
        buckets: Counter = Counter()
        for entry in self.server.all_entries():
            buckets[int(entry.first_measured_at // bucket_seconds)] += 1
        return [
            (bucket * bucket_seconds, count)
            for bucket, count in sorted(buckets.items())
        ]

    def stale_entries(self, now: float, older_than: float) -> List[GlobalEntry]:
        """Entries nobody has re-confirmed lately — whitelisting suspects
        (Blocked→Unblocked churn that deserves a re-measure)."""
        return [
            e
            for e in self.server.all_entries()
            if now - e.measured_at > older_than
        ]
