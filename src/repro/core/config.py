"""C-Saw client configuration (§4, §7 knobs)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CSawConfig"]


@dataclass
class CSawConfig:
    """All tunables of one C-Saw client.

    Defaults follow the paper's recommendations: p ≤ 0.25 (§7.1), two
    redundant requests (Figure 6a), random exploration every n = 5-th
    access (§4.3.2), parallel redundancy (Figure 5a).
    """

    # Probability of re-measuring the direct path for a URL the global_DB
    # says is blocked (resilience to false reports vs. overhead, Table 6).
    probe_probability: float = 0.1
    # local_DB record TTL; expiry re-measures the URL (Scenario A churn).
    record_ttl: float = 24 * 3600.0
    # Every n-th access to a blocked URL uses a random circumvention
    # approach so improving approaches get rediscovered.
    explore_every_n: int = 5
    # "parallel" duplicates direct + circumvention requests; "serial"
    # waits for direct-path detection before circumventing (Figure 5a).
    redundancy_mode: str = "parallel"
    # Delay before launching the redundant request; if the direct path
    # answers within the delay the duplicate is skipped (Figure 5b/c).
    redundant_delay: float = 0.0
    # Total copies for not-measured URLs: 1 disables redundancy, 2 is the
    # paper's sweet spot, 3 hurts the tail (Figure 6a).
    max_redundant_requests: int = 2
    # Anonymity preference: restrict circumvention to anonymous methods.
    prefer_anonymity: bool = False
    # URL aggregation in the local_DB (Figure 6b ablation).
    aggregation_enabled: bool = True
    # Background cadence (seconds) for report upload / blocked-list pull.
    report_interval: float = 600.0
    download_interval: float = 600.0
    # Confidence criterion applied to downloaded entries (§5): require at
    # least this many distinct reporters / this much vote mass s_{j,k}
    # before trusting a crowdsourced entry.
    min_reporters: int = 1
    min_votes: float = 0.0
    # Phase-2 size-ratio threshold for block-page confirmation.
    blockpage_ratio_threshold: float = 0.30
    # Moving-average weight for per-approach PLT tracking.
    ewma_alpha: float = 0.3
    # Trace-bus recording mode: "full" records every session event,
    # "ring" keeps only the last trace_ring_size events per session,
    # "sampled" records a trace_sample_rate fraction of sessions (PLT
    # aggregates scaled by 1/p), "off" disables recording entirely.
    # Verdicts and served PLTs are bit-identical across all four modes
    # — only the trace payload differs.
    #
    # "sampled" is the documented default for fleet-scale storms (100k+
    # clients): full tracing costs ~1.19x on the request storm while a
    # p = 0.05 sample keeps the trace payload at ~5% for the same
    # verdicts.  Scale-up error: sampling N sessions i.i.d. at rate p
    # makes every 1/p-scaled aggregate (session counts, PLT sums) an
    # unbiased estimate with relative standard error
    # sqrt((1 - p) / (p * N)) — at the 100k-client storm's ~5k sampled
    # sessions that is ~1.4%, and ~0.44% for the 1M storm; per-bucket
    # CDF tails thin out first, so widen trace_sample_rate (or use
    # "full") when a tail percentile, not a mean, is the quantity under
    # study.  Single-session runs keep "full": p has nothing to
    # amortize there.
    trace_mode: str = "full"
    trace_sample_rate: float = 0.05
    trace_ring_size: int = 64
    # Delta-sync wire format for blocked-list pulls: "columnar" moves
    # parallel per-field tuples and rebuilds entries client-side in one
    # pass; "rows" moves per-row GlobalEntry objects (the executable
    # spec — both produce bit-identical client state).
    sync_wire_format: str = "columnar"

    @classmethod
    def developing_region(cls, **overrides) -> "CSawConfig":
        """Preset for data-constrained users (§8: "the value of p can be
        lowered in developing regions albeit at the cost of reduced
        resilience to false reports").  Lower probe probability, longer
        record TTLs (fewer re-measurements), staggered duplicates so the
        common case transfers one copy only.
        """
        defaults = dict(
            probe_probability=0.02,
            record_ttl=7 * 24 * 3600.0,
            redundant_delay=2.0,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probe_probability <= 1.0:
            raise ValueError(f"p must be in [0,1]: {self.probe_probability!r}")
        if self.redundancy_mode not in ("parallel", "serial"):
            raise ValueError(f"unknown redundancy mode: {self.redundancy_mode!r}")
        if self.max_redundant_requests < 1:
            raise ValueError("need at least one request copy")
        if self.explore_every_n < 2:
            raise ValueError("explore_every_n must be >= 2")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0,1]: {self.ewma_alpha!r}")
        if self.min_reporters < 1:
            raise ValueError("min_reporters must be >= 1")
        if self.min_votes < 0.0:
            raise ValueError(f"min_votes must be >= 0: {self.min_votes!r}")
        from .trace import TraceMode

        TraceMode.parse(self.trace_mode)  # raises on unknown modes
        if not 0.0 < self.trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in (0,1]: {self.trace_sample_rate!r}"
            )
        if self.trace_ring_size < 1:
            raise ValueError("trace_ring_size must be >= 1")
        if self.sync_wire_format not in ("columnar", "rows"):
            raise ValueError(
                f"unknown sync wire format: {self.sync_wire_format!r}"
            )
