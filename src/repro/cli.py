"""``csaw-sim`` — command-line front door to the reproduction.

Subcommands map to the paper's experiments:

- ``quickstart``   tiny demo world: detect, circumvent, report
- ``casestudy``    Table 1 — ISP-A vs ISP-B filtering mechanisms
- ``pilot``        Table 7 — the 123-user deployment study
- ``wave``         §7.5 — the Twitter/Instagram blocking wave
- ``oni``          Figure 2 — blocking-type mixes across 8 ASes
- ``blockpages``   §4.3.1 — 2-phase detector accuracy on the corpus
- ``scenario``     declarative scenario packs: run / list / run-all

Each command prints a rendered table; ``--seed`` re-rolls the world.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from .analysis import render_table

__all__ = ["main", "build_parser"]


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from .censor.actions import HttpAction, HttpVerdict
    from .censor.blockpages import DEFAULT_BLOCKPAGE_HTML
    from .censor.policy import CensorPolicy, Matcher, Rule
    from .circumvent import HttpsTransport, PublicDnsTransport, TorNetwork, TorTransport
    from .core import CSawClient, ServerDB
    from .simnet.web import WebPage
    from .simnet.world import World

    world = World(seed=args.seed)
    world.add_public_resolver()
    world.web.add_site("news.example.org", location="us-east")
    world.web.add_page("http://news.example.org/", size_bytes=200_000)
    blockpage = world.web.add_site(
        "block.isp.example", location="pakistan", supports_https=False,
        catch_all=lambda path: WebPage(
            url=f"http://block.isp.example{path}",
            size_bytes=len(DEFAULT_BLOCKPAGE_HTML),
            html=DEFAULT_BLOCKPAGE_HTML,
        ),
    )
    policy = CensorPolicy(name="demo")
    policy.add_rule(Rule(
        matcher=Matcher(domains={"news.example.org"}),
        http=HttpVerdict(HttpAction.BLOCKPAGE_REDIRECT,
                         blockpage_ip=blockpage.host.ip),
    ))
    isp = world.add_isp(64500, "Demo-ISP", policy=policy)
    tor = TorNetwork.build(world, n_relays=20)
    client = CSawClient(
        world, "demo-user", [isp],
        transports=[PublicDnsTransport(), HttpsTransport(),
                    TorTransport(tor.client("demo"))],
        server_db=ServerDB(),
    )

    rows = []

    def session():
        yield from client.install()
        for _ in range(4):
            response = yield from client.request("http://news.example.org/")
            yield response.measurement_process
            rows.append([
                "http://news.example.org/",
                response.path,
                f"{response.plt:.2f}s",
                response.status.value,
                ",".join(s.value for s in response.stages) or "-",
            ])

    world.run_process(session())
    print(render_table(
        ["url", "served via", "PLT", "status", "blocking"], rows,
        title="quickstart — C-Saw adapting behind a block-page censor",
    ))
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    from .core.detection import measure_direct_path
    from .workloads.scenarios import pakistan_case_study

    scenario = pakistan_case_study(seed=args.seed, with_proxy_fleet=False)
    world = scenario.world
    rows = []
    for isp_name, isp in (("ISP-A", scenario.isp_a), ("ISP-B", scenario.isp_b)):
        for label, url in (("YouTube", scenario.urls["youtube"]),
                           ("blocked content", scenario.urls["porn"])):
            client, access = world.add_client(
                f"cli-{isp.asn}-{label.replace(' ', '')}", [isp]
            )
            ctx = world.new_ctx(client, access, stream=f"cli/{isp.asn}/{label}")
            outcome = world.run_process(measure_direct_path(world, ctx, url))
            rows.append([
                isp_name, label,
                " + ".join(s.value for s in outcome.stages) or "no blocking",
            ])
    print(render_table(
        ["ISP", "target", "mechanism (as inferred by C-Saw)"], rows,
        title="Table 1 — the distributed-censorship case study",
    ))
    return 0


def _cmd_pilot(args: argparse.Namespace) -> int:
    from .workloads.pilot import PilotConfig, run_pilot

    config = PilotConfig(
        seed=args.seed,
        n_users=args.users,
        n_sites=args.sites,
        duration_days=args.days,
        n_ases=args.ases,
    )
    report = run_pilot(config)
    print(render_table(
        ["insight", "value"], report.rows(),
        title=f"Table 7 — pilot study ({args.users} users, "
        f"{args.days:g} days, {args.ases} ASes)",
    ))
    return 0


def _cmd_wave(args: argparse.Namespace) -> int:
    from .workloads.events import run_blocking_wave

    observations = run_blocking_wave(seed=args.seed)
    rows = [
        [f"t+{o.detected_at / 3600:.1f}h", o.service, f"AS {o.asn}", o.symptom]
        for o in observations
    ]
    print(render_table(
        ["detected", "service", "AS", "response"], rows,
        title="§7.5 — the Twitter/Instagram blocking wave, as measured",
    ))
    return 0


def _cmd_oni(args: argparse.Namespace) -> int:
    from .workloads.oni import FIG2_CATEGORIES, OniSweep

    sweep = OniSweep(seed=args.seed, domains_per_as=args.domains)
    measured = sweep.run()
    rows = []
    for asn, mix in measured.items():
        spec = sweep.spec_for(asn)
        rows.append([f"AS{asn}", spec.country]
                    + [f"{mix[c]:.2f}" for c in FIG2_CATEGORIES])
    print(render_table(
        ["AS", "country"] + list(FIG2_CATEGORIES), rows,
        title="Figure 2 — blocking-type fractions per AS",
    ))
    return 0


def _cmd_blockpages(args: argparse.Namespace) -> int:
    from .censor.blockpages import build_blockpage_corpus, build_normal_corpus
    from .core.blockpage import phase1_looks_like_blockpage

    rng = random.Random(args.seed)
    blockpages = build_blockpage_corpus(rng, n_isps=args.isps)
    normals = build_normal_corpus(rng, n_pages=200)
    caught = sum(1 for s in blockpages if phase1_looks_like_blockpage(s.html))
    false_pos = sum(1 for h in normals if phase1_looks_like_blockpage(h))
    print(render_table(
        ["metric", "value"],
        [
            ["ISPs in corpus", args.isps],
            ["phase-1 recall", f"{caught / len(blockpages):.0%} (paper ~80%)"],
            ["false positives on normal pages", f"{false_pos} (paper 0)"],
        ],
        title="§4.3.1 — phase-1 block-page heuristic",
    ))
    return 0


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    from .scenarios import load_spec, shipped_packs

    rows = []
    for name, path in shipped_packs():
        spec = load_spec(path)
        rows.append([name, spec.resolved_mode(), spec.seed, spec.description])
    print(render_table(
        ["pack", "mode", "seed", "description"], rows,
        title="shipped scenario packs (repro/scenarios/packs/)",
    ))
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    from .scenarios import ScenarioRunner, SpecError, load_spec

    try:
        spec = load_spec(args.spec)
    except SpecError as err:
        print(f"csaw-sim scenario: {err}", file=sys.stderr)
        return 2
    if args.seed is not None:
        spec = spec.with_seed(args.seed)
    outcome = ScenarioRunner().run(spec)
    print(outcome.report.render())
    return 0 if outcome.report.ok else 1


def _cmd_scenario_run_all(args: argparse.Namespace) -> int:
    import json
    import time

    from .scenarios import ScenarioRunner, load_spec, shipped_packs

    runner = ScenarioRunner()
    rows, timings, failed = [], [], []
    for name, path in shipped_packs():
        started = time.perf_counter()
        outcome = runner.run(load_spec(path))
        elapsed = time.perf_counter() - started
        report = outcome.report
        # A pack fails when its expectation diff is non-empty — the diff
        # is the artifact CI consumes, so it is also the exit signal
        # (guards against report.ok and diff() ever disagreeing).
        status = "PASS" if report.ok and not report.diff() else "FAIL"
        if status == "FAIL":
            failed.append((name, report))
        rows.append([
            name, outcome.mode, status,
            f"{len(report.checks) - len(report.failures)}/{len(report.checks)}",
            f"{elapsed:.2f}s",
        ])
        timings.append({
            "pack": name,
            "mode": outcome.mode,
            "ok": status == "PASS",
            "checks": len(report.checks),
            "failures": len(report.failures),
            "seconds": round(elapsed, 3),
        })
    print(render_table(
        ["pack", "mode", "status", "expectations", "runtime"], rows,
        title="scenario packs — expectation checks",
    ))
    for name, report in failed:
        print(f"\n{name}:")
        print(report.diff())
    if args.record:
        with open(args.record, "w") as fh:
            json.dump({"packs": timings}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\npack runtimes written to {args.record}")
    return 1 if failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from .analysis.reportgen import generate_report

    results_dir = pathlib.Path(args.results_dir)
    if not results_dir.is_dir():
        print(
            f"no such results directory: {results_dir} — run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    print(generate_report(results_dir))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csaw-sim",
        description="C-Saw (SIGCOMM '18) reproduction: censorship "
        "measurement + adaptive circumvention on a simulated Internet.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=1, help="world seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "quickstart", help="tiny demo world", parents=[common]
    ).set_defaults(func=_cmd_quickstart)
    sub.add_parser(
        "casestudy", help="Table 1 case study", parents=[common]
    ).set_defaults(func=_cmd_casestudy)
    pilot = sub.add_parser(
        "pilot", help="Table 7 deployment study", parents=[common]
    )
    pilot.add_argument("--users", type=int, default=123)
    pilot.add_argument("--days", type=float, default=90.0)
    pilot.add_argument("--sites", type=int, default=1700)
    pilot.add_argument("--ases", type=int, default=16)
    pilot.set_defaults(func=_cmd_pilot)
    sub.add_parser(
        "wave", help="§7.5 blocking wave", parents=[common]
    ).set_defaults(func=_cmd_wave)
    oni = sub.add_parser(
        "oni", help="Figure 2 blocking-type mixes", parents=[common]
    )
    oni.add_argument("--domains", type=int, default=60,
                     help="censored domains per AS")
    oni.set_defaults(func=_cmd_oni)
    blockpages = sub.add_parser(
        "blockpages", help="block-page detector eval", parents=[common]
    )
    blockpages.add_argument("--isps", type=int, default=47)
    blockpages.set_defaults(func=_cmd_blockpages)
    scenario = sub.add_parser(
        "scenario", help="declarative scenario packs (run / list / run-all)",
    )
    ssub = scenario.add_subparsers(dest="scenario_command", required=True)
    ssub.add_parser(
        "list", help="list the shipped scenario packs"
    ).set_defaults(func=_cmd_scenario_list)
    scenario_run = ssub.add_parser(
        "run", help="run one pack (by name or .toml path) and check "
        "its expectations",
    )
    scenario_run.add_argument("spec", help="pack name or path to a spec.toml")
    scenario_run.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's world seed",
    )
    scenario_run.set_defaults(func=_cmd_scenario_run)
    scenario_run_all = ssub.add_parser(
        "run-all", help="run every shipped pack; non-zero exit on any "
        "expectation mismatch",
    )
    scenario_run_all.add_argument(
        "--record", default=None, metavar="PATH",
        help="write per-pack runtimes to this JSON file",
    )
    scenario_run_all.set_defaults(func=_cmd_scenario_run_all)
    report = sub.add_parser(
        "report", help="combine benchmarks/results/ into one markdown report",
        parents=[common],
    )
    report.add_argument(
        "--results-dir", default="benchmarks/results",
        help="directory of bench result tables",
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
