"""The csaw-lint rule catalogue (CSL001–CSL009).

Each rule encodes one determinism/purity invariant the paper's numbers
depend on (DESIGN.md §7 maps rules to figures).  All rules are
AST-local and deliberately conservative: they prove what they can from
one file and leave cross-module dataflow to the regression tests, so a
finding is near-always a true positive and the lint can be enforced at
zero rather than advisory.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set

from .framework import LintContext, Rule, Violation, register

__all__ = ["register", "Rule"]


# -- shared helpers ------------------------------------------------------------


def _module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Names bound to ``module`` by top-level or nested plain imports."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> Dict[str, ast.ImportFrom]:
    """Map of names imported ``from module import name`` -> import node."""
    names: Dict[str, ast.ImportFrom] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names[alias.asname or alias.name] = node
    return names


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


# -- CSL001: ambient randomness ------------------------------------------------


@register
class AmbientRandomnessRule(Rule):
    """Module-level ``random.*`` draws bypass the seeded stream registry.

    Every draw must come from a ``random.Random`` threaded in by the
    caller or an ``RngRegistry`` stream (``simnet/rng.py``); ambient
    draws pull from interpreter-global state and silently decouple runs
    from the experiment seed.
    """

    code = "CSL001"
    name = "no-ambient-randomness"
    message = (
        "ambient randomness: draw from a seeded random.Random / "
        "RngRegistry stream passed in by the caller"
    )

    _ALLOWED_ATTRS = {"Random"}

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        aliases = _module_aliases(ctx.tree, "random")
        from_imports = _from_imports(ctx.tree, "random")
        flagged_imports = set()
        for name, node in sorted(from_imports.items()):
            if name not in self._ALLOWED_ATTRS and id(node) not in flagged_imports:
                flagged_imports.add(id(node))
                yield ctx.violation(
                    self,
                    node,
                    "from random import ...: import random.Random and seed "
                    "it, or accept an rng argument",
                )
        if not aliases:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ):
                continue
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    yield ctx.violation(
                        self,
                        node,
                        "random.Random() without a seed draws entropy from "
                        "the OS; pass an explicit seed",
                    )
            elif func.attr not in self._ALLOWED_ATTRS:
                yield ctx.violation(self, node)


# -- CSL002: wall-clock time ---------------------------------------------------


@register
class WallClockRule(Rule):
    """Wall-clock reads inside simulation code break bit-determinism.

    Simulated time is ``env.now``; only the trial runner (which times
    real execution) and the benchmarks may consult the host clock.
    """

    code = "CSL002"
    name = "no-wall-clock"
    message = "wall-clock read in simulation code: use env.now / simulated time"
    allow = ("src/repro/runner/core.py", "benchmarks/*")

    _TIME_FUNCS = {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
    _DATETIME_FUNCS = {"now", "utcnow", "today"}

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        time_aliases = _module_aliases(ctx.tree, "time")
        dt_module_aliases = _module_aliases(ctx.tree, "datetime")
        dt_classes = {
            name
            for name in _from_imports(ctx.tree, "datetime")
            if name in {"datetime", "date"}
        }
        flagged_imports = set()
        for name, node in sorted(_from_imports(ctx.tree, "time").items()):
            if name in self._TIME_FUNCS and id(node) not in flagged_imports:
                flagged_imports.add(id(node))
                yield ctx.violation(
                    self, node, f"from time import {name}: wall-clock source"
                )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None or len(chain) < 2:
                continue
            root, leaf = chain[0], chain[-1]
            if root in time_aliases and leaf in self._TIME_FUNCS:
                yield ctx.violation(self, node)
            elif leaf in self._DATETIME_FUNCS and (
                (len(chain) == 2 and root in dt_classes)
                or (
                    len(chain) == 3
                    and root in dt_module_aliases
                    and chain[1] in {"datetime", "date"}
                )
            ):
                yield ctx.violation(
                    self, node, f"{'.'.join(chain)}(): wall-clock read"
                )


# -- CSL003: unordered iteration -----------------------------------------------

_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
#: builtins whose result does not depend on argument iteration order
_ORDER_FREE_REDUCERS = {
    "sum",
    "len",
    "min",
    "max",
    "any",
    "all",
    "set",
    "frozenset",
    "sorted",
}
#: builtins that materialize iteration order into an ordered value
_ORDER_SINKS = {"list", "tuple", "enumerate", "iter", "next"}


def _is_set_expr(node: ast.AST, setnames: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in setnames
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _is_set_expr(func.value, setnames)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, setnames) or _is_set_expr(
            node.right, setnames
        )
    return False


@register
class UnorderedIterationRule(Rule):
    """Iterating a set where order can escape is nondeterministic.

    Python sets iterate in hash order, which is randomized per process
    for strings; any loop, comprehension, or ``list()/tuple()/join()``
    over a set can therefore differ between two same-seed runs.  Wrap
    the set in ``sorted()`` or keep an ordered dict-as-set (the
    ``localdb.py`` idiom).  Order-insensitive reductions
    (``len``/``sum``/``min``/``max``/``any``/``all``/``set``) and set
    comprehensions over sets are exempt.  The analysis is file-local:
    it tracks names assigned set literals/calls/comprehensions and set
    algebra over them, not sets returned by other functions.
    """

    code = "CSL003"
    name = "no-unordered-iteration"
    message = (
        "iteration over an unordered set escapes hash order: wrap in "
        "sorted() or use an ordered dict-as-set (cross-module escapes "
        "through call-returned sets are csaw-analyze CSA105's findings)"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        out: List[Violation] = []
        self._scan_block(ctx, ctx.tree.body, set(), out)
        return iter(out)

    # Scope handling: compound statements share the enclosing scope's
    # set-name tracking; function/class bodies start fresh.
    def _scan_block(
        self,
        ctx: LintContext,
        stmts: Sequence[ast.stmt],
        setnames: Set[str],
        out: List[Violation],
    ) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self._scan_block(ctx, stmt.body, set(), out)
                continue
            self._check_stmt(ctx, stmt, setnames, out)
            self._apply_binding(stmt, setnames)
            for field_name, value in ast.iter_fields(stmt):
                if field_name in ("body", "orelse", "finalbody"):
                    if isinstance(value, list):
                        self._scan_block(ctx, value, setnames, out)
                elif field_name == "handlers":
                    for handler in value:
                        self._scan_block(ctx, handler.body, setnames, out)

    def _apply_binding(self, stmt: ast.stmt, setnames: Set[str]) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if _is_set_expr(stmt.value, setnames):
                        setnames.add(target.id)
                    else:
                        setnames.discard(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if stmt.value is not None and _is_set_expr(stmt.value, setnames):
                setnames.add(stmt.target.id)
            else:
                setnames.discard(stmt.target.id)

    def _check_stmt(
        self,
        ctx: LintContext,
        stmt: ast.stmt,
        setnames: Set[str],
        out: List[Violation],
    ) -> None:
        exprs: List[ast.AST] = []
        for field_name, value in ast.iter_fields(stmt):
            if field_name in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.AST):
                exprs.append(value)
            elif isinstance(value, list):
                exprs.extend(v for v in value if isinstance(v, ast.AST))
        # A for-statement iterating a set directly.
        if isinstance(stmt, (ast.For, ast.AsyncFor)) and _is_set_expr(
            stmt.iter, setnames
        ):
            out.append(ctx.violation(self, stmt.iter))
        # Tuple-unpacking a set: `a, b = some_set`.
        if isinstance(stmt, ast.Assign) and _is_set_expr(stmt.value, setnames):
            if any(
                isinstance(t, (ast.Tuple, ast.List)) for t in stmt.targets
            ):
                out.append(ctx.violation(self, stmt.value))
        exempt = self._exempt_genexps(exprs)
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(
                    node,
                    (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp),
                ):
                    if isinstance(node, ast.SetComp) or id(node) in exempt:
                        continue
                    for gen in node.generators:
                        if _is_set_expr(gen.iter, setnames):
                            out.append(ctx.violation(self, gen.iter))
                elif isinstance(node, ast.Call):
                    func = node.func
                    is_sink = (
                        isinstance(func, ast.Name) and func.id in _ORDER_SINKS
                    ) or (
                        isinstance(func, ast.Attribute) and func.attr == "join"
                    )
                    if is_sink:
                        for arg in node.args:
                            if _is_set_expr(arg, setnames):
                                out.append(
                                    ctx.violation(
                                        self,
                                        arg,
                                        "set order materialized into an "
                                        "ordered value: sort it first",
                                    )
                                )

    def _exempt_genexps(self, exprs: Sequence[ast.AST]) -> Set[int]:
        exempt: Set[int] = set()
        for expr in exprs:
            for node in ast.walk(expr):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_FREE_REDUCERS
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.GeneratorExp)
                ):
                    exempt.add(id(node.args[0]))
        return exempt


# -- CSL004: real I/O in simulation paths --------------------------------------


@register
class RealIoRule(Rule):
    """The simulation stack must be closed-world (Encore-style purity).

    ``simnet/`` processes and ``core/`` measurement paths may not open
    sockets, shell out, or write files: all "network" activity is
    simulated events, so a real syscall is either an escaped side
    effect or nondeterministic latency smuggled into the event loop.
    """

    code = "CSL004"
    name = "no-real-io"
    message = "real I/O in a simulation path: simnet/core must stay closed-world"
    scope = ("src/repro/simnet/*", "src/repro/core/*")

    _IO_ROOTS = {
        "socket",
        "subprocess",
        "requests",
        "urllib",
        "ftplib",
        "smtplib",
        "shutil",
        "asyncio",
    }
    _IO_MODULES = {"http.client", "http.server"}
    _OS_CALLS = {
        "system",
        "popen",
        "remove",
        "unlink",
        "makedirs",
        "mkdir",
        "rmdir",
        "rename",
        "replace",
    }
    _WRITE_ATTRS = {"write_text", "write_bytes"}

    def _module_banned(self, name: str) -> bool:
        root = name.split(".", 1)[0]
        return root in self._IO_ROOTS or name in self._IO_MODULES

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        os_aliases = _module_aliases(ctx.tree, "os")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._module_banned(alias.name):
                        yield ctx.violation(
                            self, node, f"import {alias.name}: real I/O module"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and self._module_banned(node.module):
                    yield ctx.violation(
                        self, node, f"from {node.module} import: real I/O module"
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, os_aliases)

    def _check_call(
        self, ctx: LintContext, node: ast.Call, os_aliases: Set[str]
    ) -> Iterator[Violation]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if mode is None:
                return  # default "r": reading config fixtures is tolerated
            if not isinstance(mode, ast.Constant) or not isinstance(
                mode.value, str
            ):
                yield ctx.violation(
                    self, node, "open() with a dynamic mode: cannot prove read-only"
                )
            elif any(c in mode.value for c in "wax+"):
                yield ctx.violation(
                    self, node, "file write in a simulation path"
                )
        elif isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in os_aliases
                and func.attr in self._OS_CALLS
            ):
                yield ctx.violation(
                    self, node, f"os.{func.attr}(): real side effect"
                )
            elif func.attr in self._WRITE_ATTRS:
                yield ctx.violation(
                    self, node, f".{func.attr}(): file write in a simulation path"
                )


# -- CSL005: __slots__ on event/record classes ---------------------------------


@register
class SlotsRequiredRule(Rule):
    """Event/record classes in ``simnet/`` must declare ``__slots__``.

    The PR-1 kernel optimisation relies on slotted events (no per-event
    ``__dict__``); a new subclass without ``__slots__`` silently
    re-grows the dict and regresses BENCH_engine.json.
    """

    code = "CSL005"
    name = "slots-required"
    message = (
        "event/record class without __slots__: declare __slots__ "
        "(= () if empty) to keep the event kernel dict-free"
    )
    scope = ("src/repro/simnet/*",)

    _NAME_RE = re.compile(r"(Event|Record|Packet|Message)$")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._matches(node):
                continue
            if self._has_slots(node) or self._dataclass_slots(node):
                continue
            yield ctx.violation(self, node)

    def _matches(self, node: ast.ClassDef) -> bool:
        if self._NAME_RE.search(node.name):
            return True
        for base in node.bases:
            chain = _attr_chain(base)
            if chain and self._NAME_RE.search(chain[-1]):
                return True
        return False

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            ):
                return True
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
        return False

    @staticmethod
    def _dataclass_slots(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        return False


# -- CSL006: float equality on simulated time ----------------------------------


@register
class SimTimeEqualityRule(Rule):
    """``==``/``!=`` on simulated-time floats is a latent heisenbug.

    Simulated timestamps are sums of float latencies; exact equality
    depends on summation order and breaks under any refactor that
    reassociates it.  Use :func:`repro.simnet.simtime.time_eq` /
    ``time_ne`` (tolerance comparison) instead.
    """

    code = "CSL006"
    name = "no-simtime-float-equality"
    message = (
        "==/!= on a simulated-time float: use repro.simnet.simtime.time_eq "
        "/ time_ne"
    )

    _TIME_ATTRS = {"now", "time"}
    _TIME_NAMES = {"now", "sim_time"}
    _TIME_SUFFIXES = ("_time", "_at")

    def _time_like(self, node: ast.AST, extra: Set[str]) -> bool:
        if isinstance(node, ast.Attribute):
            attr = node.attr
            return (
                attr in self._TIME_ATTRS
                or attr in extra
                or attr.endswith(self._TIME_SUFFIXES)
            )
        if isinstance(node, ast.Name):
            return node.id in self._TIME_NAMES or node.id in extra
        return False

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        extra = set(ctx.options.get("time-identifiers", ()))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (left, right)
                if not any(self._time_like(o, extra) for o in pair):
                    continue
                if any(_is_none(o) for o in pair):
                    continue
                if any(
                    isinstance(o, ast.Constant)
                    and isinstance(o.value, (str, bytes, bool))
                    for o in pair
                ):
                    continue
                yield ctx.violation(self, node)
                break


# -- CSL007: mutable default arguments -----------------------------------------


@register
class MutableDefaultRule(Rule):
    """Mutable default arguments are shared state across calls.

    In a simulator that reuses builders across trials, a list/dict/set
    default quietly carries state from one seed's run into the next.
    """

    code = "CSL007"
    name = "no-mutable-default"
    message = "mutable default argument: default to None and build inside"

    _MUTABLE_CALLS = {
        "list",
        "dict",
        "set",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
        "bytearray",
    }

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            return bool(chain) and chain[-1] in self._MUTABLE_CALLS
        return False

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.violation(self, default)


# -- CSL008: inline exception→BlockType maps -----------------------------------


@register
class InlineBlockTypeMapRule(Rule):
    """Failure→BlockType mappings must live in ``core/taxonomy.py``.

    Before the taxonomy existed, three independent copies of this map
    (``detection._DNS_ERROR_TYPES``, ``measurement._failure_block_type``,
    ``circumvent.base.classify_failure``) were free to drift — one of
    them silently defaulted unknown DNS failures to ``DNS_TIMEOUT``.  A
    fourth copy would reintroduce the bug class, so any literal dict or
    pair-sequence that associates simnet failure types with ``BlockType``
    members outside the taxonomy is flagged.
    """

    code = "CSL008"
    name = "no-inline-blocktype-maps"
    message = (
        "inline exception→BlockType mapping: register the pair in "
        "repro.core.taxonomy instead (single source of truth)"
    )
    allow = ("src/repro/core/taxonomy.py",)

    _FAILURE_NAMES = {
        "DnsError",
        "DnsTimeout",
        "NxDomain",
        "ServFail",
        "Refused",
        "TcpError",
        "ConnectTimeout",
        "ConnectionReset",
        "TlsError",
        "TlsTimeout",
        "TlsReset",
        "HttpTimeout",
    }

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            pairs = self._literal_pairs(node)
            if pairs is None:
                continue
            if any(self._is_mapping_pair(a, b) for a, b in pairs):
                yield ctx.violation(self, node)

    @staticmethod
    def _literal_pairs(node: ast.AST):
        """Key/value pairs of a literal dict or sequence of 2-tuples."""
        if isinstance(node, ast.Dict):
            return [
                (key, value)
                for key, value in zip(node.keys, node.values)
                if key is not None  # skip **splat entries
            ]
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            pairs = [
                (elt.elts[0], elt.elts[1])
                for elt in node.elts
                if isinstance(elt, ast.Tuple) and len(elt.elts) == 2
            ]
            return pairs or None
        return None

    def _is_mapping_pair(self, left: ast.AST, right: ast.AST) -> bool:
        return (
            self._names_failure(left) and self._names_block_type(right)
        ) or (
            self._names_failure(right) and self._names_block_type(left)
        )

    def _names_failure(self, node: ast.AST) -> bool:
        chain = _attr_chain(node)
        return bool(chain) and chain[-1] in self._FAILURE_NAMES

    @staticmethod
    def _names_block_type(node: ast.AST) -> bool:
        chain = _attr_chain(node)
        return bool(chain) and len(chain) >= 2 and "BlockType" in chain[:-1]


# -- CSL009: scenarios are specs, not hand-built worlds ------------------------


@register
class SpecBackedScenarioRule(Rule):
    """Canned scenarios must go through the scenario DSL.

    Since the spec redesign, ``repro.scenarios`` owns world construction:
    a scenario is a :class:`ScenarioSpec` compiled by the
    ``ScenarioCompiler``, so every canned world is data that the runner,
    the CLI, and the expectation checker can all load.  A stray
    ``World(...)`` or ``CensorPolicy(...)`` call in a scenario module
    forks the construction path and silently escapes the golden
    equivalence tests — build a spec (or extend the compiler) instead.
    """

    code = "CSL009"
    name = "spec-backed-scenarios"
    message = (
        "scenario modules must not build World/CensorPolicy directly: "
        "declare a ScenarioSpec and compile it via repro.scenarios"
    )
    scope = (
        "src/repro/workloads/scenarios.py",
        "src/repro/workloads/events.py",
        "src/repro/scenarios/library.py",
    )
    allow = ("src/repro/scenarios/compiler.py",)

    _BUILDERS = {"World", "CensorPolicy"}

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain and chain[-1] in self._BUILDERS:
                yield ctx.violation(self, node)
