"""csaw-analyze: whole-program determinism analyzer for the C-Saw stack.

Usage::

    csaw-analyze src                     # interprocedural checks
    csaw-analyze graph src               # dump call graph + worker set
    python -m repro.devtools.analyze src

Where ``csaw-lint`` proves per-file invariants, this tool parses the
whole tree once into a project index, builds a conservative call graph
(direct calls, method calls by attribute name, callables handed to the
trial runner / executors), computes the worker-reachable closure, and
runs the CSA rules over it.

Configuration lives in ``[tool.csawanalyze]`` in ``pyproject.toml``
with the exact shape of ``[tool.csawlint]`` (``select``, ``baseline``,
``allow``/``scope`` sub-tables, free-form ``options`` — notably
``worker-dispatchers``, extra first-positional-callable dispatcher
names).  Inline ``# csaw-analyze: disable=CSA101`` comments suppress a
line without hiding it from csaw-lint.  Exit status is 0 iff no
unsuppressed, non-baselined findings remain.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .. import config as _config
from ..config import ToolConfig, iter_python_files, load_tool_config
from ..framework import Violation, is_suppressed, suppressed_lines
from .callgraph import build_call_graph
from .index import ProjectIndex
from .rules import AnalysisRule, Project, all_analysis_rules

__all__ = [
    "AnalyzeConfig",
    "Project",
    "analyze_paths",
    "build_project",
    "load_config",
    "main",
]

#: Inline-suppression marker (csaw-lint uses ``csaw-lint``).
MARKER = "csaw-analyze"

AnalyzeConfig = ToolConfig


def load_config(config_path: Optional[str], anchor: str) -> AnalyzeConfig:
    """Load ``[tool.csawanalyze]`` from an explicit path or project root."""
    return load_tool_config("csawanalyze", config_path, anchor)


def build_project(
    paths: Sequence[str], config: Optional[AnalyzeConfig] = None
) -> Project:
    """Parse + index the tree and build the call graph, once."""
    config = config or AnalyzeConfig()
    index = ProjectIndex.build(paths, config.root)
    extra = config.options.get("worker-dispatchers", ())
    if isinstance(extra, str):
        extra = (extra,)
    graph = build_call_graph(index, extra_dispatchers=tuple(extra))
    return Project(index=index, graph=graph, config=config)


def _effective_rules(config: AnalyzeConfig) -> List[AnalysisRule]:
    selected: List[AnalysisRule] = []
    for code, rule_cls in all_analysis_rules().items():
        if config.select and code not in config.select:
            continue
        rule = rule_cls()
        if code in config.scope:
            rule.scope = tuple(config.scope[code])
        if code in config.allow:
            rule.allow = tuple(rule.allow) + tuple(config.allow[code])
        selected.append(rule)
    return selected


def analyze_project(
    project: Project, rules: Optional[Sequence[AnalysisRule]] = None
) -> List[Violation]:
    """Run the CSA rules; apply inline suppressions per finding file."""
    if rules is None:
        rules = _effective_rules(project.config)
    violations: List[Violation] = []
    for rule in rules:
        violations.extend(rule.check(project))
    for relpath, error in project.index.parse_errors:
        violations.append(
            Violation(
                code="CSA999",
                message=f"syntax error: {error}",
                path=os.path.join(project.config.root, relpath),
                line=1,
                col=1,
            )
        )
    suppressions: Dict[str, Dict[int, frozenset]] = {}
    for module in project.index.modules.values():
        suppressions[module.path] = suppressed_lines(module.source, MARKER)
    kept = [
        violation
        for violation in violations
        if not is_suppressed(violation, suppressions.get(violation.path, {}))
    ]
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return kept


def analyze_paths(
    paths: Sequence[str], config: Optional[AnalyzeConfig] = None
) -> List[Violation]:
    config = config or AnalyzeConfig()
    return analyze_project(build_project(paths, config))


# -- CLI -----------------------------------------------------------------------


def _graph_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="csaw-analyze graph",
        description="Dump the conservative call graph and worker-reachable "
        "set as JSON.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or dirs")
    parser.add_argument("--config", help="explicit pyproject.toml path")
    parser.add_argument(
        "--output", help="write JSON here instead of stdout"
    )
    args = parser.parse_args(argv)
    paths = list(args.paths) or ["src"]
    config = load_config(args.config, paths[0])
    project = build_project(paths, config)
    payload = project.graph.to_json()
    payload["parse_errors"] = sorted(
        relpath for relpath, _ in project.index.parse_errors
    )
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "graph":
        return _graph_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="csaw-analyze",
        description="Whole-program determinism analyzer (call graph + "
        "worker reachability) for the C-Saw simulation stack.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or dirs")
    parser.add_argument(
        "--select", help="comma-separated rule codes (default: all)"
    )
    parser.add_argument("--config", help="explicit pyproject.toml path")
    parser.add_argument(
        "--baseline",
        help="baseline file (overrides [tool.csawanalyze].baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--timing", action="store_true", help="report analysis wall time"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule_cls in all_analysis_rules().items():
            doc = (rule_cls.__doc__ or "").strip().splitlines()[0]
            print(f"{code}  {rule_cls.name:<30} {doc}")
        return 0

    paths = list(args.paths) or ["src"]
    config = load_config(args.config, paths[0])
    if args.select:
        config.select = tuple(
            code.strip() for code in args.select.split(",") if code.strip()
        )

    # Real tool wall time (--timing), not simulated time.
    started = time.perf_counter()  # csaw-lint: disable=CSL002
    project = build_project(paths, config)
    violations = analyze_project(project)
    elapsed = time.perf_counter() - started  # csaw-lint: disable=CSL002

    if args.write_baseline:
        _config.write_baseline(violations, args.write_baseline, config.root)
        print(
            f"csaw-analyze: wrote baseline with {len(violations)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    baseline_path = args.baseline or config.baseline
    if baseline_path and not os.path.isabs(baseline_path):
        baseline_path = os.path.join(config.root, baseline_path)
    fresh, grandfathered = _config.apply_baseline(
        violations, _config.load_baseline(baseline_path), config.root
    )

    if args.fmt == "json":
        print(
            json.dumps(
                {
                    "violations": [vars(v) for v in fresh],
                    "grandfathered": grandfathered,
                    "n_functions": len(project.index.functions),
                    "n_worker_reachable": len(project.graph.worker_reachable),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for violation in fresh:
            print(violation.render())
        summary = (
            f"csaw-analyze: {len(fresh)} finding(s) across "
            f"{len(project.index.modules)} module(s), "
            f"{len(project.index.functions)} function(s), "
            f"{len(project.graph.worker_reachable)} worker-reachable"
        )
        if grandfathered:
            summary += f", {grandfathered} grandfathered by baseline"
        if args.timing:
            summary += f" [{elapsed:.2f}s]"
        print(summary, file=sys.stderr)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
