"""Conservative call graph + worker reachability for ``csaw-analyze``.

Edges come from three resolution strategies, in decreasing precision:

1. **Direct calls** — ``Name(...)`` and dotted ``module.func(...)`` /
   ``Class.method(...)`` chains resolved through the project index
   (imports, re-export facades, class symbol tables).  A call to a
   class adds an edge to its ``__init__`` when one is defined.
2. **Method calls by attribute name** — ``obj.m(...)`` adds an edge to
   *every* class method named ``m`` in the class/attribute map.  This
   is deliberately receiver-type-free: the index has no type inference,
   and for determinism auditing a false edge (over-reachability) is
   safe where a missed edge is not.  Chains whose root is an imported
   module that resolves to nothing in the project (``os.path.join``)
   are external and add no edge.
3. **Callable arguments to worker dispatchers** — a function passed
   where the trial runner or an executor will call it in a *different
   process* is both an edge and a **worker entrypoint**:
   ``TrialSpec(name, fn, ...)`` / ``TrialSpec(fn=...)``,
   ``run_seed_sweep(fn, ...)``, and ``<obj>.map(fn, ...)`` /
   ``<obj>.submit(fn, ...)`` (``ProcessPoolExecutor``).  Extra
   dispatcher names can be added via the ``worker-dispatchers`` option
   in ``[tool.csawanalyze.options]`` (first positional argument
   semantics) — e.g. ``run_fleet_storm_sharded`` if callers start
   passing callables into it.

The **worker-reachable set** is the forward closure over these edges
from the worker entrypoints; every CSA rule that audits shard safety
(CSA101/CSA102) evaluates against it.  Cycles are tolerated (plain
BFS), and each reachable function records the entrypoint that first
reached it so findings can name a concrete worker path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .index import FunctionInfo, ModuleInfo, ProjectIndex, _attr_chain

__all__ = ["CallGraph", "build_call_graph"]

#: name -> index of the positional callable argument (None = keyword only)
_DISPATCHERS: Dict[str, Tuple[Optional[int], Optional[str]]] = {
    "TrialSpec": (1, "fn"),
    "run_seed_sweep": (0, "fn"),
}
#: attribute-call dispatchers (executor/pool style): first positional arg
_ATTR_DISPATCHERS = {"map", "submit"}


@dataclass
class CallGraph:
    """Edges, worker entrypoints, and the reachability closure."""

    index: ProjectIndex
    #: caller qualname -> {callee qualname -> first call-site lineno}
    edges: Dict[str, Dict[str, int]] = field(default_factory=dict)
    worker_entrypoints: Dict[str, int] = field(default_factory=dict)
    #: reachable qualname -> entrypoint qualname that first reached it
    worker_reachable: Dict[str, str] = field(default_factory=dict)

    def add_edge(self, caller: str, callee: str, lineno: int) -> None:
        callees = self.edges.setdefault(caller, {})
        if callee not in callees:
            callees[callee] = lineno

    def callees(self, qualname: str) -> Dict[str, int]:
        return self.edges.get(qualname, {})

    def callers_of(self) -> Dict[str, List[str]]:
        """Reverse adjacency (sorted), for backward taint propagation."""
        reverse: Dict[str, List[str]] = {}
        for caller in sorted(self.edges):
            for callee in sorted(self.edges[caller]):
                reverse.setdefault(callee, []).append(caller)
        return reverse

    def compute_reachability(self) -> None:
        reached: Dict[str, str] = {}
        queue: List[str] = []
        for entry in sorted(self.worker_entrypoints):
            if entry not in reached:
                reached[entry] = entry
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            origin = reached[current]
            for callee in sorted(self.edges.get(current, {})):
                if callee in reached or callee not in self.index.functions:
                    continue
                reached[callee] = origin
                queue.append(callee)
        self.worker_reachable = reached

    def shortest_path(self, src: str, dst: str) -> Optional[List[str]]:
        """BFS path src → dst over call edges (None when unreachable)."""
        if src == dst:
            return [src]
        prev: Dict[str, str] = {src: src}
        queue = [src]
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.edges.get(current, {})):
                if callee in prev:
                    continue
                prev[callee] = current
                if callee == dst:
                    path = [callee]
                    while path[-1] != src:
                        path.append(prev[path[-1]])
                    path.reverse()
                    return path
                queue.append(callee)
        return None

    def to_json(self) -> Dict[str, object]:
        """Stable-order summary for ``csaw-analyze graph``."""
        return {
            "modules": sorted(self.index.modules),
            "n_functions": len(self.index.functions),
            "n_edges": sum(len(c) for c in self.edges.values()),
            "edges": {
                caller: sorted(self.edges[caller])
                for caller in sorted(self.edges)
            },
            "worker_entrypoints": sorted(self.worker_entrypoints),
            "worker_reachable": sorted(self.worker_reachable),
        }


def _binding_names(target: ast.AST) -> Set[str]:
    """Names a binding target actually binds.

    ``x = ...`` binds ``x``; ``(a, *b), c = ...`` binds a/b/c — but
    ``CACHE[k] = ...`` and ``obj.attr = ...`` bind *nothing*: they
    mutate an existing object, which is exactly the distinction the
    shared-state rules rest on.
    """
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for elt in target.elts:
            names |= _binding_names(elt)
        return names
    return set()


def _local_names(fn_node: ast.AST) -> Set[str]:
    """Names bound locally in a function (params, assignments, loops...).

    Used to keep a local rebinding of a name from being mistaken for a
    reference to a module-level global of the same name.  ``global``
    declarations subtract from the local set.
    """
    names: Set[str] = set()
    globals_declared: Set[str] = set()
    args = fn_node.args  # type: ignore[attr-defined]
    for arg in (
        list(getattr(args, "posonlyargs", []))
        + args.args
        + args.kwonlyargs
        + [a for a in (args.vararg, args.kwarg) if a is not None]
    ):
        names.add(arg.arg)
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                names |= _binding_names(target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names |= _binding_names(node.target)
        elif isinstance(node, ast.comprehension):
            names |= _binding_names(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names |= _binding_names(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn_node:
                names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".", 1)[0])
    return names - globals_declared


def _resolve_callable_arg(
    index: ProjectIndex, module: ModuleInfo, node: ast.AST
) -> Optional[str]:
    """Qualname of a function/class passed as a callable argument."""
    chain = _attr_chain(node)
    if chain is None:
        return None
    resolved = index.resolve(module, chain)
    if resolved is None:
        return None
    if resolved in index.functions:
        return resolved
    cls = index.classes.get(resolved)
    if cls is not None:
        return cls.methods.get("__init__", resolved)
    return None


def build_call_graph(
    index: ProjectIndex, extra_dispatchers: Iterable[str] = ()
) -> CallGraph:
    """Build edges + entrypoints for every indexed function."""
    graph = CallGraph(index=index)
    dispatchers = dict(_DISPATCHERS)
    for name in extra_dispatchers:
        dispatchers[str(name)] = (0, "fn")
    for qualname in sorted(index.functions):
        info = index.functions[qualname]
        module = index.modules[info.module]
        _collect_edges(graph, info, module, dispatchers)
    graph.compute_reachability()
    return graph


def _collect_edges(
    graph: CallGraph,
    info: FunctionInfo,
    module: ModuleInfo,
    dispatchers: Dict[str, Tuple[Optional[int], Optional[str]]],
) -> None:
    index = graph.index
    locals_ = _local_names(info.node)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        callee_name = chain[-1] if chain else None
        resolved: Optional[str] = None
        if chain is not None:
            if len(chain) == 1 and chain[0] in locals_:
                resolved = None  # a local callable; handled by fold/dispatch
            else:
                resolved = index.resolve(module, chain)
            if resolved is not None:
                target = resolved
                cls = index.classes.get(target)
                if cls is not None:
                    init = cls.methods.get("__init__")
                    target = init if init is not None else None
                if target is not None and target in index.functions:
                    graph.add_edge(info.qualname, target, node.lineno)
            elif (
                len(chain) > 1
                and chain[0] not in locals_
                and chain[0] in module.imports
                and index.resolve(module, chain[:1]) is None
            ):
                # Rooted at an external module (os., json., ...): no
                # project edge, and no method fan-out either.
                pass
            elif len(chain) > 1 and callee_name:
                # Method call on an object: fan out by attribute name
                # over the class map.
                for method in index.methods_by_name.get(callee_name, ()):
                    graph.add_edge(info.qualname, method, node.lineno)
        # Worker-dispatcher callable arguments.
        if callee_name is None:
            continue
        spec: Optional[Tuple[Optional[int], Optional[str]]] = None
        if callee_name in dispatchers and (
            chain is not None and (len(chain) == 1 or resolved is not None)
        ):
            spec = dispatchers[callee_name]
        elif (
            callee_name in _ATTR_DISPATCHERS
            and chain is not None
            and len(chain) > 1
        ):
            spec = (0, None)
        if spec is None:
            continue
        pos, kw = spec
        candidates: List[ast.AST] = []
        if pos is not None and len(node.args) > pos:
            candidates.append(node.args[pos])
        if kw is not None:
            for keyword in node.keywords:
                if keyword.arg == kw:
                    candidates.append(keyword.value)
        for candidate in candidates:
            target = _resolve_callable_arg(index, module, candidate)
            if target is None or target not in index.functions:
                continue
            graph.add_edge(info.qualname, target, node.lineno)
            graph.worker_entrypoints.setdefault(target, node.lineno)
