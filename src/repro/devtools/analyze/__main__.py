"""``python -m repro.devtools.analyze`` entry point."""

import sys

from .main import main

sys.exit(main())
