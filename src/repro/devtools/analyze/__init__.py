"""csaw-analyze: whole-program static analyzer for the C-Saw stack.

Complements the per-file ``csaw-lint`` with interprocedural checks:
a project index (:mod:`.index`), a conservative call graph with a
worker-reachability closure (:mod:`.callgraph`), and the CSA rule
catalogue (:mod:`.rules`).  Entry points: the ``csaw-analyze`` console
script and ``python -m repro.devtools.analyze`` (:mod:`.main`).
"""

from __future__ import annotations

_LAZY = {
    "AnalyzeConfig": "main",
    "Project": "rules",
    "ProjectIndex": "index",
    "CallGraph": "callgraph",
    "all_analysis_rules": "rules",
    "analyze_paths": "main",
    "build_call_graph": "callgraph",
    "build_project": "main",
    "main": "main",
}

__all__ = sorted(_LAZY)


def __getattr__(name):
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
