"""The csaw-analyze rule catalogue (CSA101–CSA105).

Where csaw-lint's CSL rules prove invariants one file at a time, these
rules run over the whole-program :class:`~.index.ProjectIndex` and
:class:`~.callgraph.CallGraph` and catch the class of determinism bug
that lives *between* modules: shared state reaching a process-pool
worker through three layers of helpers, two packages registering the
same RNG stream name, a set materialized into a public return value by
a function whose set-ness is only visible in another module.

Every rule is conservative in the same direction as the call graph:
over-approximate reachability, under-approximate safety.  A finding is
silenced with ``# csaw-analyze: disable=CSA10X`` (same inline grammar
as csaw-lint, different marker) or per-file ``allow`` globs under
``[tool.csawanalyze]``; the committed baseline is empty, so anything
new fails CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..config import ToolConfig
from ..framework import Rule, Violation
from ..rules import WallClockRule, _from_imports, _module_aliases
from .callgraph import CallGraph, _local_names
from .index import ModuleInfo, ProjectIndex, _attr_chain

__all__ = [
    "AnalysisRule",
    "Project",
    "all_analysis_rules",
    "register_analysis",
]


@dataclass
class Project:
    """Everything a whole-program rule needs."""

    index: ProjectIndex
    graph: CallGraph
    config: ToolConfig


class AnalysisRule(Rule):
    """Base for whole-program rules: ``check`` sees the project, not a file."""

    code: str = "CSA100"

    def check(self, project: Project) -> Iterator[Violation]:  # type: ignore[override]
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: Optional[str] = None,
    ) -> Violation:
        return Violation(
            code=self.code,
            message=message if message is not None else self.message,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            severity=self.severity,
        )


_ANALYSIS_REGISTRY: Dict[str, type] = {}


def register_analysis(rule_cls: type) -> type:
    code = rule_cls.code
    if code in _ANALYSIS_REGISTRY and _ANALYSIS_REGISTRY[code] is not rule_cls:
        raise ValueError(f"duplicate analysis rule code {code}")
    _ANALYSIS_REGISTRY[code] = rule_cls
    return rule_cls


def all_analysis_rules() -> Dict[str, type]:
    return {code: _ANALYSIS_REGISTRY[code] for code in sorted(_ANALYSIS_REGISTRY)}


#: method names that mutate their receiver in place
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popitem",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}


def _fmt_path(path: Sequence[str]) -> str:
    if len(path) > 5:
        path = list(path[:2]) + ["..."] + list(path[-2:])
    return " -> ".join(path)


# -- CSA101: worker-reachable writes to module-level mutable state -------------


@register_analysis
class WorkerSharedStateRule(AnalysisRule):
    """Module-level mutable state written by worker-reachable code.

    :func:`repro.runner.run_trials` ships trial callables to
    ``ProcessPoolExecutor`` workers; any function reachable from such an
    entrypoint that writes a module-level dict/list/set (or a mutable
    class attribute, or rebinds a ``global``) makes the trial's result
    depend on what else ran in the same worker — the classic
    shard-count/scheduling hazard no per-file rule can see, because the
    write and the dispatch usually live in different modules.  Fix by
    passing state in explicitly; for provably idempotent memoization
    prefer ``functools.lru_cache`` on a pure function, or suppress with
    a comment stating why the write is order-free.
    """

    code = "CSA101"
    name = "no-worker-global-state"
    message = "module-level mutable state written in worker-reachable code"

    def check(self, project: Project) -> Iterator[Violation]:
        index, graph = project.index, project.graph
        for qualname in sorted(graph.worker_reachable):
            fn = index.functions.get(qualname)
            if fn is None:
                continue
            module = index.modules[fn.module]
            if not self.applies_to(module.relpath):
                continue
            entry = graph.worker_reachable[qualname]
            for node, state, how in _iter_global_writes(fn.node, module, index):
                yield self.finding(
                    module,
                    node,
                    f"{how} of module-level mutable state {state} in "
                    f"{fn.qualname}, which is worker-reachable from "
                    f"{entry} (shard-determinism hazard: ships to "
                    "ProcessPoolExecutor workers); thread the state "
                    "through the trial instead",
                )


def _iter_global_writes(
    fn_node: ast.AST, module: ModuleInfo, index: ProjectIndex
) -> Iterator[Tuple[ast.AST, str, str]]:
    """(site, state qualname, verb) for writes to module/class state."""
    locals_ = _local_names(fn_node)
    global_decls: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)

    def resolve_state(value: ast.AST) -> Optional[str]:
        """Qualname of the module global / mutable class attr a chain
        denotes, or None for locals and unknowns."""
        chain = _attr_chain(value)
        if chain is None or chain[0] in locals_:
            return None
        resolved = index.resolve(module, chain)
        if resolved is None:
            return None
        info = index.module_globals.get(resolved)
        if info is not None and info.mutable:
            return info.qualname
        cls = index.classes.get(resolved)
        if cls is not None and len(chain) >= 2:
            attr = chain[-1]
            if attr in cls.mutable_attrs:
                return f"{cls.qualname}.{attr}"
        return None

    for node in ast.walk(fn_node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in global_decls:
                        qual = module.globals.get(
                            target.id, f"{module.name}.{target.id}"
                        )
                        yield node, qual, "global rebinding"
                elif isinstance(target, (ast.Subscript,)):
                    state = resolve_state(target.value)
                    if state is not None:
                        yield node, state, "item assignment"
                elif isinstance(target, ast.Attribute):
                    chain = _attr_chain(target)
                    if chain is None or chain[0] in locals_:
                        continue
                    resolved = index.resolve(module, chain[:-1])
                    if resolved in index.classes:
                        yield (
                            node,
                            f"{resolved}.{chain[-1]}",
                            "class-attribute assignment",
                        )
                    else:
                        state = resolve_state(target)
                        if state is not None:
                            yield node, state, "attribute assignment"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    state = resolve_state(
                        target.value
                        if isinstance(target, ast.Subscript)
                        else target
                    )
                    if state is not None:
                        yield node, state, "deletion"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                state = resolve_state(func.value)
                if state is not None:
                    yield node, state, f".{func.attr}() mutation"


# -- CSA102: RngRegistry stream-name registry ----------------------------------


@register_analysis
class RngStreamRegistryRule(AnalysisRule):
    """Cross-module audit of the named-RNG-stream registry.

    Three hazards around ``RngRegistry.stream(name)``:

    - **collision** — two modules registering the same stream name on a
      shared registry interleave their draw sequences: refactoring one
      module silently changes the other's numbers.  (Streams taken from
      a ``fork()``-ed child registry are per-entity namespaces and are
      exempt.)
    - **dynamic name** — a stream name computed from non-constant parts
      (no literal, no threaded parameter, no constant prefix/suffix)
      cannot be audited for collisions at all.
    - **constant seed in worker code** — ``RngRegistry(seed=<const>)``
      or ``random.Random(<const>)`` inside worker-reachable code gives
      every trial the identical draw sequence; derive the seed from the
      trial identity via :func:`repro.runner.derive_seed`.
    """

    code = "CSA102"
    name = "rng-stream-registry"
    message = "RngRegistry stream-name hazard"

    def check(self, project: Project) -> Iterator[Violation]:
        index, graph = project.index, project.graph
        registrations: Dict[str, List[Tuple[str, ModuleInfo, ast.AST]]] = {}
        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            module = index.modules[fn.module]
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute) and func.attr == "stream"):
                    continue
                if _is_forked_receiver(func.value):
                    continue
                if len(node.args) != 1 or node.keywords:
                    continue
                key, dynamic = _stream_name_key(node.args[0])
                if dynamic and self.applies_to(module.relpath):
                    yield self.finding(
                        module,
                        node,
                        "dynamically computed RNG stream name defeats the "
                        "collision audit: use a literal, a threaded "
                        "parameter, or a constant prefix",
                    )
                elif key is not None:
                    registrations.setdefault(key, []).append(
                        (module.name, module, node)
                    )
        for key in sorted(registrations):
            sites = registrations[key]
            modules_used = sorted({name for name, _, _ in sites})
            if len(modules_used) < 2:
                continue
            for name, module, node in sites:
                if not self.applies_to(module.relpath):
                    continue
                others = ", ".join(m for m in modules_used if m != name)
                yield self.finding(
                    module,
                    node,
                    f"RNG stream name {key!r} is also registered in "
                    f"{others}: shared streams couple draw sequences "
                    "across modules — namespace the name",
                )
        yield from self._constant_seeds(project)

    def _constant_seeds(self, project: Project) -> Iterator[Violation]:
        index, graph = project.index, project.graph
        alias_cache: Dict[str, Set[str]] = {}
        for qualname in sorted(graph.worker_reachable):
            fn = index.functions.get(qualname)
            if fn is None:
                continue
            module = index.modules[fn.module]
            if not self.applies_to(module.relpath):
                continue
            random_aliases = alias_cache.get(fn.module)
            if random_aliases is None:
                random_aliases = alias_cache[fn.module] = _module_aliases(
                    module.tree, "random"
                )
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                chain = _attr_chain(node.func)
                if chain is None:
                    continue
                is_registry = chain[-1] == "RngRegistry"
                is_random = (
                    len(chain) == 2
                    and chain[0] in random_aliases
                    and chain[1] == "Random"
                ) or (
                    len(chain) == 1
                    and module.imports.get(chain[0]) == "random.Random"
                )
                if not (is_registry or is_random):
                    continue
                seed_arg: Optional[ast.AST] = None
                if node.args:
                    seed_arg = node.args[0]
                for kw in node.keywords:
                    if kw.arg == "seed":
                        seed_arg = kw.value
                if isinstance(seed_arg, ast.Constant) and isinstance(
                    seed_arg.value, (int, float, str)
                ):
                    entry = project.graph.worker_reachable[qualname]
                    yield self.finding(
                        module,
                        node,
                        f"constant-seeded RNG in {fn.qualname}, which is "
                        f"worker-reachable from {entry}: every trial draws "
                        "the identical sequence — derive the seed from the "
                        "trial identity via repro.runner.derive_seed",
                    )


def _is_forked_receiver(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "fork"
    )


def _stream_name_key(arg: ast.AST) -> Tuple[Optional[str], bool]:
    """(registry key, is_dynamic) for a stream-name argument."""
    if isinstance(arg, ast.Constant):
        if isinstance(arg.value, str):
            return arg.value, False
        return None, True
    if isinstance(arg, (ast.Name, ast.Attribute)):
        return None, False  # threaded: the literal registers at the caller
    if isinstance(arg, ast.JoinedStr):
        if (
            arg.values
            and isinstance(arg.values[0], ast.Constant)
            and isinstance(arg.values[0].value, str)
            and arg.values[0].value
        ):
            return f"{arg.values[0].value}*", False
        return None, True
    if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Add):
        left_const = isinstance(arg.left, ast.Constant) and isinstance(
            arg.left.value, str
        )
        right_const = isinstance(arg.right, ast.Constant) and isinstance(
            arg.right.value, str
        )
        if left_const or right_const:
            return None, False  # constant prefix/suffix on a threaded name
        return None, True
    return None, True


# -- CSA103: ambient-state escape through helper layers ------------------------


@register_analysis
class AmbientEscapeRule(AnalysisRule):
    """Transitive reach into CSL001/CSL002-banned sinks.

    The per-file rules flag a ``random.random()`` or ``time.time()``
    *at its own site* — but cannot see simulation code calling a helper
    in another module that calls the sink.  This rule propagates sink
    taint backwards over the call graph and flags every function that
    reaches an ambient-randomness or wall-clock sink through at least
    one call edge.  Files in ``allow`` (the trial runner, which times
    real execution, and the CLI, which records pack runtimes) are
    *sanctioned sources*: sinks there neither taint callers nor get
    reported — mirroring the csaw-lint CSL002 allowlist.
    """

    code = "CSA103"
    name = "no-ambient-escape"
    message = "transitively reaches an ambient-randomness/wall-clock sink"
    allow = (
        "src/repro/runner/core.py",
        "src/repro/cli.py",
        "benchmarks/*",
    )

    def check(self, project: Project) -> Iterator[Violation]:
        index, graph = project.index, project.graph
        sink_desc: Dict[str, str] = {}
        envs: Dict[str, "_SinkEnv"] = {}
        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            module = index.modules[fn.module]
            if not self.applies_to(module.relpath):
                continue  # sanctioned source: no taint from here
            env = envs.get(fn.module)
            if env is None:
                env = envs[fn.module] = _SinkEnv(module)
            desc = _direct_sink(fn.node, env)
            if desc is not None:
                sink_desc[qualname] = desc
        # Backward taint over the call graph; next_hop reconstructs a
        # concrete escape path for the message.
        tainted: Dict[str, str] = dict(sink_desc)
        next_hop: Dict[str, str] = {}
        reverse = graph.callers_of()
        queue = sorted(sink_desc)
        while queue:
            current = queue.pop(0)
            for caller in reverse.get(current, ()):
                if caller in tainted or caller not in index.functions:
                    continue
                tainted[caller] = tainted[current]
                next_hop[caller] = current
                queue.append(caller)
        for qualname in sorted(tainted):
            if qualname in sink_desc:
                continue  # the direct site is csaw-lint's finding
            fn = index.functions[qualname]
            module = index.modules[fn.module]
            if not self.applies_to(module.relpath):
                continue
            hop = next_hop[qualname]
            path = [qualname]
            while path[-1] in next_hop:
                path.append(next_hop[path[-1]])
            lineno = graph.callees(qualname).get(hop, fn.lineno)
            site = ast.Module(body=[], type_ignores=[])
            site.lineno = lineno  # type: ignore[attr-defined]
            site.col_offset = 0  # type: ignore[attr-defined]
            yield self.finding(
                module,
                site,
                f"{fn.qualname} transitively reaches {tainted[qualname]} "
                f"via {_fmt_path(path)}: ambient state escapes through "
                "helper layers the per-file rules cannot follow",
            )


class _SinkEnv:
    """Per-module alias tables for sink detection (computed once)."""

    def __init__(self, module: ModuleInfo):
        self.random_aliases = _module_aliases(module.tree, "random")
        self.time_aliases = _module_aliases(module.tree, "time")
        self.dt_aliases = _module_aliases(module.tree, "datetime")
        self.time_from = {
            name
            for name in _from_imports(module.tree, "time")
            if name in WallClockRule._TIME_FUNCS
        }
        self.random_from = {
            name
            for name in _from_imports(module.tree, "random")
            if name != "Random"
        }
        self.any_names = (
            self.random_aliases
            | self.time_aliases
            | self.dt_aliases
            | self.time_from
            | self.random_from
        )


def _direct_sink(fn_node: ast.AST, env: _SinkEnv) -> Optional[str]:
    """Description of an ambient sink the function contains, or None."""
    if not env.any_names:
        return None
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None or chain[0] not in env.any_names:
            continue
        root, leaf = chain[0], chain[-1]
        if len(chain) == 1:
            if root in env.time_from:
                return f"wall-clock sink time.{root}()"
            if root in env.random_from:
                return f"ambient-randomness sink random.{root}()"
        elif root in env.random_aliases and leaf != "Random":
            return f"ambient-randomness sink random.{leaf}()"
        elif root in env.time_aliases and leaf in WallClockRule._TIME_FUNCS:
            return f"wall-clock sink time.{leaf}()"
        elif (
            leaf in WallClockRule._DATETIME_FUNCS
            and len(chain) == 3
            and root in env.dt_aliases
            and chain[1] in {"datetime", "date"}
        ):
            return f"wall-clock sink {'.'.join(chain)}()"
    return None


# -- CSA104: frozen-spec mutation ----------------------------------------------


@register_analysis
class FrozenSpecMutationRule(AnalysisRule):
    """Attribute writes on ScenarioSpec-subtree parameters.

    The scenario DSL's soundness rests on specs being values: the
    compiler may be called any number of times on the same spec and
    must assemble the same world.  A function that assigns into a
    parameter typed as a spec-tree class (or mutates one of its
    list/dict attributes) turns the declarative layer back into shared
    state.  The spec classes come from ``repro.scenarios.spec`` by
    default; override with ``spec-modules`` in
    ``[tool.csawanalyze.options]``.
    """

    code = "CSA104"
    name = "no-frozen-spec-mutation"
    message = "mutation of a ScenarioSpec-subtree parameter"

    _DEFAULT_SPEC_MODULES = ("repro.scenarios.spec",)

    def check(self, project: Project) -> Iterator[Violation]:
        index = project.index
        spec_modules = tuple(
            project.config.options.get("spec-modules", self._DEFAULT_SPEC_MODULES)
        )
        spec_classes = {
            cls.name
            for cls in index.classes.values()
            if cls.module in spec_modules
        }
        spec_classes.add("ScenarioSpec")
        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            module = index.modules[fn.module]
            if not self.applies_to(module.relpath):
                continue
            roots = {
                param
                for param, annotation in fn.params.items()
                if any(name in spec_classes for name in annotation)
            }
            if not roots:
                continue
            for node, detail in _iter_param_mutations(fn.node, roots):
                yield self.finding(
                    module,
                    node,
                    f"{detail} on spec parameter in {fn.qualname}: specs "
                    "are frozen values — build a new spec "
                    "(dataclasses.replace) or extend the compiler",
                )


def _iter_param_mutations(
    fn_node: ast.AST, roots: Set[str]
) -> Iterator[Tuple[ast.AST, str]]:
    def rooted(value: ast.AST) -> bool:
        chain = _attr_chain(value)
        return chain is not None and len(chain) >= 2 and chain[0] in roots

    for node in ast.walk(fn_node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute) and rooted(target):
                    yield node, "attribute assignment"
                elif isinstance(target, ast.Subscript) and rooted(target.value):
                    yield node, "item assignment"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and rooted(
                    target if isinstance(target, ast.Attribute) else target.value
                ):
                    yield node, "deletion"
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and rooted(func.value)
            ):
                yield node, f".{func.attr}() mutation"


# -- CSA105: unordered results escaping public functions -----------------------


@register_analysis
class UnorderedPublicResultRule(AnalysisRule):
    """Set iteration order materialized into public return values.

    csaw-lint CSL003 tracks set-ness *within one file*; it cannot know
    that ``helpers.candidates()`` three modules away returns a set.
    This rule computes the returns-a-set property interprocedurally
    (annotations + returned expressions, to a fixpoint over the call
    graph) and flags public ``repro.*`` functions whose return value
    materializes the order of such a set (``list()``/``tuple()``/
    ``join``/comprehensions, dict-built-over-set).  Only call-sourced
    set-ness is flagged — purely local cases are CSL003's findings.
    """

    code = "CSA105"
    name = "no-unordered-public-results"
    message = "public return value materializes hash order of a set"

    def check(self, project: Project) -> Iterator[Violation]:
        index = project.index
        returns_set = _returns_set_fixpoint(index)
        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            if not fn.is_public:
                continue
            module = index.modules[fn.module]
            if not self.applies_to(module.relpath):
                continue
            for node, source in _iter_ordered_escapes(
                fn.node, module, index, returns_set
            ):
                yield self.finding(
                    module,
                    node,
                    f"return value of public {fn.qualname} materializes "
                    f"the iteration order of a set produced by {source} "
                    "(invisible to per-file CSL003): sort it first",
                )


_SET_ANNOTATIONS = {"Set", "set", "frozenset", "FrozenSet", "AbstractSet",
                    "MutableSet"}
_SET_ALGEBRA_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
_ORDER_MATERIALIZERS = {"list", "tuple"}


class _SetTracker:
    """Per-function sequential scan tracking which local names hold sets
    and whether the set-ness came from a project function call."""

    def __init__(
        self,
        module: ModuleInfo,
        index: ProjectIndex,
        returns_set: Set[str],
    ):
        self.module = module
        self.index = index
        self.returns_set = returns_set
        #: local name -> via_call
        self.setnames: Dict[str, bool] = {}

    def resolve_call_source(self, node: ast.Call) -> Optional[str]:
        chain = _attr_chain(node.func)
        if chain is None:
            return None
        resolved = self.index.resolve(self.module, chain)
        if resolved is not None and resolved in self.returns_set:
            return resolved
        if resolved is None and len(chain) > 1:
            # obj.method(): accept only an unambiguous method-name match
            # to keep the conservative fan-out from flooding this rule.
            methods = self.index.methods_by_name.get(chain[-1], [])
            if len(methods) == 1 and methods[0] in self.returns_set:
                return methods[0]
        return None

    def set_likeness(self, node: ast.AST) -> Tuple[bool, Optional[str]]:
        """(is a set, call source qualname when call-sourced)."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True, None
        if isinstance(node, ast.Name):
            if node.id in self.setnames:
                return True, self.setnames[node.id] or None
            return False, None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True, None
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_ALGEBRA_METHODS
            ):
                return self.set_likeness(func.value)
            source = self.resolve_call_source(node)
            if source is not None:
                return True, source
            return False, None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self.set_likeness(node.left)
            right = self.set_likeness(node.right)
            if left[0] or right[0]:
                return True, left[1] or right[1]
        return False, None

    def bind(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            return
        is_set, source = self.set_likeness(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.setnames[target.id] = source or ""
                else:
                    self.setnames.pop(target.id, None)


def _scan_returns(
    fn_node: ast.AST,
    tracker: _SetTracker,
) -> Iterator[Tuple[ast.Return, "_SetTracker"]]:
    """Yield return statements with binding state up to that point.

    Statement-ordered walk; function/class bodies nested inside are
    skipped (their returns are their own), compound-statement bodies
    share the enclosing binding state (the CSL003 approximation).
    """

    def scan(stmts: Sequence[ast.stmt]) -> Iterator[Tuple[ast.Return, _SetTracker]]:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                yield stmt, tracker
            tracker.bind(stmt)
            for field_name, value in ast.iter_fields(stmt):
                if field_name in ("body", "orelse", "finalbody") and isinstance(
                    value, list
                ):
                    yield from scan(value)
                elif field_name == "handlers":
                    for handler in value:
                        yield from scan(handler.body)

    yield from scan(fn_node.body)  # type: ignore[attr-defined]


def _function_returns_set(
    fn_node: ast.AST,
    module: ModuleInfo,
    index: ProjectIndex,
    returns_set: Set[str],
) -> bool:
    tracker = _SetTracker(module, index, returns_set)
    for ret, state in _scan_returns(fn_node, tracker):
        if state.set_likeness(ret.value)[0]:  # type: ignore[arg-type]
            return True
    return False


def _returns_set_fixpoint(index: ProjectIndex) -> Set[str]:
    returns_set: Set[str] = {
        qualname
        for qualname, fn in index.functions.items()
        if any(name in _SET_ANNOTATIONS for name in fn.return_annotation)
    }
    changed = True
    rounds = 0
    while changed and rounds < len(index.functions) + 1:
        changed = False
        rounds += 1
        for qualname in sorted(index.functions):
            if qualname in returns_set:
                continue
            fn = index.functions[qualname]
            module = index.modules[fn.module]
            if _function_returns_set(fn.node, module, index, returns_set):
                returns_set.add(qualname)
                changed = True
    return returns_set


def _iter_ordered_escapes(
    fn_node: ast.AST,
    module: ModuleInfo,
    index: ProjectIndex,
    returns_set: Set[str],
) -> Iterator[Tuple[ast.AST, str]]:
    tracker = _SetTracker(module, index, returns_set)
    for ret, state in _scan_returns(fn_node, tracker):
        value = ret.value
        assert value is not None
        for node in ast.walk(value):
            if isinstance(node, ast.Call):
                func = node.func
                is_materializer = (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_MATERIALIZERS
                ) or (isinstance(func, ast.Attribute) and func.attr == "join")
                if is_materializer and node.args:
                    is_set, source = state.set_likeness(node.args[0])
                    if is_set and source:
                        yield node, source
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    is_set, source = state.set_likeness(gen.iter)
                    if is_set and source:
                        yield node, source
