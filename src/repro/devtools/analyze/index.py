"""Whole-program project index for ``csaw-analyze``.

One pass parses every module of the analyzed tree and produces the
symbol-level facts the interprocedural rules and the call graph are
built from:

- :class:`ModuleInfo` — dotted module name (derived from the path under
  the project root, with a leading ``src/`` stripped), the parsed AST,
  and the module's import table with *relative imports resolved* against
  the package, so ``from ..runner import run_trials`` in
  ``repro.core.fleet`` maps the local name ``run_trials`` to
  ``repro.runner.run_trials``;
- :class:`FunctionInfo` — every module-level function and every method
  (nested ``def``\\ s and lambdas are *folded into* their enclosing
  function: their calls and writes are attributed to it, which is the
  conservative choice for reachability — a nested helper ships to a
  worker whenever its closure does);
- :class:`ClassInfo` — the class/attribute map used for name-based
  method resolution, plus class-level mutable attributes (CSA101);
- :class:`GlobalInfo` — module-level bindings, with the mutable subset
  (dict/list/set/comprehension or a call to a mutable constructor)
  marked, since those are the shard-determinism hazards when written
  from worker-reachable code.

Name resolution (:meth:`ProjectIndex.resolve`) follows one level of
re-export chains (``repro.runner.run_trials`` →
``repro.runner.core.run_trials``) with a visited set, so package
``__init__`` facades do not hide the real definition.  Module-level
*statements* other than defs/imports/assignments are not modeled: the
analyzer reasons about what runs when a worker calls a function, not
about import-time side effects.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import iter_python_files

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "GlobalInfo",
    "ModuleInfo",
    "ProjectIndex",
    "module_name_for",
]

#: Constructors whose module-level result is mutable shared state.
MUTABLE_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "bytearray",
    "array",
}


def module_name_for(relpath: str) -> str:
    """Dotted module name for a project-relative posix path.

    ``src/repro/core/fleet.py`` → ``repro.core.fleet``;
    ``src/repro/runner/__init__.py`` → ``repro.runner``.
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_mutable_value(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(
        node,
        (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in MUTABLE_CONSTRUCTORS
    if isinstance(node, ast.BinOp):
        # e.g. ``array("q", [-1]) * n`` — mutable result of arithmetic
        # on a mutable operand.
        return _is_mutable_value(node.left) or _is_mutable_value(node.right)
    return False


def _annotation_names(node: Optional[ast.AST]) -> Tuple[str, ...]:
    """All identifier last-parts mentioned in an annotation expression.

    ``Optional[ScenarioSpec]`` → ("Optional", "ScenarioSpec"); string
    annotations are parsed as expressions when they parse at all.
    """
    if node is None:
        return ()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ()
    names: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
    return tuple(names)


@dataclass
class FunctionInfo:
    """One analyzable function or method (nested defs folded in)."""

    name: str
    qualname: str  # module.func or module.Class.method
    module: str
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    class_name: Optional[str] = None
    lineno: int = 1
    #: parameter name -> identifier names in its annotation
    params: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    return_annotation: Tuple[str, ...] = ()

    @property
    def is_public(self) -> bool:
        if self.name.startswith("_"):
            return False
        if self.class_name is not None and self.class_name.startswith("_"):
            return False
        return all(not part.startswith("_") for part in self.module.split("."))


@dataclass
class ClassInfo:
    """A class and its attribute map (for name-based method resolution)."""

    name: str
    qualname: str
    module: str
    lineno: int = 1
    #: method name -> function qualname
    methods: Dict[str, str] = field(default_factory=dict)
    #: class-level attributes bound to mutable containers -> lineno
    mutable_attrs: Dict[str, int] = field(default_factory=dict)
    #: last chain parts of base-class expressions
    bases: Tuple[str, ...] = ()


@dataclass
class GlobalInfo:
    """A module-level name binding."""

    name: str
    qualname: str
    module: str
    lineno: int = 1
    mutable: bool = False


@dataclass
class ModuleInfo:
    """One parsed module and its local symbol tables."""

    name: str
    path: str
    relpath: str
    tree: ast.Module
    source: str
    is_package: bool = False
    #: local name -> dotted target ("repro.runner.run_trials" for
    #: from-imports, "repro.core.fleet" for module aliases)
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    classes: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    globals: Dict[str, str] = field(default_factory=dict)  # name -> qualname


class ProjectIndex:
    """Symbol tables for every module of the analyzed tree."""

    def __init__(self, root: str):
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.module_globals: Dict[str, GlobalInfo] = {}
        #: method name -> sorted list of method qualnames (class map)
        self.methods_by_name: Dict[str, List[str]] = {}
        self.parse_errors: List[Tuple[str, str]] = []

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[str], root: str) -> "ProjectIndex":
        index = cls(root=os.path.abspath(root))
        for path in iter_python_files(paths):
            index.add_file(path)
        index._finalize()
        return index

    def add_file(self, path: str) -> Optional[ModuleInfo]:
        abspath = os.path.abspath(path)
        relpath = os.path.relpath(abspath, self.root).replace(os.sep, "/")
        with open(abspath, "r", encoding="utf-8") as fh:
            source = fh.read()
        return self.add_source(source, abspath, relpath)

    def add_source(
        self, source: str, path: str, relpath: str
    ) -> Optional[ModuleInfo]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_errors.append((relpath, str(exc)))
            return None
        name = module_name_for(relpath)
        module = ModuleInfo(
            name=name,
            path=path,
            relpath=relpath,
            tree=tree,
            source=source,
            is_package=relpath.endswith("/__init__.py")
            or relpath == "__init__.py",
        )
        self._index_imports(module)
        self._index_symbols(module)
        self.modules[name] = module
        return module

    def _finalize(self) -> None:
        by_name: Dict[str, List[str]] = {}
        for info in self.functions.values():
            if info.class_name is not None:
                by_name.setdefault(info.name, []).append(info.qualname)
        self.methods_by_name = {
            name: sorted(quals) for name, quals in sorted(by_name.items())
        }

    # -- imports ---------------------------------------------------------------

    def _resolve_relative(self, module: ModuleInfo, node: ast.ImportFrom) -> str:
        parts = module.name.split(".") if module.name else []
        if not module.is_package and parts:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > 0:
            parts = parts[: len(parts) - drop] if drop <= len(parts) else []
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts)

    def _index_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        module.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        module.imports.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    target = self._resolve_relative(module, node)
                else:
                    target = node.module or ""
                if not target:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    module.imports[alias.asname or alias.name] = (
                        f"{target}.{alias.name}"
                    )

    # -- symbols ---------------------------------------------------------------

    def _index_symbols(self, module: ModuleInfo) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(module, stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._add_globals(module, stmt)

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        class_name: Optional[str],
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        qualname = (
            f"{module.name}.{class_name}.{name}"
            if class_name
            else f"{module.name}.{name}"
        )
        args = node.args  # type: ignore[attr-defined]
        params: Dict[str, Tuple[str, ...]] = {}
        for arg in (
            list(getattr(args, "posonlyargs", [])) + args.args + args.kwonlyargs
        ):
            params[arg.arg] = _annotation_names(arg.annotation)
        info = FunctionInfo(
            name=name,
            qualname=qualname,
            module=module.name,
            node=node,
            class_name=class_name,
            lineno=node.lineno,  # type: ignore[attr-defined]
            params=params,
            return_annotation=_annotation_names(
                node.returns  # type: ignore[attr-defined]
            ),
        )
        self.functions[qualname] = info
        if class_name is None:
            module.functions[name] = qualname
        return info

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(
            name=node.name,
            qualname=qualname,
            module=module.name,
            lineno=node.lineno,
            bases=tuple(
                chain[-1] for chain in map(_attr_chain, node.bases) if chain
            ),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._add_function(module, stmt, class_name=node.name)
                info.methods[stmt.name] = method.qualname
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id != "__slots__"
                        and _is_mutable_value(stmt.value)
                    ):
                        info.mutable_attrs[target.id] = stmt.lineno
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id != "__slots__"
                    and _is_mutable_value(stmt.value)
                ):
                    info.mutable_attrs[stmt.target.id] = stmt.lineno
        self.classes[qualname] = info
        module.classes[node.name] = qualname

    def _add_globals(self, module: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value: Optional[ast.AST] = stmt.value
        else:  # AnnAssign
            targets = [stmt.target]  # type: ignore[attr-defined]
            value = stmt.value  # type: ignore[attr-defined]
        mutable = _is_mutable_value(value)
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            qualname = f"{module.name}.{target.id}"
            existing = self.module_globals.get(qualname)
            if existing is not None:
                # Re-binding at module level (records.py fills
                # placeholder tables after the enum exists): keep the
                # first site, widen mutability.
                existing.mutable = existing.mutable or mutable
                continue
            info = GlobalInfo(
                name=target.id,
                qualname=qualname,
                module=module.name,
                lineno=stmt.lineno,
                mutable=mutable,
            )
            self.module_globals[qualname] = info
            module.globals[target.id] = qualname

    # -- resolution ------------------------------------------------------------

    def resolve(
        self,
        module: ModuleInfo,
        chain: Sequence[str],
        _visited: Optional[Set[str]] = None,
    ) -> Optional[str]:
        """Qualname of the function/class/global a name chain denotes.

        Follows from-imports (including package ``__init__`` re-export
        facades, one hop at a time with a visited set) and module
        aliases.  Returns ``None`` for names the project does not
        define — builtins, stdlib, local variables.
        """
        if not chain:
            return None
        head = chain[0]
        local = (
            module.functions.get(head)
            or module.classes.get(head)
            or module.globals.get(head)
        )
        if local is not None:
            return self._descend(local, chain[1:])
        imported = module.imports.get(head)
        if imported is None:
            return None
        return self.resolve_qualified(
            imported, chain[1:], _visited or set()
        )

    def resolve_qualified(
        self,
        dotted: str,
        rest: Sequence[str] = (),
        _visited: Optional[Set[str]] = None,
    ) -> Optional[str]:
        """Resolve a dotted target plus a trailing chain to a qualname."""
        visited = _visited if _visited is not None else set()
        full = ".".join([dotted, *rest]) if rest else dotted
        if full in visited:
            return None
        visited.add(full)
        parts = full.split(".")
        # Longest module prefix, then descend through its symbols.
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            target = self.modules.get(prefix)
            if target is None:
                continue
            remainder = parts[cut:]
            if not remainder:
                return prefix  # the chain denotes a module itself
            head, tail = remainder[0], remainder[1:]
            local = (
                target.functions.get(head)
                or target.classes.get(head)
                or target.globals.get(head)
            )
            if local is not None:
                return self._descend(local, tail)
            reexport = target.imports.get(head)
            if reexport is not None:
                return self.resolve_qualified(reexport, tail, visited)
            return None
        return None

    def _descend(self, qualname: str, rest: Sequence[str]) -> Optional[str]:
        if not rest:
            return qualname
        cls = self.classes.get(qualname)
        if cls is not None and len(rest) == 1:
            return cls.methods.get(rest[0], qualname)
        return qualname

    # -- typed lookups ---------------------------------------------------------

    def function(self, qualname: Optional[str]) -> Optional[FunctionInfo]:
        return self.functions.get(qualname) if qualname else None

    def class_info(self, qualname: Optional[str]) -> Optional[ClassInfo]:
        return self.classes.get(qualname) if qualname else None

    def global_info(self, qualname: Optional[str]) -> Optional[GlobalInfo]:
        return self.module_globals.get(qualname) if qualname else None


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None
