"""Rule framework for ``csaw-lint``.

A *rule* is a small AST analysis with a stable code (``CSL001`` ...), a
severity, and optional path scoping:

- ``scope``: fnmatch globs the file must match for the rule to apply at
  all (empty = everywhere).  Used for rules that only make sense inside
  the simulation stack, e.g. the real-I/O ban.
- ``allow``: fnmatch globs for files that are exempt (the wall-clock
  rule allowlists ``runner/core.py``, which legitimately times trials).

Both lists can be extended or overridden per rule from the
``[tool.csawlint]`` table in ``pyproject.toml``; inline
``# csaw-lint: disable=CSL00X`` comments suppress single lines.  The
registry is a plain dict keyed by code so the CLI, the tests, and the
docs all enumerate exactly the same rule set.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple, Type

__all__ = [
    "LintContext",
    "Rule",
    "Violation",
    "all_rules",
    "register",
    "suppressed_lines",
]


@dataclass(frozen=True)
class Violation:
    """One finding, pinned to a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int
    severity: str = "error"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class LintContext:
    """Everything a rule needs about one file."""

    path: str  # as given on the command line (display)
    relpath: str  # posix path relative to the project root (matching)
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    options: Dict[str, object] = field(default_factory=dict)

    def violation(
        self, rule: "Rule", node: ast.AST, message: Optional[str] = None
    ) -> Violation:
        return Violation(
            code=rule.code,
            message=message if message is not None else rule.message,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            severity=rule.severity,
        )


class Rule:
    """Base class; subclasses set the class attributes and ``check``."""

    code: str = "CSL000"
    name: str = "base"
    message: str = ""
    severity: str = "error"
    #: fnmatch globs the file must match for the rule to run (empty = all)
    scope: Tuple[str, ...] = ()
    #: fnmatch globs for exempt files
    allow: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if self.scope and not any(fnmatch(relpath, g) for g in self.scope):
            return False
        return not any(fnmatch(relpath, g) for g in self.allow)

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (codes are unique)."""
    code = rule_cls.code
    if code in _REGISTRY and _REGISTRY[code] is not rule_cls:
        raise ValueError(f"duplicate rule code {code}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registry, keyed and iterated in code order."""
    return {code: _REGISTRY[code] for code in sorted(_REGISTRY)}


# -- inline suppressions -------------------------------------------------------

_DISABLE_RES: Dict[str, "re.Pattern[str]"] = {}
_ALL = frozenset({"*"})


def _disable_re(marker: str) -> "re.Pattern[str]":
    pattern = _DISABLE_RES.get(marker)
    if pattern is None:
        pattern = re.compile(
            re.escape(marker) + r":\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?"
        )
        _DISABLE_RES[marker] = pattern
    return pattern


def _parse_disable(comment: str, marker: str) -> Optional[FrozenSet[str]]:
    match = _disable_re(marker).search(comment)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return _ALL
    return frozenset(c.strip() for c in codes.split(",") if c.strip())


def suppressed_lines(
    source: str, marker: str = "csaw-lint"
) -> Dict[int, FrozenSet[str]]:
    """Map line number -> codes suppressed there (``{"*"}`` = all codes).

    A trailing ``# csaw-lint: disable=CSL003`` suppresses its own line; a
    comment on a line of its own also covers the next line, so multi-line
    statements can be annotated above rather than mid-expression.  The
    whole-program analyzer reuses the machinery with its own ``marker``
    (``# csaw-analyze: disable=CSA101``), so a line can be exempted from
    one tool without hiding it from the other.
    """
    suppressed: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        tokens = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        codes = _parse_disable(tok.string, marker)
        if codes is None:
            continue
        line = tok.start[0]
        suppressed[line] = suppressed.get(line, frozenset()) | codes
        # Standalone comment: nothing but whitespace before it.
        if tok.line[: tok.start[1]].strip() == "":
            suppressed[line + 1] = suppressed.get(line + 1, frozenset()) | codes
    return suppressed


def is_suppressed(
    violation: Violation, suppressed: Dict[int, FrozenSet[str]]
) -> bool:
    codes = suppressed.get(violation.line)
    if not codes:
        return False
    return "*" in codes or violation.code in codes


def iter_child_scopes(node: ast.AST) -> Iterable[ast.AST]:
    """Direct children, for rules that manage their own scope recursion."""
    return ast.iter_child_nodes(node)
