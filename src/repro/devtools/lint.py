"""csaw-lint: determinism & purity linter for the C-Saw simulation stack.

Usage::

    csaw-lint src                    # console script
    python -m repro.devtools.lint src

Configuration lives in ``[tool.csawlint]`` in ``pyproject.toml``:

- ``select``: rule codes to run (default: all registered rules);
- ``baseline``: path of a committed baseline file (grandfathered
  findings; see ``--write-baseline``);
- ``[tool.csawlint.allow]``: per-rule lists of fnmatch globs *added* to
  the rule's built-in allowlist (files exempt from the rule);
- ``[tool.csawlint.scope]``: per-rule glob lists *replacing* the rule's
  built-in scope (files the rule applies to);
- ``[tool.csawlint.options]``: free-form rule options, e.g. extra
  ``time-identifiers`` for CSL006.

Inline, ``# csaw-lint: disable=CSL003`` (or a bare ``disable`` for all
codes) suppresses findings on that line — or on the next line when the
comment stands alone.  Exit status is 0 iff no unsuppressed,
non-baselined violations remain.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .framework import (
    LintContext,
    Rule,
    Violation,
    all_rules,
    is_suppressed,
    suppressed_lines,
)
from . import rules as _rules  # noqa: F401  (imports register the rule catalogue)

__all__ = ["LintConfig", "lint_paths", "load_config", "main"]


# -- configuration -------------------------------------------------------------


@dataclass
class LintConfig:
    root: str = "."
    select: Tuple[str, ...] = ()  # empty = all registered
    allow: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    scope: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    options: Dict[str, object] = field(default_factory=dict)
    baseline: Optional[str] = None


def _parse_minimal_toml(text: str) -> Dict[str, Dict[str, object]]:
    """Tiny TOML subset parser (fallback when :mod:`tomllib` is absent).

    Understands ``[dotted.section]`` headers and ``key = value`` lines
    where value is a string, bool, int, or (possibly multi-line) array
    of strings — exactly what ``[tool.csawlint]`` uses.  Unparseable
    values are kept as raw strings and ignored by the config loader.
    """
    sections: Dict[str, Dict[str, object]] = {}
    current: Dict[str, object] = sections.setdefault("", {})
    pending_key: Optional[str] = None
    pending_chunks: List[str] = []

    def parse_value(raw: str) -> object:
        raw = raw.strip()
        if raw.startswith("[") and raw.endswith("]"):
            return re.findall(r'"((?:[^"\\]|\\.)*)"', raw)
        if len(raw) >= 2 and raw[0] == raw[-1] == '"':
            return raw[1:-1]
        if raw in ("true", "false"):
            return raw == "true"
        try:
            return int(raw)
        except ValueError:
            return raw

    for line in text.splitlines():
        stripped = line.strip()
        if pending_key is not None:
            pending_chunks.append(stripped)
            if stripped.endswith("]"):
                current[pending_key] = parse_value(" ".join(pending_chunks))
                pending_key, pending_chunks = None, []
            continue
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("[") and stripped.endswith("]"):
            name = stripped.strip("[]").strip().strip('"')
            current = sections.setdefault(name, {})
            continue
        if "=" in stripped:
            key, _, raw = stripped.partition("=")
            raw = raw.split(" #")[0].strip()
            if raw.startswith("[") and not raw.endswith("]"):
                pending_key, pending_chunks = key.strip(), [raw]
                continue
            current[key.strip()] = parse_value(raw)
    return sections


def _load_toml(path: str) -> Dict[str, object]:
    with open(path, "rb") as fh:
        data = fh.read()
    try:
        import tomllib  # Python 3.11+

        return tomllib.loads(data.decode("utf-8"))
    except ImportError:
        flat = _parse_minimal_toml(data.decode("utf-8"))
        nested: Dict[str, object] = dict(flat.get("", {}))
        for section, values in flat.items():
            if not section:
                continue
            node = nested
            for part in section.split("."):
                node = node.setdefault(part, {})  # type: ignore[assignment]
            if isinstance(node, dict):
                node.update(values)
        return nested


def find_project_root(start: str) -> str:
    """Nearest ancestor of ``start`` containing a ``pyproject.toml``."""
    path = os.path.abspath(start)
    if os.path.isfile(path):
        path = os.path.dirname(path)
    while True:
        if os.path.isfile(os.path.join(path, "pyproject.toml")):
            return path
        parent = os.path.dirname(path)
        if parent == path:
            return os.path.abspath(os.getcwd())
        path = parent


def load_config(config_path: Optional[str], anchor: str) -> LintConfig:
    """Load ``[tool.csawlint]`` from an explicit path or the project root."""
    if config_path is None:
        root = find_project_root(anchor)
        config_path = os.path.join(root, "pyproject.toml")
        if not os.path.isfile(config_path):
            return LintConfig(root=root)
    else:
        root = os.path.dirname(os.path.abspath(config_path)) or "."
    table = _load_toml(config_path)
    section = table.get("tool", {})
    section = section.get("csawlint", {}) if isinstance(section, dict) else {}
    if not isinstance(section, dict):
        section = {}

    def globs(value: object) -> Dict[str, Tuple[str, ...]]:
        if not isinstance(value, dict):
            return {}
        return {
            str(code): tuple(str(g) for g in patterns)
            for code, patterns in value.items()
            if isinstance(patterns, (list, tuple))
        }

    options = section.get("options", {})
    return LintConfig(
        root=root,
        select=tuple(section.get("select", ())),
        allow=globs(section.get("allow")),
        scope=globs(section.get("scope")),
        options=dict(options) if isinstance(options, dict) else {},
        baseline=section.get("baseline"),
    )


# -- file discovery ------------------------------------------------------------


def iter_python_files(paths: Sequence[str]) -> List[str]:
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            found.append(path)
    return found


# -- core lint loop ------------------------------------------------------------


def _effective_rules(config: LintConfig) -> List[Rule]:
    selected = []
    for code, rule_cls in all_rules().items():
        if config.select and code not in config.select:
            continue
        rule = rule_cls()
        if code in config.scope:
            rule.scope = tuple(config.scope[code])
        if code in config.allow:
            rule.allow = tuple(rule.allow) + tuple(config.allow[code])
        selected.append(rule)
    return selected


def lint_source(
    source: str,
    path: str,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one in-memory module; ``path`` drives scope/allow matching."""
    config = config or LintConfig()
    if rules is None:
        rules = _effective_rules(config)
    relpath = os.path.relpath(os.path.abspath(path), config.root).replace(
        os.sep, "/"
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                code="CSL999",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
            )
        ]
    ctx = LintContext(
        path=path,
        relpath=relpath,
        tree=tree,
        lines=source.splitlines(),
        options=config.options,
    )
    suppressed = suppressed_lines(source)
    violations: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for violation in rule.check(ctx):
            if not is_suppressed(violation, suppressed):
                violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.code))
    return violations


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> List[Violation]:
    config = config or LintConfig()
    rules = _effective_rules(config)
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        violations.extend(lint_source(source, path, config, rules))
    return violations


# -- baseline ------------------------------------------------------------------


def _baseline_key(violation: Violation, config: LintConfig) -> str:
    relpath = os.path.relpath(
        os.path.abspath(violation.path), config.root
    ).replace(os.sep, "/")
    return f"{relpath}:{violation.code}"


def write_baseline(
    violations: Iterable[Violation], path: str, config: LintConfig
) -> None:
    counts: Dict[str, int] = {}
    for violation in violations:
        key = _baseline_key(violation, config)
        counts[key] = counts.get(key, 0) + 1
    payload = {"version": 1, "entries": dict(sorted(counts.items()))}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: Optional[str]) -> Dict[str, int]:
    if not path or not os.path.isfile(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    entries = payload.get("entries", {})
    return {str(k): int(v) for k, v in entries.items()}


def apply_baseline(
    violations: Sequence[Violation], baseline: Dict[str, int], config: LintConfig
) -> Tuple[List[Violation], int]:
    """Drop up to ``baseline[key]`` findings per (file, code); count kept."""
    remaining = dict(baseline)
    fresh: List[Violation] = []
    grandfathered = 0
    for violation in violations:
        key = _baseline_key(violation, config)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered += 1
        else:
            fresh.append(violation)
    return fresh, grandfathered


# -- CLI -----------------------------------------------------------------------


def _hash_fingerprint(violations: Sequence[Violation]) -> str:
    digest = hashlib.sha256()
    for violation in violations:
        digest.update(violation.render().encode("utf-8"))
    return digest.hexdigest()[:12]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="csaw-lint",
        description="AST-based determinism & purity linter for the C-Saw "
        "simulation stack.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or dirs")
    parser.add_argument(
        "--select", help="comma-separated rule codes (default: all)"
    )
    parser.add_argument("--config", help="explicit pyproject.toml path")
    parser.add_argument(
        "--baseline", help="baseline file (overrides [tool.csawlint].baseline)"
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule_cls in all_rules().items():
            doc = (rule_cls.__doc__ or "").strip().splitlines()[0]
            print(f"{code}  {rule_cls.name:<28} {doc}")
        return 0

    paths = list(args.paths) or ["src"]
    config = load_config(args.config, paths[0])
    if args.select:
        config.select = tuple(
            code.strip() for code in args.select.split(",") if code.strip()
        )

    violations = lint_paths(paths, config)

    if args.write_baseline:
        write_baseline(violations, args.write_baseline, config)
        print(
            f"csaw-lint: wrote baseline with {len(violations)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    baseline_path = args.baseline or config.baseline
    if baseline_path and not os.path.isabs(baseline_path):
        baseline_path = os.path.join(config.root, baseline_path)
    fresh, grandfathered = apply_baseline(
        violations, load_baseline(baseline_path), config
    )

    if args.fmt == "json":
        print(
            json.dumps(
                {
                    "violations": [vars(v) for v in fresh],
                    "grandfathered": grandfathered,
                    "fingerprint": _hash_fingerprint(fresh),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for violation in fresh:
            print(violation.render())
        summary = f"csaw-lint: {len(fresh)} violation(s)"
        if grandfathered:
            summary += f", {grandfathered} grandfathered by baseline"
        checked = len(iter_python_files(paths))
        summary += f" across {checked} file(s)"
        print(summary, file=sys.stderr)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
