"""csaw-lint: determinism & purity linter for the C-Saw simulation stack.

Usage::

    csaw-lint src                    # console script
    python -m repro.devtools.lint src

Configuration lives in ``[tool.csawlint]`` in ``pyproject.toml``:

- ``select``: rule codes to run (default: all registered rules);
- ``baseline``: path of a committed baseline file (grandfathered
  findings; see ``--write-baseline``);
- ``[tool.csawlint.allow]``: per-rule lists of fnmatch globs *added* to
  the rule's built-in allowlist (files exempt from the rule);
- ``[tool.csawlint.scope]``: per-rule glob lists *replacing* the rule's
  built-in scope (files the rule applies to);
- ``[tool.csawlint.options]``: free-form rule options, e.g. extra
  ``time-identifiers`` for CSL006.

Inline, ``# csaw-lint: disable=CSL003`` (or a bare ``disable`` for all
codes) suppresses findings on that line — or on the next line when the
comment stands alone.  Exit status is 0 iff no unsuppressed,
non-baselined violations remain.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import (
    ToolConfig,
    find_project_root,  # noqa: F401  (re-exported: part of the lint API)
    iter_python_files,
    load_tool_config,
)
from . import config as _config
from .framework import (
    LintContext,
    Rule,
    Violation,
    all_rules,
    is_suppressed,
    suppressed_lines,
)
from . import rules as _rules  # noqa: F401  (imports register the rule catalogue)

__all__ = ["LintConfig", "lint_paths", "load_config", "main"]


# -- configuration -------------------------------------------------------------

#: The lint config is the shared devtools shape (devtools/config.py);
#: ``csaw-analyze`` loads the same dataclass from ``[tool.csawanalyze]``.
LintConfig = ToolConfig


def load_config(config_path: Optional[str], anchor: str) -> LintConfig:
    """Load ``[tool.csawlint]`` from an explicit path or the project root."""
    return load_tool_config("csawlint", config_path, anchor)


# -- core lint loop ------------------------------------------------------------


def _effective_rules(config: LintConfig) -> List[Rule]:
    selected = []
    for code, rule_cls in all_rules().items():
        if config.select and code not in config.select:
            continue
        rule = rule_cls()
        if code in config.scope:
            rule.scope = tuple(config.scope[code])
        if code in config.allow:
            rule.allow = tuple(rule.allow) + tuple(config.allow[code])
        selected.append(rule)
    return selected


def lint_source(
    source: str,
    path: str,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one in-memory module; ``path`` drives scope/allow matching."""
    config = config or LintConfig()
    if rules is None:
        rules = _effective_rules(config)
    relpath = os.path.relpath(os.path.abspath(path), config.root).replace(
        os.sep, "/"
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                code="CSL999",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
            )
        ]
    ctx = LintContext(
        path=path,
        relpath=relpath,
        tree=tree,
        lines=source.splitlines(),
        options=config.options,
    )
    suppressed = suppressed_lines(source)
    violations: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for violation in rule.check(ctx):
            if not is_suppressed(violation, suppressed):
                violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.code))
    return violations


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> List[Violation]:
    config = config or LintConfig()
    rules = _effective_rules(config)
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        violations.extend(lint_source(source, path, config, rules))
    return violations


# -- baseline (shared with csaw-analyze; see devtools/config.py) ---------------


def write_baseline(
    violations: Iterable[Violation], path: str, config: LintConfig
) -> None:
    _config.write_baseline(violations, path, config.root)


def load_baseline(path: Optional[str]) -> Dict[str, int]:
    return _config.load_baseline(path)


def apply_baseline(
    violations: Sequence[Violation], baseline: Dict[str, int], config: LintConfig
) -> Tuple[List[Violation], int]:
    """Drop up to ``baseline[key]`` findings per (file, code); count kept."""
    return _config.apply_baseline(violations, baseline, config.root)


# -- CLI -----------------------------------------------------------------------


def _hash_fingerprint(violations: Sequence[Violation]) -> str:
    digest = hashlib.sha256()
    for violation in violations:
        digest.update(violation.render().encode("utf-8"))
    return digest.hexdigest()[:12]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="csaw-lint",
        description="AST-based determinism & purity linter for the C-Saw "
        "simulation stack.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or dirs")
    parser.add_argument(
        "--select", help="comma-separated rule codes (default: all)"
    )
    parser.add_argument("--config", help="explicit pyproject.toml path")
    parser.add_argument(
        "--baseline", help="baseline file (overrides [tool.csawlint].baseline)"
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule_cls in all_rules().items():
            doc = (rule_cls.__doc__ or "").strip().splitlines()[0]
            print(f"{code}  {rule_cls.name:<28} {doc}")
        return 0

    paths = list(args.paths) or ["src"]
    config = load_config(args.config, paths[0])
    if args.select:
        config.select = tuple(
            code.strip() for code in args.select.split(",") if code.strip()
        )

    violations = lint_paths(paths, config)

    if args.write_baseline:
        write_baseline(violations, args.write_baseline, config)
        print(
            f"csaw-lint: wrote baseline with {len(violations)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    baseline_path = args.baseline or config.baseline
    if baseline_path and not os.path.isabs(baseline_path):
        baseline_path = os.path.join(config.root, baseline_path)
    fresh, grandfathered = apply_baseline(
        violations, load_baseline(baseline_path), config
    )

    if args.fmt == "json":
        print(
            json.dumps(
                {
                    "violations": [vars(v) for v in fresh],
                    "grandfathered": grandfathered,
                    "fingerprint": _hash_fingerprint(fresh),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for violation in fresh:
            print(violation.render())
        summary = f"csaw-lint: {len(fresh)} violation(s)"
        if grandfathered:
            summary += f", {grandfathered} grandfathered by baseline"
        checked = len(iter_python_files(paths))
        summary += f" across {checked} file(s)"
        print(summary, file=sys.stderr)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
