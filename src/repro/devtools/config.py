"""Shared configuration & baseline machinery for the devtools CLIs.

``csaw-lint`` (per-file AST rules, ``[tool.csawlint]``) and
``csaw-analyze`` (whole-program rules, ``[tool.csawanalyze]``) read the
same config shape from ``pyproject.toml`` and enforce findings against
the same committed-baseline format, so the mechanics live here once:

- :class:`ToolConfig` — root, rule selection, per-rule ``allow``/
  ``scope`` glob tables, free-form options, baseline path;
- :func:`load_tool_config` — load a ``[tool.<section>]`` table (via
  :mod:`tomllib` when available, else a tiny built-in TOML subset
  parser — the same fallback strategy as the scenario spec loader);
- :func:`iter_python_files` — deterministic file discovery;
- baseline read/write/apply — findings are grandfathered per
  ``(file, code)`` count, so a committed-empty baseline enforces every
  rule at zero while ``--write-baseline`` permits incremental adoption.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .framework import Violation

__all__ = [
    "ToolConfig",
    "apply_baseline",
    "baseline_key",
    "find_project_root",
    "iter_python_files",
    "load_baseline",
    "load_tool_config",
    "load_toml",
    "parse_minimal_toml",
    "write_baseline",
]


@dataclass
class ToolConfig:
    """One devtool's effective configuration (lint or analyze)."""

    root: str = "."
    select: Tuple[str, ...] = ()  # empty = all registered
    allow: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    scope: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    options: Dict[str, object] = field(default_factory=dict)
    baseline: Optional[str] = None


def parse_minimal_toml(text: str) -> Dict[str, Dict[str, object]]:
    """Tiny TOML subset parser (fallback when :mod:`tomllib` is absent).

    Understands ``[dotted.section]`` headers and ``key = value`` lines
    where value is a string, bool, int, or (possibly multi-line) array
    of strings — exactly what the ``[tool.csawlint]`` /
    ``[tool.csawanalyze]`` tables use.  Unparseable values are kept as
    raw strings and ignored by the config loader.
    """
    sections: Dict[str, Dict[str, object]] = {}
    current: Dict[str, object] = sections.setdefault("", {})
    pending_key: Optional[str] = None
    pending_chunks: List[str] = []

    def parse_value(raw: str) -> object:
        raw = raw.strip()
        if raw.startswith("[") and raw.endswith("]"):
            return re.findall(r'"((?:[^"\\]|\\.)*)"', raw)
        if len(raw) >= 2 and raw[0] == raw[-1] == '"':
            return raw[1:-1]
        if raw in ("true", "false"):
            return raw == "true"
        try:
            return int(raw)
        except ValueError:
            return raw

    for line in text.splitlines():
        stripped = line.strip()
        if pending_key is not None:
            pending_chunks.append(stripped)
            if stripped.endswith("]"):
                current[pending_key] = parse_value(" ".join(pending_chunks))
                pending_key, pending_chunks = None, []
            continue
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("[") and stripped.endswith("]"):
            name = stripped.strip("[]").strip().strip('"')
            current = sections.setdefault(name, {})
            continue
        if "=" in stripped:
            key, _, raw = stripped.partition("=")
            raw = raw.split(" #")[0].strip()
            if raw.startswith("[") and not raw.endswith("]"):
                pending_key, pending_chunks = key.strip(), [raw]
                continue
            current[key.strip()] = parse_value(raw)
    return sections


def load_toml(path: str) -> Dict[str, object]:
    with open(path, "rb") as fh:
        data = fh.read()
    try:
        import tomllib  # Python 3.11+

        return tomllib.loads(data.decode("utf-8"))
    except ImportError:
        flat = parse_minimal_toml(data.decode("utf-8"))
        nested: Dict[str, object] = dict(flat.get("", {}))
        for section, values in flat.items():
            if not section:
                continue
            node = nested
            for part in section.split("."):
                node = node.setdefault(part, {})  # type: ignore[assignment]
            if isinstance(node, dict):
                node.update(values)
        return nested


def find_project_root(start: str) -> str:
    """Nearest ancestor of ``start`` containing a ``pyproject.toml``."""
    path = os.path.abspath(start)
    if os.path.isfile(path):
        path = os.path.dirname(path)
    while True:
        if os.path.isfile(os.path.join(path, "pyproject.toml")):
            return path
        parent = os.path.dirname(path)
        if parent == path:
            return os.path.abspath(os.getcwd())
        path = parent


def load_tool_config(
    section_name: str, config_path: Optional[str], anchor: str
) -> ToolConfig:
    """Load ``[tool.<section_name>]`` from an explicit path or the root."""
    if config_path is None:
        root = find_project_root(anchor)
        config_path = os.path.join(root, "pyproject.toml")
        if not os.path.isfile(config_path):
            return ToolConfig(root=root)
    else:
        root = os.path.dirname(os.path.abspath(config_path)) or "."
    table = load_toml(config_path)
    section = table.get("tool", {})
    section = section.get(section_name, {}) if isinstance(section, dict) else {}
    if not isinstance(section, dict):
        section = {}

    def globs(value: object) -> Dict[str, Tuple[str, ...]]:
        if not isinstance(value, dict):
            return {}
        return {
            str(code): tuple(str(g) for g in patterns)
            for code, patterns in value.items()
            if isinstance(patterns, (list, tuple))
        }

    options = section.get("options", {})
    return ToolConfig(
        root=root,
        select=tuple(section.get("select", ())),
        allow=globs(section.get("allow")),
        scope=globs(section.get("scope")),
        options=dict(options) if isinstance(options, dict) else {},
        baseline=section.get("baseline"),
    )


# -- file discovery ------------------------------------------------------------


def iter_python_files(paths: Sequence[str]) -> List[str]:
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            found.append(path)
    return found


# -- baseline ------------------------------------------------------------------


def baseline_key(violation: "Violation", root: str) -> str:
    relpath = os.path.relpath(os.path.abspath(violation.path), root).replace(
        os.sep, "/"
    )
    return f"{relpath}:{violation.code}"


def write_baseline(
    violations: Iterable["Violation"], path: str, root: str
) -> None:
    counts: Dict[str, int] = {}
    for violation in violations:
        key = baseline_key(violation, root)
        counts[key] = counts.get(key, 0) + 1
    payload = {"version": 1, "entries": dict(sorted(counts.items()))}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: Optional[str]) -> Dict[str, int]:
    if not path or not os.path.isfile(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    entries = payload.get("entries", {})
    return {str(k): int(v) for k, v in entries.items()}


def apply_baseline(
    violations: Sequence["Violation"], baseline: Dict[str, int], root: str
) -> Tuple[List["Violation"], int]:
    """Drop up to ``baseline[key]`` findings per (file, code); count kept."""
    remaining = dict(baseline)
    fresh: List["Violation"] = []
    grandfathered = 0
    for violation in violations:
        key = baseline_key(violation, root)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered += 1
        else:
            fresh.append(violation)
    return fresh, grandfathered
