"""Developer tooling that keeps the simulation stack honest.

The headline tool is :mod:`repro.devtools.lint` (``csaw-lint``): an
AST-based linter that turns the repo's determinism and purity
conventions — named RNG streams, no wall-clock in simulated time,
ordered iteration wherever order can escape into reports — into
machine-checked invariants.  See DESIGN.md §7 for the rule catalogue
and the paper invariant each rule protects.

Submodules are imported lazily so ``python -m repro.devtools.lint``
does not re-import the entry module through the package.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .framework import LintContext, Rule, Violation, all_rules, register
    from .lint import LintConfig, lint_paths, lint_source, main

__all__ = [
    "LintConfig",
    "LintContext",
    "Rule",
    "Violation",
    "all_rules",
    "lint_paths",
    "lint_source",
    "main",
    "register",
]

_FRAMEWORK = {"LintContext", "Rule", "Violation", "all_rules", "register"}


def __getattr__(name: str):
    if name in _FRAMEWORK:
        from . import framework

        return getattr(framework, name)
    if name in __all__:
        from . import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
