"""Tests for scenario builders, analysis helpers, and memory accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import cdf_points, mean, median, percentile, summarize
from repro.analysis.robustness import SeedSweep, across_seeds, claim_holds
from repro.analysis.tables import format_seconds, render_table
from repro.core import BlockStatus, BlockType, CSawClient, LocalDatabase
from repro.workloads.scenarios import centralized_country, pakistan_case_study


class TestStats:
    def test_percentile_interpolation(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 4.0
        assert percentile(data, 50) == pytest.approx(2.5)

    def test_median_and_mean(self):
        assert median([3, 1, 2]) == 2
        assert mean([1, 2, 3]) == 2

    def test_empty_rejected(self):
        for fn in (median, mean, summarize):
            with pytest.raises(ValueError):
                fn([])
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_cdf_points_monotone(self):
        points = cdf_points([5.0, 1.0, 3.0])
        xs = [x for x, _y in points]
        ys = [y for _x, y in points]
        assert xs == sorted(xs)
        assert ys == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_summary_fields(self):
        s = summarize(range(1, 101))
        assert s.count == 100
        assert s.minimum == 1 and s.maximum == 100
        assert s.p50 == pytest.approx(50.5)
        assert s.p99 > s.p95 > s.p90 > s.p50

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_subnormal=False), min_size=1, max_size=50))
    def test_percentile_within_range(self, values):
        for q in (0, 25, 50, 75, 100):
            p = percentile(values, q)
            assert min(values) <= p <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_subnormal=False), min_size=2, max_size=50))
    def test_percentiles_monotone_in_q(self, values):
        previous = None
        for q in (0, 10, 50, 90, 100):
            current = percentile(values, q)
            if previous is not None:
                # Allow float rounding slop from the interpolation.
                assert current >= previous - 1e-9 * max(1.0, abs(previous))
            previous = current


class TestTables:
    def test_render_alignment_and_title(self):
        text = render_table(["a", "bbb"], [["x", 1], ["yy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        # All data lines equal width.
        assert len(lines[3]) == len(lines[4])

    def test_format_seconds(self):
        assert format_seconds(0.0123) == "12.3ms"
        assert format_seconds(2.5) == "2.50s"


class TestRobustnessHarness:
    def test_across_seeds_aggregates(self):
        sweep = across_seeds("double", lambda seed: seed * 2.0, [1, 2, 3])
        assert sweep.mean == pytest.approx(4.0)
        assert sweep.spread == 4.0
        assert sweep.stdev > 0

    def test_claim_holds_reports_failures(self):
        result = claim_holds(lambda s: s, lambda v: v % 2 == 0, [2, 3, 4])
        assert result["fraction"] == pytest.approx(2 / 3)
        assert result["failures"] == [3]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            across_seeds("x", lambda s: s, [])
        with pytest.raises(ValueError):
            claim_holds(lambda s: s, lambda v: True, [])


class TestCentralizedScenario:
    def test_all_isps_share_one_policy(self):
        scenario = centralized_country(seed=9, n_isps=4)
        boxes = [isp.censor for isp in scenario.isps]
        assert all(box.policy is scenario.policy for box in boxes)

    def test_same_blocking_seen_from_every_isp(self):
        scenario = centralized_country(seed=9, n_isps=3)
        world = scenario.world
        from repro.core.detection import measure_direct_path

        stage_sets = []
        for isp in scenario.isps:
            client, access = world.add_client(f"cz-{isp.asn}", [isp])
            ctx = world.new_ctx(client, access, stream=f"cz/{isp.asn}")
            outcome = world.run_process(
                measure_direct_path(world, ctx, scenario.urls["youtube"])
            )
            stage_sets.append(tuple(s.value for s in outcome.stages))
        # Centralized censorship: identical symptoms everywhere.
        assert len(set(stage_sets)) == 1
        assert stage_sets[0] == ("block-page",)

    def test_csaw_converges_to_same_fix_on_every_isp(self):
        scenario = centralized_country(seed=10, n_isps=2)
        world = scenario.world
        paths = []
        for isp in scenario.isps:
            client = CSawClient(
                world, f"cz-user-{isp.asn}", [isp],
                transports=scenario.make_transports(f"cz-user-{isp.asn}"),
            )

            def flow(c=client):
                last = None
                for _ in range(3):
                    response = yield from c.request(scenario.urls["youtube"])
                    yield response.measurement_process
                    last = response
                return last

            paths.append(world.run_process(flow()).path)
        assert paths == ["https", "https"]

    def test_policy_change_affects_all_isps_at_once(self):
        scenario = centralized_country(seed=11, n_isps=3)
        removed = scenario.policy.remove_rules("national-youtube")
        assert removed == 1
        world = scenario.world
        from repro.core.detection import measure_direct_path

        for isp in scenario.isps:
            client, access = world.add_client(f"cz2-{isp.asn}", [isp])
            ctx = world.new_ctx(client, access, stream=f"cz2/{isp.asn}")
            outcome = world.run_process(
                measure_direct_path(world, ctx, scenario.urls["youtube"])
            )
            assert outcome.status is BlockStatus.NOT_BLOCKED


class TestMemoryAccounting:
    def test_aggregation_shrinks_footprint(self):
        with_agg = LocalDatabase(ttl=1e9, aggregation=True)
        without = LocalDatabase(ttl=1e9, aggregation=False)
        for s in range(10):
            for p in range(8):
                url = f"http://site{s}.example.com/articles/2017/{p}"
                with_agg.record_measurement(url, BlockStatus.NOT_BLOCKED, [])
                without.record_measurement(url, BlockStatus.NOT_BLOCKED, [])
        assert with_agg.approx_bytes() < 0.25 * without.approx_bytes()

    def test_footprint_counts_stage_lists(self):
        db = LocalDatabase(ttl=1e9)
        db.record_measurement(
            "http://a.example/", BlockStatus.BLOCKED, [BlockType.DNS_SERVFAIL]
        )
        small = db.approx_bytes()
        db.record_measurement(
            "http://a.example/", BlockStatus.BLOCKED,
            [BlockType.IP_TIMEOUT, BlockType.HTTP_TIMEOUT],
        )
        assert db.approx_bytes() > small

    def test_empty_db_zero_bytes(self):
        assert LocalDatabase(ttl=1e9).approx_bytes() == 0
