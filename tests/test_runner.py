"""repro.runner: determinism, ordering, error capture, worker resolution."""

from __future__ import annotations

import os
import random

import pytest

from repro.runner import (
    RunnerError,
    TrialSpec,
    derive_seed,
    merge_values,
    resolve_workers,
    run_seed_sweep,
    run_trials,
)


def _square(x):
    return x * x


def _seeded_draw(seed):
    return random.Random(seed).random()


def _boom(message):
    raise ValueError(message)


def test_derive_seed_is_stable_and_distinct():
    assert derive_seed(7, "pilot", 0) == derive_seed(7, "pilot", 0)
    assert derive_seed(7, "pilot", 0) != derive_seed(7, "pilot", 1)
    assert derive_seed(7, "pilot", 0) != derive_seed(8, "pilot", 0)
    # Identity is per-part, not per-concatenation.
    assert derive_seed(7, "ab", "c") != derive_seed(7, "a", "bc")
    assert 0 <= derive_seed(3, "x") < 2**63  # valid random.Random seed


def test_results_come_back_in_spec_order():
    specs = [
        TrialSpec(name=f"t{i}", fn=_square, kwargs={"x": i}) for i in range(8)
    ]
    results = run_trials(specs, workers=1)
    assert [r.name for r in results] == [f"t{i}" for i in range(8)]
    assert [r.value for r in results] == [i * i for i in range(8)]
    assert all(r.ok and r.seconds >= 0 for r in results)


def test_parallel_results_match_serial():
    specs = [
        TrialSpec(name=f"d{i}", fn=_seeded_draw, kwargs={"seed": i})
        for i in range(6)
    ]
    serial = run_trials(specs, workers=1)
    parallel = run_trials(specs, workers=2)
    assert [r.value for r in serial] == [r.value for r in parallel]
    assert [r.name for r in serial] == [r.name for r in parallel]


def test_failures_are_captured_not_raised():
    specs = [
        TrialSpec(name="good", fn=_square, kwargs={"x": 3}),
        TrialSpec(name="bad", fn=_boom, kwargs={"message": "kaput"}),
    ]
    results = run_trials(specs, workers=1)
    assert results[0].ok and results[0].value == 9
    assert not results[1].ok
    assert "kaput" in results[1].error
    with pytest.raises(RunnerError, match="bad"):
        merge_values(results)


def test_merge_values_maps_names():
    results = run_trials(
        [TrialSpec(name="a", fn=_square, kwargs={"x": 2})], workers=1
    )
    assert merge_values(results) == {"a": 4}


def test_run_seed_sweep_is_reproducible_for_any_worker_count():
    one = run_seed_sweep(_seeded_draw, root_seed=11, n_trials=5, workers=1)
    two = run_seed_sweep(_seeded_draw, root_seed=11, n_trials=5, workers=2)
    assert [r.value for r in one] == [r.value for r in two]
    # Distinct trials get distinct derived seeds, hence distinct draws.
    assert len({r.value for r in one}) == 5


def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_RUNNER_WORKERS", raising=False)
    assert resolve_workers(10, workers=4) == 4
    assert resolve_workers(2, workers=4) == 2  # never more than trials
    assert resolve_workers(10, workers=0) == 1
    monkeypatch.setenv("REPRO_RUNNER_WORKERS", "3")
    assert resolve_workers(10) == 3
    assert resolve_workers(10, workers=5) == 5  # explicit arg wins
    monkeypatch.delenv("REPRO_RUNNER_WORKERS")
    assert resolve_workers(10) == max(1, min(os.cpu_count() or 1, 10))


def test_empty_spec_list():
    assert run_trials([], workers=4) == []
