"""The scenario DSL: spec validation, the TOML subset parser, the
compiler, and — the redesign's contract — golden equivalence: the
spec-backed legacy wrappers must rebuild the pre-redesign worlds
bit-for-bit under the same seed (``tests/data/scenario_golden.json``
was captured from the imperative builders before the refactor)."""

import dataclasses
import warnings

import pytest

from tests._scenario_fingerprint import (
    case_study_fingerprint,
    centralized_fingerprint,
    load_golden,
    wave_fingerprint,
)
from repro.scenarios import (
    ScenarioCompiler,
    ScenarioRunner,
    ScenarioSpec,
    SpecError,
    load_spec,
    pakistan_spec,
    shipped_packs,
)
from repro.scenarios.spec import _parse_toml_subset, load_toml_file


MINIMAL = {
    "name": "minimal",
    "description": "one open site, one AS",
    "sites": [{"hostname": "open.example.com"}],
    "ases": [{"asn": 64900}],
}


def minimal(**overrides):
    data = {key: value for key, value in MINIMAL.items()}
    data.update(overrides)
    return data


# -- golden equivalence (satellite: legacy entrypoints are spec-backed) --------


class TestGoldenEquivalence:
    """Same seed, same world: wrappers vs the pre-redesign builders."""

    @pytest.fixture(autouse=True)
    def _no_warnings(self):
        # The compatibility wrappers must be silent — no
        # DeprecationWarning, no FutureWarning, nothing.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            yield

    def test_pakistan_case_study_bit_identical(self):
        assert case_study_fingerprint() == load_golden()["case_study"]

    def test_centralized_country_bit_identical(self):
        assert centralized_fingerprint() == load_golden()["centralized"]

    def test_blocking_wave_bit_identical(self):
        assert wave_fingerprint() == load_golden()["wave"]


# -- spec validation -----------------------------------------------------------


class TestSpecValidation:
    def test_minimal_spec_loads(self):
        spec = ScenarioSpec.from_dict(minimal())
        assert spec.name == "minimal"
        assert spec.resolved_mode() == "probe"

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SpecError, match="unknown key"):
            ScenarioSpec.from_dict(minimal(sites_typo=[]))

    def test_unknown_site_key_names_the_section(self):
        with pytest.raises(SpecError, match=r"sites\[0\]"):
            ScenarioSpec.from_dict(
                minimal(sites=[{"hostname": "x.example", "sizebytes": 1}])
            )

    def test_duplicate_asn_rejected(self):
        with pytest.raises(SpecError, match="duplicate"):
            ScenarioSpec.from_dict(minimal(ases=[{"asn": 1}, {"asn": 1}]))

    def test_dangling_policy_reference_rejected(self):
        with pytest.raises(SpecError, match="unknown policy"):
            ScenarioSpec.from_dict(
                minimal(ases=[{"asn": 1, "policy": "missing"}])
            )

    def test_rule_requires_mechanism_and_matcher(self):
        with pytest.raises(SpecError, match="mechanism"):
            ScenarioSpec.from_dict(minimal(policies=[
                {"name": "p", "rules": [{"domains": ["x.example"]}]},
            ]))
        with pytest.raises(SpecError, match="matcher|criterion"):
            ScenarioSpec.from_dict(minimal(policies=[
                {"name": "p", "rules": [{"mechanisms": ["http-drop"]}]},
            ]))

    def test_unknown_mechanism_lists_vocabulary(self):
        spec = ScenarioSpec.from_dict(minimal(policies=[
            {"name": "p", "rules": [
                {"mechanisms": ["quic-drop"], "domains": ["x.example"]},
            ]},
        ]))
        with pytest.raises(SpecError, match="quic-drop.*dns-redirect"):
            ScenarioCompiler().compile(spec)

    def test_unknown_client_config_key_rejected(self):
        with pytest.raises(SpecError, match="config"):
            ScenarioSpec.from_dict(minimal(
                populations=[{"per_as": 1, "config": {"not_a_knob": 1}}],
            ))

    def test_fleet_expectation_requires_cohort_mode(self):
        with pytest.raises(SpecError, match="cohort"):
            ScenarioSpec.from_dict(minimal(
                expect={"fleet": {"all_converge": True}},
            ))

    def test_reputation_expectation_checks_group_names(self):
        with pytest.raises(SpecError, match="ghost"):
            ScenarioSpec.from_dict({
                "name": "attack",
                "description": "bad group ref",
                "attack": {"groups": [
                    {"name": "flood", "role": "flood",
                     "clients": 2, "urls_each": 3},
                ]},
                "expect": {"reputation": {"flagged_groups": ["ghost"]}},
            })

    def test_with_seed_rerolls_only_the_seed(self):
        spec = ScenarioSpec.from_dict(minimal())
        reseeded = spec.with_seed(99)
        assert reseeded.seed == 99
        assert dataclasses.replace(reseeded, seed=spec.seed) == spec


# -- TOML subset parser --------------------------------------------------------


class TestTomlSubset:
    @pytest.mark.parametrize(
        "name", [name for name, _ in shipped_packs()]
    )
    def test_agrees_with_tomllib_on_shipped_packs(self, name):
        tomllib = pytest.importorskip("tomllib")
        path = dict(shipped_packs())[name]
        with open(path, "rb") as fh:
            reference = tomllib.load(fh)
        with open(path, "r", encoding="utf-8") as fh:
            ours = _parse_toml_subset(fh.read(), path)
        assert ours == reference

    def test_value_types(self, tmp_path):
        path = tmp_path / "types.toml"
        path.write_text(
            'name = "x"\n'
            "n = 42\n"
            "big = 100_000\n"
            "rate = 2.5e-3\n"
            "on = true\n"
            "off = false\n"
            'tags = ["a", "b"]\n'
            "nums = [1, 2,\n"
            "        3]\n"
            'comment = "kept # inside"  # stripped outside\n'
        )
        data = _parse_toml_subset(path.read_text(), str(path))
        assert data == {
            "name": "x", "n": 42, "big": 100000, "rate": 2.5e-3,
            "on": True, "off": False, "tags": ["a", "b"],
            "nums": [1, 2, 3], "comment": "kept # inside",
        }

    def test_array_of_tables_and_nested_sections(self, tmp_path):
        text = (
            "[[sites]]\n"
            'hostname = "a.example"\n'
            "[[sites]]\n"
            'hostname = "b.example"\n'
            "[sites.extra]\n"
            "flag = true\n"
            "[workload]\n"
            "interval = 10.0\n"
        )
        data = _parse_toml_subset(text, "<test>")
        assert [s["hostname"] for s in data["sites"]] == ["a.example", "b.example"]
        # dotted [section] after [[sites]] attaches to the *last* element
        assert data["sites"][1]["extra"] == {"flag": True}
        assert data["workload"] == {"interval": 10.0}

    def test_unparseable_line_raises(self, tmp_path):
        with pytest.raises(SpecError, match="line 2"):
            _parse_toml_subset('a = 1\nb = {inline = "tables"}\n', "<test>")


# -- compiler ------------------------------------------------------------------


class TestCompiler:
    def test_centralized_policy_object_is_shared(self):
        from repro.scenarios import centralized_spec

        compiled = ScenarioCompiler().compile(
            centralized_spec(seed=2, n_isps=3)
        )
        policies = {
            id(isp.censor.policy) for isp in compiled.isps.values()
        }
        assert len(policies) == 1

    def test_ips_of_resolves_to_site_addresses(self):
        compiled = ScenarioCompiler().compile(pakistan_spec(seed=2))
        world = compiled.world
        rule = next(
            r for r in compiled.policies["ISP-A"].rules
            if r.label == "table5-tcpip"
        )
        site = world.network.hosts_by_name["www.blocked-tcpip.example.com"]
        assert site.ip in rule.matcher.ips

    def test_ips_of_unknown_host_errors(self):
        spec = ScenarioSpec.from_dict(minimal(policies=[
            {"name": "p", "rules": [
                {"mechanisms": ["ip-drop"], "ips_of": ["ghost.example"]},
            ]},
        ]))
        with pytest.raises(SpecError, match="ghost.example"):
            ScenarioCompiler().compile(spec)

    def test_rolling_events_require_a_policy(self):
        spec = ScenarioSpec.from_dict(minimal(
            rolling={
                "domains": ["open.example.com"],
                "asns": [64900],
                "lag": 100.0,
            },
        ))
        with pytest.raises(SpecError, match="policy"):
            ScenarioCompiler().compile(spec)

    def test_rolling_events_are_seed_deterministic(self):
        def events(seed):
            spec = ScenarioSpec.from_dict(minimal(
                seed=seed,
                policies=[{"name": "p"}],
                ases=[{"asn": 64900, "policy": "p"}],
                rolling={
                    "domains": ["open.example.com"],
                    "asns": [64900],
                    "start": 50.0,
                    "lag": 100.0,
                    "mechanisms": ["http-drop"],
                },
            ))
            return [
                (e.time, e.asn, e.domain)
                for e in ScenarioCompiler().compile(spec).events
            ]

        first = events(7)
        assert events(7) == first
        assert events(8) != first
        assert all(50.0 <= t <= 150.0 for t, _, _ in first)

    def test_geo_blocked_site_serves_server_filtering(self):
        spec = ScenarioSpec.from_dict(minimal(
            sites=[{"hostname": "geo.example", "geo_blocked": ["pakistan"]}],
            expect={"verdict": [{
                "url": "http://geo.example/",
                "asn": 64900,
                "status": "blocked",
                "stages": ["server-filtering"],
            }]},
        ))
        outcome = ScenarioRunner().run(spec)
        assert outcome.report.ok, outcome.report.render()


# -- runner --------------------------------------------------------------------


class TestRunner:
    def test_cohort_sharded_matches_serial(self):
        base = load_toml_file(dict(shipped_packs())["low-penetration-country"])
        serial_spec = ScenarioSpec.from_dict(base)
        base["cohort"]["sharded"] = True
        sharded_spec = ScenarioSpec.from_dict(base)

        serial = ScenarioRunner().run(serial_spec).fleet
        sharded = ScenarioRunner(workers=2).run(sharded_spec).fleet
        assert serial.convergence_by_as == sharded.convergence_by_as
        assert serial.reports_absorbed == sharded.reports_absorbed

    def test_probe_mode_report_names_missing_probes(self):
        spec = ScenarioSpec.from_dict(minimal(
            expect={"verdict": [{
                "url": "http://open.example.com/",
                "asn": 64900,
                "status": "not-blocked",
            }]},
        ))
        outcome = ScenarioRunner().run(spec)
        assert outcome.report.ok
        (check,) = outcome.report.checks
        assert check.kind == "verdict"
