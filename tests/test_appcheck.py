"""Tests for non-web app filtering measurement + VPN recovery (§8)."""

import pytest

from repro.censor.actions import IpAction, IpVerdict
from repro.censor.policy import CensorPolicy, Matcher, Rule
from repro.core import BlockStatus
from repro.core.appcheck import AppReachabilityChecker
from repro.simnet.app import AppBlocked, AppService, app_connect, build_app_service
from repro.simnet.world import World


@pytest.fixture()
def setup():
    world = World(seed=41)
    world.add_public_resolver()
    policy = CensorPolicy(name="app-censor")
    isp = world.add_isp(300, "isp", policy=policy)
    service = build_app_service(world, "chatapp", n_endpoints=3)
    vpn = world.network.add_host("vpn-endpoint", "netherlands",
                                 bandwidth_bps=50e6)
    client, access = world.add_client("app-user", [isp])
    ctx = world.new_ctx(client, access)
    return world, policy, service, vpn, ctx


def block_ips(policy, ips, label="app-block"):
    policy.add_rule(
        Rule(matcher=Matcher(ips=set(ips)), ip=IpVerdict(IpAction.DROP),
             label=label)
    )


class TestAppService:
    def test_needs_endpoints(self):
        with pytest.raises(ValueError):
            AppService(name="empty", endpoints=[])

    def test_connect_unblocked(self, setup):
        world, _policy, service, _vpn, ctx = setup
        conn = world.run_process(app_connect(world, ctx, service))
        assert conn.service == "chatapp"
        assert conn.via == "direct"
        assert conn.endpoint in service.endpoints

    def test_partial_block_falls_over_to_live_endpoint(self, setup):
        world, policy, service, _vpn, ctx = setup
        block_ips(policy, service.endpoint_ips[:2])
        conn = world.run_process(app_connect(world, ctx, service))
        assert conn.endpoint.ip == service.endpoint_ips[2]

    def test_total_block_raises(self, setup):
        world, policy, service, _vpn, ctx = setup
        block_ips(policy, service.endpoint_ips)

        def proc():
            with pytest.raises(AppBlocked):
                yield from app_connect(world, ctx, service)

        world.run_process(proc())


class TestChecker:
    def test_check_classifies_endpoints(self, setup):
        world, policy, service, vpn, ctx = setup
        block_ips(policy, service.endpoint_ips[:1])
        checker = AppReachabilityChecker(world, vpn_endpoint=vpn)
        status = world.run_process(checker.check(ctx, service))
        assert status.status is BlockStatus.BLOCKED
        assert status.blocked_endpoints == service.endpoint_ips[:1]
        assert len(status.reachable_endpoints) == 2
        assert not status.fully_blocked

    def test_connect_uses_vpn_when_fully_blocked(self, setup):
        world, policy, service, vpn, ctx = setup
        block_ips(policy, service.endpoint_ips)
        checker = AppReachabilityChecker(world, vpn_endpoint=vpn)
        conn = world.run_process(checker.connect(ctx, service))
        assert conn.via == "vpn"
        assert checker.status_of("chatapp").fully_blocked

    def test_cached_block_goes_straight_to_vpn(self, setup):
        world, policy, service, vpn, ctx = setup
        block_ips(policy, service.endpoint_ips)
        checker = AppReachabilityChecker(world, vpn_endpoint=vpn)

        def flow():
            first = yield from checker.connect(ctx, service)
            t0 = world.env.now
            second = yield from checker.connect(ctx, service)
            return first, second, world.env.now - t0

        first, second, second_duration = world.run_process(flow())
        assert first.via == "vpn" and second.via == "vpn"
        # No direct re-probe: the second connect skips the 21s timeouts.
        assert second_duration < 5.0

    def test_no_vpn_raises_when_blocked(self, setup):
        world, policy, service, _vpn, ctx = setup
        block_ips(policy, service.endpoint_ips)
        checker = AppReachabilityChecker(world, vpn_endpoint=None)

        def proc():
            with pytest.raises(AppBlocked):
                yield from checker.connect(ctx, service)

        world.run_process(proc())

    def test_status_expires_after_ttl(self, setup):
        world, policy, service, vpn, ctx = setup
        checker = AppReachabilityChecker(world, vpn_endpoint=vpn,
                                         record_ttl=100.0)
        world.run_process(checker.check(ctx, service))
        assert checker.status_of("chatapp") is not None
        world.env.run(until=world.env.now + 200.0)
        assert checker.status_of("chatapp") is None

    def test_unblocked_service_stays_direct(self, setup):
        world, _policy, service, vpn, ctx = setup
        checker = AppReachabilityChecker(world, vpn_endpoint=vpn)
        conn = world.run_process(checker.connect(ctx, service))
        assert conn.via == "direct"
        assert checker.status_of("chatapp").status is BlockStatus.NOT_BLOCKED

    def test_vpn_blocked_too_raises(self, setup):
        world, policy, service, vpn, ctx = setup
        block_ips(policy, service.endpoint_ips)
        block_ips(policy, [vpn.ip], label="vpn-block")
        checker = AppReachabilityChecker(world, vpn_endpoint=vpn)

        def proc():
            from repro.simnet.tcp import TcpError

            with pytest.raises((AppBlocked, TcpError)):
                yield from checker.connect(ctx, service)

        world.run_process(proc())
