"""CSA104: flagged only when ``spec-modules`` includes ``myspec``."""

from myspec import MySpec


def adjust(cfg: MySpec):
    cfg.depth = 3
    return cfg
