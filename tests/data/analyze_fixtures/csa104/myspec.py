"""CSA104 fixture: a custom spec module for the ``spec-modules`` option."""


class MySpec:
    pass
