"""CSA104 positive: attribute assignment and in-place mutation on a
parameter annotated with the spec-tree root class."""


def tweak(spec: ScenarioSpec):
    spec.seed = 1
    spec.sites.append("x")
    return spec


def fine(spec: ScenarioSpec):
    return spec.seed
