"""CSA102 negatives: every sanctioned stream-name shape.

- a threaded parameter (the literal registers at the caller);
- a ``fork()``-ed child registry (per-entity namespace);
- a constant prefix/suffix on a threaded name.
"""


def draw(rngs, name):
    return rngs.stream(name).random()


def forked(rngs, ident):
    return rngs.fork(ident).stream(f"client/{ident}").random()


def prefixed(rngs, ident):
    return rngs.stream("wave/" + ident).random()
