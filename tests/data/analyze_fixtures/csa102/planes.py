"""CSA102 over the ``planes/*`` RNG streams.

Mirrors ``core/fleet.py``'s per-plane reporter groups: each plane in
each AS seeds its own ``random.Random`` from the trial identity via
``derive_seed(seed, "fleet-plane", name, asn)`` — the sanctioned shape
even in worker-reachable code — while a constant-seeded plane group
replays the identical reporter sample in every trial.
"""

import random


def plane_group(seed, name, asn):
    rng = random.Random(derive_seed(seed, "fleet-plane", name, asn))
    return rng.random()


def stale_plane_group(name):
    rng = random.Random(52011)
    return rng.random()


def storm(t):
    return plane_group(7, "encore", 65200) + stale_plane_group("encore")


def launch():
    return TrialSpec("storm", storm)
