"""CSA102 positive (constant seed): worker-reachable code seeding an
RNG with a literal gives every trial the identical draw sequence."""


def trial(t):
    rng = RngRegistry(seed=1234)
    return rng.stream("trial-noise").random()


def launch():
    return TrialSpec("t", trial)
