"""CSA102 positive (dynamic name): a computed stream name cannot be
audited for collisions at all."""


def draw(rngs, key):
    return rngs.stream(key.upper()).random()
