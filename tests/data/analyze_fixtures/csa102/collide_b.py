"""CSA102 positive (collision): the other half of the shared name."""


def sample(rngs):
    return rngs.stream("shared-pool").random()
