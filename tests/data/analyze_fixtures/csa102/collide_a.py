"""CSA102 positive (collision): registers the same literal stream name
as ``collide_b`` — their draw sequences would interleave."""


def draw(rngs):
    return rngs.stream("shared-pool").random()
