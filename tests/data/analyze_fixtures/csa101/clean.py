"""CSA101 negative: the same shape with state threaded as a parameter.

Writing into a dict the caller passed in is not shared module state —
each trial owns its mapping, so worker sharding cannot reorder effects.
"""


def helper(cache, x):
    cache[x] = x
    return x


def entry(trial):
    return helper({}, trial)


def launch(specs):
    return [TrialSpec(name, entry) for name in specs]
