"""CSA101 positive: module state written by worker-reachable helpers.

``entry`` is passed to ``TrialSpec`` (so it ships to pool workers);
``middle`` and ``helper`` are reachable from it and write module-level
mutable state — one item assignment, one in-place ``.append``.
"""

CACHE = {}
TALLY = []


def helper(x):
    CACHE[x] = x
    return x


def middle(x):
    TALLY.append(helper(x))
    return x


def entry(trial):
    return middle(trial)


def launch(specs):
    return [TrialSpec(name, entry) for name in specs]
