"""CSA101 suppression: a documented inline disable silences one site."""

HITS = {}


def probe(x):
    # Idempotent marker write (key -> constant True); order-free by
    # construction, kept for the suppression fixture.
    HITS[x] = True  # csaw-analyze: disable=CSA101
    return x


def entry(trial):
    return probe(trial)


def launch():
    return TrialSpec("probe", entry)
