"""CSA105 negative: sorted() fixes the order before it escapes."""

from producer import annotated


def report(xs):
    return sorted(annotated(xs))
