"""CSA105 positives and negatives around a cross-module set producer.

``layered`` itself returning the set is fine (the caller still sees a
set); materializing its *order* into a public return value is not.
"""

from producer import candidates


def layered():
    return candidates()


def report():
    return list(candidates())


def digest():
    return ",".join(layered())


def listing():
    return [c for c in candidates()]


def ordered():
    return sorted(candidates())


def _internal():
    return list(candidates())
