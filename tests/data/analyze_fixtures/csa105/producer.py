"""CSA105 fixture: set-returning producers in their own module, so the
set-ness is invisible to any per-file analysis of the consumers."""


def candidates():
    return {"a", "b", "c"}


def annotated(xs) -> set:
    out = set()
    for x in xs:
        out.add(x)
    return out
