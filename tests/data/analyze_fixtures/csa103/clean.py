"""CSA103 negative: pure computation, no path to any ambient sink."""


def pure(x):
    return x * 2


def compose(x):
    return pure(pure(x))
