"""CSA103 positive: two helper layers transitively reach a wall-clock
sink defined in another module."""

from sinks import now


def helper():
    return now() + 1.0


def caller():
    return helper()
