"""CSA103 fixture: the direct sink itself (csaw-lint's finding, not
CSA103's — the analyzer only reports the *escape* through callers)."""

import time


def now():
    return time.time()
