"""Tests for the local database: aggregation, expiry, reporting state."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.aggregation import UrlPrefixIndex, storage_key
from repro.core.localdb import LocalDatabase
from repro.core.records import BlockStatus, BlockType


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def db(clock):
    return LocalDatabase(asn=17557, ttl=100.0, clock=clock)


class TestStorageKey:
    def test_not_blocked_collapses_to_base(self):
        key = storage_key(
            "http://www.foo.com/a.html", BlockStatus.NOT_BLOCKED, []
        )
        assert key == "http://www.foo.com/"

    def test_http_blocked_derived_keeps_derived_key(self):
        key = storage_key(
            "http://www.foo.com/a.html",
            BlockStatus.BLOCKED,
            [BlockType.BLOCK_PAGE],
        )
        assert key == "http://www.foo.com/a.html"

    def test_hostname_scoped_blocking_collapses_to_base(self):
        for block_type in (
            BlockType.DNS_SERVFAIL,
            BlockType.IP_TIMEOUT,
            BlockType.SNI_RST,
        ):
            key = storage_key(
                "http://www.foo.com/a.html", BlockStatus.BLOCKED, [block_type]
            )
            assert key == "http://www.foo.com/"


class TestPrefixIndex:
    def test_longest_prefix_semantics(self):
        index = UrlPrefixIndex()
        index.add("http://foo.com/")
        index.add("http://foo.com/a")
        index.add("http://foo.com/a/b")
        assert index.longest_prefix("http://foo.com/a/b/c") == "http://foo.com/a/b"
        assert index.longest_prefix("http://foo.com/a/x") == "http://foo.com/a"
        assert index.longest_prefix("http://foo.com/z") == "http://foo.com/"

    def test_segment_boundaries_respected(self):
        index = UrlPrefixIndex()
        index.add("http://foo.com/a")
        assert index.longest_prefix("http://foo.com/ab") is None
        assert index.longest_prefix("http://foo.com/a/b") == "http://foo.com/a"

    def test_origin_isolation(self):
        index = UrlPrefixIndex()
        index.add("http://foo.com/a")
        assert index.longest_prefix("http://bar.com/a/b") is None
        assert index.longest_prefix("https://foo.com/a/b") is None

    def test_remove(self):
        index = UrlPrefixIndex()
        index.add("http://foo.com/a")
        index.remove("http://foo.com/a")
        assert index.longest_prefix("http://foo.com/a") is None
        assert len(index) == 0


class TestLocalDatabase:
    def test_unknown_url_not_measured(self, db):
        status, record = db.lookup("http://unknown.example/")
        assert status is BlockStatus.NOT_MEASURED
        assert record is None

    def test_blocked_base_covers_derived(self, db):
        db.record_measurement(
            "http://foo.com/", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        status, record = db.lookup("http://foo.com/deep/page.html")
        assert status is BlockStatus.BLOCKED
        assert record.url == "http://foo.com/"

    def test_blocked_derived_does_not_block_siblings(self, db):
        db.record_measurement(
            "http://foo.com/secret", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        assert db.lookup("http://foo.com/secret")[0] is BlockStatus.BLOCKED
        assert db.lookup("http://foo.com/secret/page")[0] is BlockStatus.BLOCKED
        assert db.lookup("http://foo.com/other")[0] is BlockStatus.NOT_MEASURED

    def test_uncensored_urls_collapse_to_single_base_record(self, db):
        for path in ("/a", "/b", "/c/d"):
            db.record_measurement(
                f"http://foo.com{path}", BlockStatus.NOT_BLOCKED, []
            )
        assert db.record_count == 1
        status, record = db.lookup("http://foo.com/anything")
        assert status is BlockStatus.NOT_BLOCKED
        assert record.url == "http://foo.com/"

    def test_blocked_derived_survives_unblocked_base(self, db):
        db.record_measurement(
            "http://foo.com/secret", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        db.record_measurement("http://foo.com/open", BlockStatus.NOT_BLOCKED, [])
        # Longest-prefix: the specific blocked record wins over the base.
        assert db.lookup("http://foo.com/secret/x")[0] is BlockStatus.BLOCKED
        assert db.lookup("http://foo.com/other")[0] is BlockStatus.NOT_BLOCKED
        assert db.record_count == 2

    def test_dns_blocked_derived_collapses_and_covers_origin(self, db):
        db.record_measurement(
            "http://foo.com/a.html", BlockStatus.BLOCKED, [BlockType.DNS_SERVFAIL]
        )
        assert db.record_count == 1
        assert db.lookup("http://foo.com/zzz")[0] is BlockStatus.BLOCKED

    def test_base_block_purges_derived_records(self, db):
        db.record_measurement(
            "http://foo.com/a", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        db.record_measurement(
            "http://foo.com/b", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        assert db.record_count == 2
        db.record_measurement(
            "http://foo.com/", BlockStatus.BLOCKED, [BlockType.DNS_TIMEOUT]
        )
        assert db.record_count == 1

    def test_expiry_returns_not_measured(self, db, clock):
        db.record_measurement(
            "http://foo.com/", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        clock.now = 50.0
        assert db.lookup("http://foo.com/")[0] is BlockStatus.BLOCKED
        clock.now = 150.0
        assert db.lookup("http://foo.com/")[0] is BlockStatus.NOT_MEASURED
        assert db.record_count == 0  # expired record dropped on lookup

    def test_expire_records_sweep(self, db, clock):
        db.record_measurement("http://a.com/", BlockStatus.NOT_BLOCKED, [])
        clock.now = 60.0
        db.record_measurement("http://b.com/", BlockStatus.NOT_BLOCKED, [])
        clock.now = 130.0
        assert db.expire_records() == 1  # only a.com expired
        assert db.record_count == 1

    def test_status_change_replaces_record(self, db):
        db.record_measurement(
            "http://foo.com/", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        db.record_measurement("http://foo.com/", BlockStatus.NOT_BLOCKED, [])
        status, record = db.lookup("http://foo.com/x")
        assert status is BlockStatus.NOT_BLOCKED
        assert record.stages == []

    def test_same_status_merges_stages_and_resets_posted(self, db):
        record = db.record_measurement(
            "http://foo.com/", BlockStatus.BLOCKED, [BlockType.DNS_SERVFAIL]
        )
        record.global_posted = True
        db.record_measurement(
            "http://foo.com/", BlockStatus.BLOCKED, [BlockType.IP_TIMEOUT]
        )
        status, merged = db.lookup("http://foo.com/")
        assert merged.stages == [BlockType.DNS_SERVFAIL, BlockType.IP_TIMEOUT]
        assert not merged.global_posted

    def test_pending_reports_and_mark_posted(self, db):
        db.record_measurement(
            "http://a.com/", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        db.record_measurement("http://b.com/", BlockStatus.NOT_BLOCKED, [])
        pending = db.pending_reports()
        assert [r.url for r in pending] == ["http://a.com/"]
        db.mark_posted(["http://a.com/"])
        assert db.pending_reports() == []

    def test_not_measured_cannot_be_recorded(self, db):
        with pytest.raises(ValueError):
            db.record_measurement("http://a.com/", BlockStatus.NOT_MEASURED, [])

    def test_aggregation_disabled_keeps_every_url(self, clock):
        db = LocalDatabase(ttl=100, aggregation=False, clock=clock)
        for path in ("/a", "/b", "/c"):
            db.record_measurement(
                f"http://foo.com{path}", BlockStatus.NOT_BLOCKED, []
            )
        assert db.record_count == 3
        # Exact-match only: the base was never measured.
        assert db.lookup("http://foo.com/")[0] is BlockStatus.NOT_MEASURED
        assert db.lookup("http://foo.com/a")[0] is BlockStatus.NOT_BLOCKED

    def test_aggregation_reduces_records(self, clock):
        """The Figure-6b effect in miniature."""
        with_agg = LocalDatabase(ttl=1e9, aggregation=True, clock=clock)
        without = LocalDatabase(ttl=1e9, aggregation=False, clock=clock)
        urls = [f"http://site{s}.com/page/{p}" for s in range(5) for p in range(6)]
        for url in urls:
            with_agg.record_measurement(url, BlockStatus.NOT_BLOCKED, [])
            without.record_measurement(url, BlockStatus.NOT_BLOCKED, [])
        assert with_agg.record_count == 5  # one per origin
        assert without.record_count == 30

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.sampled_from(["/", "/a", "/a/b", "/c"]),
                st.booleans(),
            ),
            max_size=30,
        )
    )
    def test_lookup_never_crashes_and_statuses_valid(self, operations):
        clock = FakeClock()
        db = LocalDatabase(ttl=100, clock=clock)
        for site, path, blocked in operations:
            url = f"http://site{site}.com{path}"
            if blocked:
                db.record_measurement(
                    url, BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
                )
            else:
                db.record_measurement(url, BlockStatus.NOT_BLOCKED, [])
            status, _record = db.lookup(url)
            assert status in (BlockStatus.BLOCKED, BlockStatus.NOT_BLOCKED)


class TestDirtyKeySets:
    """pending_reports/blocked_records are served from write-maintained
    key sets; these tests pin the sets to what a full scan would say."""

    @staticmethod
    def naive_pending(db):
        return {
            r.url
            for r in db.records()
            if r.status is BlockStatus.BLOCKED and not r.global_posted
        }

    @staticmethod
    def naive_blocked(db):
        return {r.url for r in db.records() if r.status is BlockStatus.BLOCKED}

    def test_stage_merge_re_dirties_posted_record(self, db):
        db.record_measurement(
            "http://a.com/", BlockStatus.BLOCKED, [BlockType.DNS_SERVFAIL]
        )
        db.mark_posted(["http://a.com/"])
        assert db.pending_reports() == []
        db.record_measurement(
            "http://a.com/", BlockStatus.BLOCKED, [BlockType.IP_TIMEOUT]
        )
        assert [r.url for r in db.pending_reports()] == ["http://a.com/"]
        # A repeat with no new stage stays clean once posted again.
        db.mark_posted(["http://a.com/"])
        db.record_measurement(
            "http://a.com/", BlockStatus.BLOCKED, [BlockType.IP_TIMEOUT]
        )
        assert db.pending_reports() == []

    def test_status_flip_clears_both_sets(self, db):
        db.record_measurement(
            "http://a.com/", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        assert len(db.blocked_records()) == 1
        db.record_measurement("http://a.com/", BlockStatus.NOT_BLOCKED, [])
        assert db.blocked_records() == []
        assert db.pending_reports() == []

    def test_expiry_cleans_key_sets(self, db, clock):
        db.record_measurement(
            "http://a.com/", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        clock.now = 150.0
        db.expire_records()
        assert db.blocked_records() == []
        assert db.pending_reports() == []

    def test_restore_rebuilds_key_sets(self, db):
        db.record_measurement(
            "http://a.com/", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        db.record_measurement(
            "http://b.com/", BlockStatus.BLOCKED, [BlockType.BLOCK_PAGE]
        )
        db.record_measurement("http://c.com/", BlockStatus.NOT_BLOCKED, [])
        db.mark_posted(["http://a.com/"])
        snapshot = db.snapshot()

        fresh = LocalDatabase(asn=17557, ttl=100.0, clock=FakeClock())
        fresh.restore(snapshot)
        assert self.naive_blocked(fresh) == {"http://a.com/", "http://b.com/"}
        assert {r.url for r in fresh.blocked_records()} == self.naive_blocked(
            fresh
        )
        assert [r.url for r in fresh.pending_reports()] == ["http://b.com/"]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["record", "post", "flip", "expire"]),
                st.integers(min_value=0, max_value=3),
                st.booleans(),
            ),
            max_size=40,
        )
    )
    def test_key_sets_match_naive_scan(self, operations):
        clock = FakeClock()
        db = LocalDatabase(ttl=100, clock=clock)
        for op, site, blocked in operations:
            url = f"http://site{site}.com/"
            if op == "record":
                status = (
                    BlockStatus.BLOCKED if blocked else BlockStatus.NOT_BLOCKED
                )
                stages = [BlockType.BLOCK_PAGE] if blocked else []
                db.record_measurement(url, status, stages)
            elif op == "post":
                db.mark_posted([url])
            elif op == "flip":
                db.record_measurement(url, BlockStatus.NOT_BLOCKED, [])
            else:
                clock.now += 40.0
                db.expire_records()
            assert {
                r.url for r in db.pending_reports()
            } == self.naive_pending(db)
            assert {
                r.url for r in db.blocked_records()
            } == self.naive_blocked(db)
