"""Tests for the csaw-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_accepted_after_subcommand(self):
        args = build_parser().parse_args(["wave", "--seed", "9"])
        assert args.seed == 9

    def test_pilot_options(self):
        args = build_parser().parse_args(
            ["pilot", "--users", "10", "--days", "5", "--ases", "4"]
        )
        assert (args.users, args.days, args.ases) == (10, 5.0, 4)


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out
        assert "https" in out  # converged onto the local fix

    def test_casestudy_runs(self, capsys):
        assert main(["casestudy"]) == 0
        out = capsys.readouterr().out
        assert "ISP-A" in out and "ISP-B" in out
        assert "dns-redirect" in out

    def test_wave_runs(self, capsys):
        assert main(["wave"]) == 0
        out = capsys.readouterr().out
        assert "Twitter" in out and "Instagram" in out

    def test_oni_runs(self, capsys):
        assert main(["oni", "--domains", "20"]) == 0
        out = capsys.readouterr().out
        assert "AS30873" in out

    def test_blockpages_runs(self, capsys):
        assert main(["blockpages"]) == 0
        out = capsys.readouterr().out
        assert "phase-1 recall" in out

    def test_small_pilot_runs(self, capsys):
        assert main(
            ["pilot", "--users", "6", "--days", "8", "--sites", "120",
             "--ases", "3", "--seed", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "No. of users" in out
