"""Tests for the csaw-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_accepted_after_subcommand(self):
        args = build_parser().parse_args(["wave", "--seed", "9"])
        assert args.seed == 9

    def test_pilot_options(self):
        args = build_parser().parse_args(
            ["pilot", "--users", "10", "--days", "5", "--ases", "4"]
        )
        assert (args.users, args.days, args.ases) == (10, 5.0, 4)


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out
        assert "https" in out  # converged onto the local fix

    def test_casestudy_runs(self, capsys):
        assert main(["casestudy"]) == 0
        out = capsys.readouterr().out
        assert "ISP-A" in out and "ISP-B" in out
        assert "dns-redirect" in out

    def test_wave_runs(self, capsys):
        assert main(["wave"]) == 0
        out = capsys.readouterr().out
        assert "Twitter" in out and "Instagram" in out

    def test_oni_runs(self, capsys):
        assert main(["oni", "--domains", "20"]) == 0
        out = capsys.readouterr().out
        assert "AS30873" in out

    def test_blockpages_runs(self, capsys):
        assert main(["blockpages"]) == 0
        out = capsys.readouterr().out
        assert "phase-1 recall" in out

    def test_small_pilot_runs(self, capsys):
        assert main(
            ["pilot", "--users", "6", "--days", "8", "--sites", "120",
             "--ases", "3", "--seed", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "No. of users" in out


class TestScenarioCommands:
    def test_list_names_all_shipped_packs(self, capsys):
        from repro.scenarios import shipped_packs

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name, _ in shipped_packs():
            assert name in out

    def test_run_pack_by_name_prints_report(self, capsys):
        assert main(["scenario", "run", "vantage-disagreement"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "classification" in out

    def test_run_pack_by_path(self, capsys, tmp_path):
        from repro.scenarios import shipped_packs

        path = dict(shipped_packs())["sybil-flood"]
        assert main(["scenario", "run", path]) == 0
        out = capsys.readouterr().out
        assert "reputation" in out

    def test_run_unknown_pack_errors(self, capsys):
        assert main(["scenario", "run", "no-such-pack"]) == 2
        err = capsys.readouterr().err
        assert "no-such-pack" in err
        assert "vantage-disagreement" in err  # names the shipped packs

    def test_run_failing_expectations_exits_nonzero(self, capsys, tmp_path):
        spec = tmp_path / "wrong.toml"
        spec.write_text(
            """
name = "wrong"
description = "deliberately wrong expectation"

[[sites]]
hostname = "open.example.com"

[[ases]]
asn = 64900

[[expect.verdict]]
url = "http://open.example.com/"
asn = 64900
status = "blocked"
"""
        )
        assert main(["scenario", "run", str(spec)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "expected" in out and "observed" in out

    def test_run_all_records_timings(self, capsys, tmp_path):
        import json

        from repro.scenarios import shipped_packs

        record = tmp_path / "times.json"
        assert main(["scenario", "run-all", "--record", str(record)]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == len(shipped_packs())
        data = json.loads(record.read_text())
        packs = {entry["pack"] for entry in data["packs"]}
        assert packs == {name for name, _ in shipped_packs()}
        assert all(entry["seconds"] >= 0 for entry in data["packs"])

    def test_run_all_record_exits_nonzero_on_failing_pack(
        self, capsys, tmp_path, monkeypatch
    ):
        """--record must not mask a failing pack: a non-empty expectation
        diff exits 1, and the record file still lands with ok=false."""
        import json

        import repro.scenarios as scenarios

        bad = tmp_path / "wrong_pack.toml"
        bad.write_text(
            """
name = "wrong-pack"
description = "deliberately wrong expectation"

[[sites]]
hostname = "open.example.com"

[[ases]]
asn = 64900

[[expect.verdict]]
url = "http://open.example.com/"
asn = 64900
status = "blocked"
"""
        )
        monkeypatch.setattr(
            scenarios, "shipped_packs",
            lambda: [("wrong-pack", str(bad))],
        )
        record = tmp_path / "times.json"
        assert main(["scenario", "run-all", "--record", str(record)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "wrong-pack:" in out  # the diff is printed per failing pack
        data = json.loads(record.read_text())
        assert data["packs"][0]["ok"] is False
        assert data["packs"][0]["failures"] >= 1
