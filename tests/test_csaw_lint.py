"""csaw-lint: paired trigger/clean fixtures per rule, plus the
suppression, allowlist, scope-override, baseline, and CLI behaviours —
and the enforcement test that keeps the real tree at zero findings."""

import json
import os
import textwrap
from pathlib import Path

import pytest

from repro.devtools.framework import all_rules, suppressed_lines
from repro.devtools.lint import (
    LintConfig,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    load_config,
    main,
    write_baseline,
)

REPO = Path(__file__).resolve().parents[1]

#: synthetic project root for fixture paths (scope/allow matching)
ROOT = "/proj"
SIMNET = f"{ROOT}/src/repro/simnet/mod.py"
CORE = f"{ROOT}/src/repro/core/mod.py"
ANALYSIS = f"{ROOT}/src/repro/analysis/mod.py"


def lint(source, path=ANALYSIS, config=None):
    source = textwrap.dedent(source)
    config = config or LintConfig(root=ROOT)
    return lint_source(source, path, config)


def codes(source, path=ANALYSIS, config=None):
    return [v.code for v in lint(source, path, config)]


# -- per-rule fixtures ---------------------------------------------------------


class TestCSL001AmbientRandomness:
    def test_trigger_module_level_draw(self):
        src = """
        import random

        def jitter():
            return random.random() + random.uniform(0, 1)
        """
        assert codes(src) == ["CSL001", "CSL001"]

    def test_trigger_from_import(self):
        src = """
        from random import choice

        def pick(xs):
            return choice(xs)
        """
        assert codes(src) == ["CSL001"]

    def test_trigger_unseeded_random(self):
        src = """
        import random

        rng = random.Random()
        """
        assert codes(src) == ["CSL001"]

    def test_clean_threaded_stream(self):
        src = """
        import random

        def jitter(rng: random.Random) -> float:
            return rng.random()

        seeded = random.Random(7)
        """
        assert codes(src) == []

    def test_clean_from_import_random_class(self):
        assert codes("from random import Random\nrng = Random(3)\n") == []


class TestCSL002WallClock:
    def test_trigger_time_calls(self):
        src = """
        import time

        def stamp():
            return time.time(), time.perf_counter()
        """
        assert codes(src) == ["CSL002", "CSL002"]

    def test_trigger_datetime_now(self):
        src = """
        from datetime import datetime

        def when():
            return datetime.now()
        """
        assert codes(src) == ["CSL002"]

    def test_trigger_from_time_import(self):
        assert codes("from time import monotonic\n") == ["CSL002"]

    def test_clean_simulated_time(self):
        src = """
        def stamp(env):
            return env.now

        def fmt(t: float) -> str:
            import time
            return time.strftime("%H:%M", time.gmtime(t))
        """
        assert codes(src) == []

    def test_default_allowlist_covers_trial_runner(self):
        src = "import time\nstart = time.perf_counter()\n"
        runner = f"{ROOT}/src/repro/runner/core.py"
        assert codes(src, path=runner) == []
        assert codes(src, path=CORE) == ["CSL002"]


class TestCSL003UnorderedIteration:
    def test_trigger_for_over_set(self):
        src = """
        def run(items):
            seen = set(items)
            out = []
            for item in seen:
                out.append(item)
            return out
        """
        assert codes(src) == ["CSL003"]

    def test_trigger_comprehension_over_set_literal(self):
        assert codes("names = [n for n in {'a', 'b'}]\n") == ["CSL003"]

    def test_trigger_list_materializes_set(self):
        src = """
        def order(pending):
            live = {p for p in pending}
            return list(live)
        """
        assert codes(src) == ["CSL003"]

    def test_trigger_join_over_set(self):
        src = """
        def fmt(tags):
            uniq = set(tags)
            return ",".join(uniq)
        """
        assert codes(src) == ["CSL003"]

    def test_trigger_set_algebra_tracked(self):
        src = """
        def diff(a, b):
            extra = set(a) - set(b)
            for item in extra:
                print(item)
        """
        assert codes(src) == ["CSL003"]

    def test_clean_sorted_iteration(self):
        src = """
        def run(items):
            seen = set(items)
            return [x for x in sorted(seen)]
        """
        assert codes(src) == []

    def test_clean_order_free_reducers(self):
        src = """
        def stats(items):
            seen = set(items)
            total = sum(1 for x in seen)
            return total, len(seen), min(seen), max(seen), any(x for x in seen)
        """
        assert codes(src) == []

    def test_clean_set_comprehension_over_set(self):
        src = """
        def hosts(urls):
            uniq = set(urls)
            return {u.lower() for u in uniq}
        """
        assert codes(src) == []

    def test_clean_ordered_dict_as_set(self):
        src = """
        def run(items):
            seen = {x: None for x in items}
            return list(seen)
        """
        assert codes(src) == []

    def test_rebinding_clears_tracking(self):
        src = """
        def run(items):
            seen = set(items)
            seen = sorted(seen)
            return [x for x in seen]
        """
        assert codes(src) == []

    def test_fleet_no_longer_allowlisted_for_csl003(self):
        """The grouped-sweep rewrite dropped the id-set bookkeeping that
        needed the ``core/fleet.py`` CSL003 exemption, so the repo config
        no longer carries it: the set-iteration shape trips in fleet.py
        like everywhere else (and the shipped fleet.py stays clean, per
        the whole-tree enforcement test)."""
        config = load_config(str(REPO / "pyproject.toml"), str(REPO))
        assert "CSL003" not in config.allow
        src = """
        def sweep(due, versions, target):
            ids = set(due)
            for i in ids:
                versions[i] = target
        """
        fleet = str(REPO / "src" / "repro" / "core" / "fleet.py")
        other = str(REPO / "src" / "repro" / "core" / "localdb.py")
        assert codes(src, path=fleet, config=config) == ["CSL003"]
        assert codes(src, path=other, config=config) == ["CSL003"]

    def test_grouped_sweep_grouping_dicts_clean_everywhere(self):
        """Hot-path round 4's grouped sweep keys per-sweep groups and
        batch caches on plain dicts (insertion-ordered), not sets —
        the grouping shape must be CSL003-clean *without* relying on
        the ``core/fleet.py`` allowlist entry, so the fast path stays
        portable to unexempted modules."""
        config = load_config(str(REPO / "pyproject.toml"), str(REPO))
        src = """
        def sweep(due, versions, build):
            groups = {}
            for i in due:
                members = groups.get(versions[i])
                if members is None:
                    groups[versions[i]] = [i]
                else:
                    members.append(i)
            built = {}
            for since, members in groups.items():
                if since not in built:
                    built[since] = build(since)
            return built
        """
        other = str(REPO / "src" / "repro" / "core" / "localdb.py")
        assert codes(src, path=other, config=config) == []


class TestCSL004RealIo:
    def test_trigger_socket_import_in_simnet(self):
        assert codes("import socket\n", path=SIMNET) == ["CSL004"]

    def test_trigger_urllib_and_subprocess_in_core(self):
        src = "from urllib import request\nimport subprocess\n"
        assert codes(src, path=CORE) == ["CSL004", "CSL004"]

    def test_trigger_file_write_in_simnet(self):
        src = """
        def dump(path, data):
            with open(path, "w") as fh:
                fh.write(data)
        """
        assert codes(src, path=SIMNET) == ["CSL004"]

    def test_trigger_os_side_effects(self):
        src = """
        import os

        def clean(path):
            os.remove(path)
        """
        assert codes(src, path=SIMNET) == ["CSL004"]

    def test_clean_read_only_open(self):
        src = """
        def load(path):
            with open(path) as fh:
                return fh.read()
        """
        assert codes(src, path=SIMNET) == []

    def test_out_of_scope_path_is_exempt(self):
        assert codes("import socket\n", path=ANALYSIS) == []


class TestCSL005SlotsRequired:
    def test_trigger_event_class_without_slots(self):
        src = """
        class RetryEvent:
            def __init__(self, delay):
                self.delay = delay
        """
        assert codes(src, path=SIMNET) == ["CSL005"]

    def test_trigger_subclass_of_event_base(self):
        src = """
        class Retry(Event):
            pass
        """
        assert codes(src, path=SIMNET) == ["CSL005"]

    def test_clean_with_slots(self):
        src = """
        class RetryEvent:
            __slots__ = ("delay",)

            def __init__(self, delay):
                self.delay = delay

        class Empty(RetryEvent):
            __slots__ = ()
        """
        assert codes(src, path=SIMNET) == []

    def test_clean_dataclass_slots(self):
        src = """
        from dataclasses import dataclass

        @dataclass(frozen=True, slots=True)
        class FlowRecord:
            t: float
        """
        assert codes(src, path=SIMNET) == []

    def test_non_event_class_and_non_simnet_path_exempt(self):
        src = """
        class Helper:
            def __init__(self):
                self.x = 1
        """
        assert codes(src, path=SIMNET) == []
        assert codes("class LooseEvent:\n    pass\n", path=ANALYSIS) == []


class TestCSL006SimTimeEquality:
    def test_trigger_env_now_equality(self):
        assert codes("done = env.now == deadline\n") == ["CSL006"]

    def test_trigger_timestamp_attribute(self):
        assert codes("fresh = entry.posted_at != row.posted_at\n") == ["CSL006"]

    def test_clean_tolerance_helper_and_ordering(self):
        src = """
        from repro.simnet.simtime import time_eq

        done = time_eq(env.now, deadline)
        late = env.now >= deadline
        """
        assert codes(src) == []

    def test_clean_none_and_string_comparisons(self):
        src = """
        missing = entry.first_measured_at == None
        named = stage.value == "block-page"
        """
        assert codes(src) == []

    def test_config_extends_time_identifiers(self):
        config = LintConfig(root=ROOT, options={"time-identifiers": ["epoch"]})
        assert codes("hit = epoch == 3\n", config=config) == ["CSL006"]
        assert codes("hit = epoch == 3\n") == []


class TestCSL007MutableDefault:
    def test_trigger_literal_defaults(self):
        src = """
        def f(xs=[], opts={}):
            return xs, opts
        """
        assert codes(src) == ["CSL007", "CSL007"]

    def test_trigger_constructor_and_kwonly(self):
        src = """
        def g(s=set(), *, cache=dict()):
            return s, cache
        """
        assert codes(src) == ["CSL007", "CSL007"]

    def test_clean_none_and_immutable_defaults(self):
        src = """
        def f(xs=None, pair=(), name="x"):
            xs = list(xs or ())
            return xs, pair, name
        """
        assert codes(src) == []


class TestCSL008InlineBlockTypeMap:
    def test_trigger_dict_map(self):
        src = """
        from repro.core.records import BlockType
        from repro.simnet.dns import DnsTimeout, NxDomain

        _TYPES = {
            DnsTimeout: BlockType.DNS_TIMEOUT,
            NxDomain: BlockType.DNS_NXDOMAIN,
        }
        """
        assert codes(src, path=CORE) == ["CSL008"]

    def test_trigger_pair_list_and_reversed_dict(self):
        src = """
        from repro.core import records
        from repro.simnet.tcp import ConnectTimeout
        from repro.simnet.tls import TlsReset

        PAIRS = [
            (ConnectTimeout, records.BlockType.IP_TIMEOUT),
        ]
        BY_TYPE = {records.BlockType.SNI_RST: TlsReset}
        """
        assert codes(src, path=CORE) == ["CSL008", "CSL008"]

    def test_allowed_in_taxonomy(self):
        src = """
        from repro.core.records import BlockType
        from repro.simnet.http import HttpTimeout

        TABLE = ((HttpTimeout, BlockType.HTTP_TIMEOUT),)
        """
        assert codes(src, path=f"{ROOT}/src/repro/core/taxonomy.py") == []

    def test_clean_unrelated_dicts(self):
        src = """
        from repro.core.records import BlockType

        WEIGHTS = {"dns": 0.5, "tcp": 0.5}
        STAGES = {BlockType.DNS_TIMEOUT: "dns"}
        NAMES = [("DnsTimeout", "dns-timeout")]
        """
        assert codes(src, path=CORE) == []


class TestCSL009SpecBackedScenarios:
    SCENARIOS = f"{ROOT}/src/repro/workloads/scenarios.py"
    LIBRARY = f"{ROOT}/src/repro/scenarios/library.py"

    def test_trigger_direct_world_and_policy(self):
        src = """
        from repro.censor.policy import CensorPolicy
        from repro.simnet.world import World

        def build(seed):
            world = World(seed=seed)
            policy = CensorPolicy(name="national")
            return world, policy
        """
        assert codes(src, path=self.SCENARIOS) == ["CSL009", "CSL009"]

    def test_trigger_attribute_chain(self):
        src = """
        from repro import simnet

        def build(seed):
            return simnet.world.World(seed=seed)
        """
        assert codes(src, path=self.LIBRARY) == ["CSL009"]

    def test_clean_spec_backed_wrapper(self):
        src = """
        from repro.scenarios.compiler import ScenarioCompiler
        from repro.scenarios.library import pakistan_spec

        def build(seed):
            return ScenarioCompiler().compile(pakistan_spec(seed=seed))
        """
        assert codes(src, path=self.SCENARIOS) == []

    def test_out_of_scope_modules_unaffected(self):
        src = """
        from repro.simnet.world import World

        def build(seed):
            return World(seed=seed)
        """
        assert codes(src, path=CORE) == []
        assert codes(src, path=f"{ROOT}/src/repro/scenarios/compiler.py") == []


# -- suppressions --------------------------------------------------------------


class TestInlineSuppression:
    def test_same_line_disable_single_code(self):
        src = "import random\nx = random.random()  # csaw-lint: disable=CSL001\n"
        assert codes(src) == []

    def test_disable_all_codes(self):
        src = "import random\nx = random.random()  # csaw-lint: disable\n"
        assert codes(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = "import random\nx = random.random()  # csaw-lint: disable=CSL002\n"
        assert codes(src) == ["CSL001"]

    def test_standalone_comment_covers_next_line(self):
        src = (
            "import random\n"
            "# csaw-lint: disable=CSL001\n"
            "x = random.random()\n"
        )
        assert codes(src) == []

    def test_parser_maps_lines(self):
        supp = suppressed_lines("a = 1\n# csaw-lint: disable=CSL003,CSL006\nb = 2\n")
        assert supp[2] == {"CSL003", "CSL006"}
        assert supp[3] == {"CSL003", "CSL006"}


# -- config: allowlists, scope overrides, select -------------------------------


class TestConfig:
    def test_allowlist_extends_rule(self):
        config = LintConfig(root=ROOT, allow={"CSL001": ("src/repro/legacy/*",)})
        src = "import random\nx = random.random()\n"
        assert codes(src, path=f"{ROOT}/src/repro/legacy/old.py", config=config) == []
        assert codes(src, path=ANALYSIS, config=config) == ["CSL001"]

    def test_scope_override_replaces_rule_scope(self):
        config = LintConfig(root=ROOT, scope={"CSL004": ("src/repro/censor/*",)})
        src = "import socket\n"
        assert codes(src, path=SIMNET, config=config) == []
        assert codes(src, path=f"{ROOT}/src/repro/censor/mb.py", config=config) == [
            "CSL004"
        ]

    def test_select_restricts_rules(self):
        config = LintConfig(root=ROOT, select=("CSL007",))
        src = "import random\ndef f(xs=[]):\n    return random.random()\n"
        assert codes(src, config=config) == ["CSL007"]

    def test_load_config_reads_pyproject_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(
                """
                [tool.csawlint]
                select = ["CSL001", "CSL007"]
                baseline = "lint-baseline.json"

                [tool.csawlint.allow]
                CSL001 = ["src/gen/*"]

                [tool.csawlint.options]
                time-identifiers = ["epoch"]
                """
            )
        )
        config = load_config(None, str(tmp_path / "x.py"))
        assert config.root == str(tmp_path)
        assert config.select == ("CSL001", "CSL007")
        assert config.baseline == "lint-baseline.json"
        assert config.allow == {"CSL001": ("src/gen/*",)}
        assert config.options["time-identifiers"] == ["epoch"]

    def test_repo_pyproject_parses(self):
        config = load_config(str(REPO / "pyproject.toml"), str(REPO))
        assert "CSL002" in config.allow


# -- baseline mode -------------------------------------------------------------


class TestBaseline:
    @staticmethod
    def _violating_file(tmp_path, name="old.py", extra=""):
        path = tmp_path / "src" / name
        path.parent.mkdir(exist_ok=True)
        path.write_text("def f(xs=[]):\n    return xs\n" + extra)
        return path

    def test_round_trip_grandfathers_existing(self, tmp_path):
        self._violating_file(tmp_path)
        config = LintConfig(root=str(tmp_path))
        violations = lint_paths([str(tmp_path / "src")], config)
        assert [v.code for v in violations] == ["CSL007"]

        baseline_path = tmp_path / "baseline.json"
        write_baseline(violations, str(baseline_path), config)
        baseline = load_baseline(str(baseline_path))
        assert baseline == {"src/old.py:CSL007": 1}

        fresh, grandfathered = apply_baseline(violations, baseline, config)
        assert fresh == [] and grandfathered == 1

    def test_new_violation_not_masked(self, tmp_path):
        path = self._violating_file(tmp_path)
        config = LintConfig(root=str(tmp_path))
        violations = lint_paths([str(tmp_path / "src")], config)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(violations, str(baseline_path), config)

        path.write_text(path.read_text() + "def g(ys=[]):\n    return ys\n")
        violations = lint_paths([str(tmp_path / "src")], config)
        fresh, grandfathered = apply_baseline(
            violations, load_baseline(str(baseline_path)), config
        )
        assert grandfathered == 1
        assert [v.code for v in fresh] == ["CSL007"]

    def test_missing_baseline_is_empty(self):
        assert load_baseline(None) == {}
        assert load_baseline("/nonexistent/baseline.json") == {}


# -- CLI -----------------------------------------------------------------------


class TestCli:
    def test_exit_codes_and_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "CSL007" in out and "bad.py" in out

        good = tmp_path / "good.py"
        good.write_text("def f(xs=None):\n    return xs\n")
        assert main([str(good)]) == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--write-baseline", str(baseline)]) == 0
        assert json.loads(baseline.read_text())["entries"]
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"][0]["code"] == "CSL001"

    def test_select_flag(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\ndef f(xs=[]):\n    pass\n")
        assert main([str(bad), "--select", "CSL005"]) == 0

    def test_list_rules_prints_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_rules():
            assert code in out

    def test_syntax_error_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(:\n")
        assert main([str(bad)]) == 1
        assert "CSL999" in capsys.readouterr().out


# -- enforcement: the real tree stays at zero ----------------------------------


class TestRepoEnforcement:
    def test_all_nine_rules_registered(self):
        assert sorted(all_rules()) == [f"CSL00{i}" for i in range(1, 10)]

    def test_src_tree_is_lint_clean(self, capsys):
        rc = main([str(REPO / "src"), "--config", str(REPO / "pyproject.toml")])
        captured = capsys.readouterr()
        assert rc == 0, f"csaw-lint found violations:\n{captured.out}"

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(str(REPO / ".csawlint-baseline.json"))
        assert baseline == {}
