"""Life-of-a-deployment integration test: everything, in one story.

One world, several users, several days of virtual time:

1. users install (CAPTCHA, registration, blocked-list pull);
2. they browse — discovery costs once, local fixes thereafter,
   crowdsourced knowledge spreads through the global DB;
3. the censor escalates mid-story (a blocking wave) and C-Saw detects it
   within the browsing cadence;
4. one user migrates to another AS and inherits the crowd's knowledge;
5. a Sybil attacker floods the DB and is filtered/revoked;
6. the observatory analytics read coherent numbers off the result.
"""

import pytest

from repro.censor.actions import HttpAction, HttpVerdict
from repro.censor.policy import Matcher, Rule
from repro.core import (
    BlockStatus,
    BlockType,
    CSawClient,
    CSawConfig,
    MeasurementAnalytics,
    ReportItem,
    ReputationAnalyzer,
    ServerDB,
)
from repro.workloads.scenarios import pakistan_case_study


@pytest.fixture(scope="module")
def story():
    scenario = pakistan_case_study(seed=31337, with_proxy_fleet=False)
    world = scenario.world
    server = ServerDB(entry_ttl=None)
    config = CSawConfig(
        record_ttl=6 * 3600.0,
        report_interval=1800.0,
        download_interval=1800.0,
    )
    users = [
        CSawClient(
            world,
            f"e2e-user-{index}",
            [scenario.isp_a if index % 2 == 0 else scenario.isp_b],
            transports=scenario.make_transports(f"e2e-user-{index}"),
            server_db=server,
            config=config,
        )
        for index in range(6)
    ]
    log = {"responses": []}

    def user_process(user, rng):
        yield world.env.timeout(rng.uniform(0, 1800))
        yield from user.install()
        user.start_background(until=36 * 3600.0)
        urls = [
            scenario.urls["youtube"],
            scenario.urls["porn"],
            scenario.urls["small-unblocked"],
            scenario.urls["large-unblocked"],
        ]
        while world.env.now < 36 * 3600.0:
            yield world.env.timeout(rng.expovariate(1.0 / 1200.0))
            url = rng.choice(urls)
            response = yield from user.request(url)
            yield response.measurement_process
            log["responses"].append((world.env.now, user.name, url, response))

    def censor_process():
        # Hour 12: ISP-A starts blocking the large unblocked site.
        yield world.env.timeout(12 * 3600.0)
        policy = world.network.ases[scenario.isp_a.asn].censor.policy
        policy.add_rule(
            Rule(
                matcher=Matcher(domains={"www.bigmedia.example.com"}),
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_REDIRECT,
                    blockpage_ip=scenario.blockpage_a.ip,
                ),
                label="wave",
            )
        )

    for index, user in enumerate(users):
        world.env.process(
            user_process(user, world.rngs.fork(f"e2e-{index}").stream("b"))
        )
    world.env.process(censor_process())
    world.env.run()
    return scenario, server, users, log


class TestDeploymentStory:
    def test_everyone_registered_and_reported(self, story):
        scenario, server, users, log = story
        assert server.client_count == 6
        assert server.update_count > 0
        assert all(user.reporting.registered for user in users)

    def test_blocked_content_served_throughout(self, story):
        _scenario, _server, _users, log = story
        blocked_serves = [
            r for _t, _u, url, r in log["responses"]
            if "youtube" in url or "hotstuff" in url
        ]
        assert blocked_serves
        ok_fraction = sum(1 for r in blocked_serves if r.ok) / len(blocked_serves)
        assert ok_fraction > 0.95

    def test_steady_state_uses_local_fixes(self, story):
        _scenario, _server, _users, log = story
        late = [
            r for t, _u, url, r in log["responses"]
            if "youtube" in url and t > 6 * 3600.0 and r.ok
        ]
        fix_fraction = sum(
            1 for r in late if r.path in ("https", "domain-fronting")
        ) / len(late)
        assert fix_fraction > 0.7

    def test_wave_detected_and_shared(self, story):
        scenario, server, _users, log = story
        entry = server.entry(
            "http://www.bigmedia.example.com/", scenario.isp_a.asn
        )
        assert entry is not None
        # Detected after the censor moved at hour 12, within a few hours.
        assert 12 * 3600.0 <= entry.first_measured_at <= 20 * 3600.0
        assert BlockType.BLOCK_PAGE in entry.stages
        # ISP-B never blocked it: no cross-AS contamination.
        assert server.entry(
            "http://www.bigmedia.example.com/", scenario.isp_b.asn
        ) is None

    def test_migration_inherits_crowd_knowledge(self, story):
        scenario, server, users, _log = story
        world = scenario.world
        traveller = users[0]  # lives on ISP-A

        def migrate():
            count = yield from traveller.migrate([scenario.isp_b])
            return count

        count = world.run_process(migrate())
        assert traveller.asn == scenario.isp_b.asn
        assert count >= 1  # ISP-B's blocked list came down
        assert traveller.global_view.lookup(scenario.urls["youtube"]) is not None

    def test_sybil_flood_filtered_and_revoked(self, story):
        scenario, server, _users, _log = story
        world = scenario.world
        sybil = server.register(now=world.env.now)
        fakes = [
            ReportItem(
                url=f"http://sybil-{i}.example/",
                asn=scenario.isp_a.asn,
                stages=(BlockType.BLOCK_PAGE,),
                measured_at=world.env.now,
            )
            for i in range(120)
        ]
        server.post_update(sybil, fakes, now=world.env.now)
        filtered = server.blocked_for_as(
            scenario.isp_a.asn, now=world.env.now, min_votes=0.05
        )
        assert not any("sybil-" in e.url for e in filtered)
        revoked = ReputationAnalyzer(server).enforce()
        assert sybil in revoked
        honest_left = server.client_count
        assert honest_left == 6  # only the attacker lost their identity

    def test_analytics_are_coherent(self, story):
        scenario, server, _users, _log = story
        analytics = MeasurementAnalytics(server)
        per_as = analytics.reporters_per_as()
        assert set(per_as) <= {scenario.isp_a.asn, scenario.isp_b.asn}
        assert all(count >= 1 for count in per_as.values())
        summary_a = analytics.as_summary(scenario.isp_a.asn)
        assert summary_a.blocked_urls >= 2  # youtube, porn, + the wave
        varied = analytics.mechanism_heterogeneity()
        # YouTube blocks differently on ISP-A (http) vs ISP-B (dns).
        assert "youtube.com" in varied
