"""Behavioral fingerprints for the legacy scenario entrypoints.

The scenario-DSL redesign (ISSUE 7) turns ``pakistan_case_study``,
``centralized_country``, and ``BlockingWave`` into thin wrappers over
declarative :class:`~repro.scenarios.spec.ScenarioSpec` objects.  The
contract is *bit-identical behavior under the same seed*: the fingerprints
below were captured from the pre-redesign imperative builders (commit
a39839e) into ``tests/data/scenario_golden.json`` and the compatibility
tests re-compute them against the spec-compiled wrappers.

A fingerprint exercises the world end to end — direct-path measurements
from every ISP over every scenario URL (stage sequences *and* exact float
timings), a C-Saw client converging onto a fix with its full ``stats()``
dict, and the global-DB rows it produced — so any drift in topology,
censor rules, RNG stream wiring, or transport assembly shows up as a
diff, not just "roughly the same world".

Floats travel as ``repr`` strings so JSON round-trips keep full
precision (bit-identical means bit-identical).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "scenario_golden.json")


def _freeze(value: Any) -> Any:
    """Floats -> repr strings, recursively (exact JSON round-trip)."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {str(k): _freeze(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_freeze(v) for v in value]
    return value


def _probe(world, isp, stream: str, url: str) -> List[Any]:
    from repro.core.detection import measure_direct_path

    client, access = world.add_client(f"fp-{stream.replace('/', '-')}", [isp])
    ctx = world.new_ctx(client, access, stream=f"fp/{stream}")
    outcome = world.run_process(measure_direct_path(world, ctx, url))
    return [
        outcome.status.value,
        [s.value for s in outcome.stages],
        repr(outcome.detection_time),
        repr(outcome.elapsed),
        outcome.suspected_blockpage,
    ]


def _server_rows(server) -> List[Any]:
    rows = [
        [
            entry.url,
            entry.asn,
            [s.value for s in entry.stages],
            repr(entry.measured_at),
            repr(entry.first_measured_at),
        ]
        for entry in server.all_entries()
    ]
    return sorted(rows, key=lambda row: (row[0], row[1]))


def case_study_fingerprint(seed: int = 3) -> Dict[str, Any]:
    """Probes + one converging C-Saw client on the Pakistan world."""
    from repro.core import CSawClient, ServerDB
    from repro.workloads.scenarios import pakistan_case_study

    scenario = pakistan_case_study(seed=seed, with_proxy_fleet=True)
    world = scenario.world
    fp: Dict[str, Any] = {"probes": [], "flow": {}, "server": []}
    for isp_label, isp in (
        ("A", scenario.isp_a),
        ("B", scenario.isp_b),
        ("clean", scenario.isp_clean),
    ):
        for key in sorted(scenario.urls):
            fp["probes"].append(
                [isp_label, key]
                + _probe(world, isp, f"{isp_label}/{key}", scenario.urls[key])
            )
    server = ServerDB(entry_ttl=None)
    client = CSawClient(
        world,
        "fp-user",
        [scenario.isp_b],
        transports=scenario.make_transports(
            "fp-user", include=["public-dns", "https", "domain-fronting"]
        ),
        server_db=server,
    )
    paths: List[Any] = []

    def flow():
        yield from client.install()
        for _ in range(3):
            response = yield from client.request(scenario.urls["youtube"])
            yield response.measurement_process
            paths.append([response.path, repr(response.plt), response.status.value])

    world.run_process(flow())
    fp["flow"] = {"paths": paths, "stats": _freeze(client.stats())}
    fp["server"] = _server_rows(server)
    return fp


def centralized_fingerprint(seed: int = 9, n_isps: int = 3) -> Dict[str, Any]:
    from repro.core import CSawClient
    from repro.workloads.scenarios import centralized_country

    scenario = centralized_country(seed=seed, n_isps=n_isps)
    world = scenario.world
    fp: Dict[str, Any] = {"probes": [], "paths": []}
    for isp in scenario.isps:
        for key in sorted(scenario.urls):
            fp["probes"].append(
                [isp.asn, key]
                + _probe(world, isp, f"{isp.asn}/{key}", scenario.urls[key])
            )
    for isp in scenario.isps:
        client = CSawClient(
            world,
            f"fp-user-{isp.asn}",
            [isp],
            transports=scenario.make_transports(f"fp-user-{isp.asn}"),
        )

        def flow(c=client):
            last = None
            for _ in range(3):
                response = yield from c.request(scenario.urls["youtube"])
                yield response.measurement_process
                last = response
            return last

        served = world.run_process(flow())
        fp["paths"].append([isp.asn, served.path, repr(served.plt)])
    return fp


def wave_fingerprint(seed: int = 6, users_per_as: int = 3) -> Dict[str, Any]:
    from repro.workloads.events import BlockingWave

    wave = BlockingWave(seed=seed, users_per_as=users_per_as)
    observations = wave.run()
    return {
        "observations": [
            [repr(o.detected_at), o.asn, o.service, o.symptom]
            for o in observations
        ],
        "stats": [_freeze(c.stats()) for c in wave.clients],
        "entries": wave.server.entry_count,
    }


def all_fingerprints() -> Dict[str, Any]:
    return {
        "case_study": case_study_fingerprint(),
        "centralized": centralized_fingerprint(),
        "wave": wave_fingerprint(),
    }


def load_golden() -> Dict[str, Any]:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


if __name__ == "__main__":
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(all_fingerprints(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")
