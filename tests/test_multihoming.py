"""Tests for multihoming detection and strategy pinning (§4.4)."""

import pytest

from repro.core import BlockStatus, BlockType, CSawClient, CSawConfig
from repro.core.multihoming import MultihomingManager
from repro.workloads.scenarios import pakistan_case_study


@pytest.fixture()
def scenario():
    return pakistan_case_study(seed=99, with_proxy_fleet=False)


def drive(scenario, gen):
    return scenario.world.run_process(gen)


class TestDetection:
    def test_single_homed_never_flags(self, scenario):
        world = scenario.world
        client, access = world.add_client("mh-single", [scenario.isp_a])
        manager = MultihomingManager(world, access, rng_stream="mh1")
        ctx = world.new_ctx(client, access)

        def probe_many():
            for _ in range(10):
                yield from manager.probe_once(ctx)

        drive(scenario, probe_many())
        assert not manager.is_multihomed
        assert manager.observed_asns == {scenario.isp_a.asn}

    def test_multihomed_detected_within_window(self, scenario):
        world = scenario.world
        client, access = world.add_client(
            "mh-dual", [scenario.isp_a, scenario.isp_b]
        )
        manager = MultihomingManager(world, access, rng_stream="mh2")
        ctx = world.new_ctx(client, access)

        def probe_many():
            for _ in range(10):
                yield from manager.probe_once(ctx)

        drive(scenario, probe_many())
        assert manager.is_multihomed
        assert manager.observed_asns == {scenario.isp_a.asn, scenario.isp_b.asn}

    def test_window_validation(self, scenario):
        world = scenario.world
        _client, access = world.add_client("mh-w", [scenario.isp_a])
        with pytest.raises(ValueError):
            MultihomingManager(world, access, window=1)


class TestPinning:
    def make_manager(self, scenario, name):
        world = scenario.world
        client, access = world.add_client(
            name, [scenario.isp_a, scenario.isp_b]
        )
        manager = MultihomingManager(world, access, rng_stream=name)
        ctx = world.new_ctx(client, access)

        def probe_many():
            for _ in range(10):
                yield from manager.probe_once(ctx)

        drive(scenario, probe_many())
        return manager

    def test_blocked_record_not_downgraded(self, scenario):
        from repro.core.localdb import LocalDatabase

        manager = self.make_manager(scenario, "pin1")
        db = LocalDatabase(ttl=1e9)
        db.record_measurement(
            "http://x.example/", BlockStatus.BLOCKED, [BlockType.HTTP_TIMEOUT]
        )
        status, stages = manager.adjust_measurement(
            db, "http://x.example/", BlockStatus.NOT_BLOCKED, []
        )
        assert status is BlockStatus.BLOCKED
        assert stages == [BlockType.HTTP_TIMEOUT]

    def test_blocked_evidence_merges(self, scenario):
        from repro.core.localdb import LocalDatabase

        manager = self.make_manager(scenario, "pin2")
        db = LocalDatabase(ttl=1e9)
        db.record_measurement(
            "http://x.example/", BlockStatus.BLOCKED, [BlockType.HTTP_TIMEOUT]
        )
        status, stages = manager.adjust_measurement(
            db, "http://x.example/", BlockStatus.BLOCKED, [BlockType.DNS_REDIRECT]
        )
        assert status is BlockStatus.BLOCKED
        assert set(stages) == {BlockType.HTTP_TIMEOUT, BlockType.DNS_REDIRECT}

    def test_not_multihomed_passes_through(self, scenario):
        from repro.core.localdb import LocalDatabase

        world = scenario.world
        _client, access = world.add_client("pin3", [scenario.isp_a])
        manager = MultihomingManager(world, access, rng_stream="pin3")
        db = LocalDatabase(ttl=1e9)
        db.record_measurement(
            "http://x.example/", BlockStatus.BLOCKED, [BlockType.HTTP_TIMEOUT]
        )
        status, stages = manager.adjust_measurement(
            db, "http://x.example/", BlockStatus.NOT_BLOCKED, []
        )
        assert status is BlockStatus.NOT_BLOCKED


class TestEndToEnd:
    def test_no_oscillation_on_multihomed_client(self, scenario):
        """A URL blocked by ISP-A only: without pinning the record would
        flip between blocked/not-blocked as flows alternate providers."""
        world = scenario.world
        url = "http://only-a-blocks.example/"
        world.web.add_site("only-a-blocks.example", location="us-east")
        world.web.add_page(url, size_bytes=30_000)
        from repro.censor.actions import HttpAction, HttpVerdict
        from repro.censor.policy import Matcher, Rule

        policy_a = world.network.ases[scenario.isp_a.asn].censor.policy
        policy_a.add_rule(
            Rule(
                matcher=Matcher(domains={"only-a-blocks.example"}),
                http=HttpVerdict(
                    HttpAction.BLOCKPAGE_REDIRECT,
                    blockpage_ip=scenario.blockpage_a.ip,
                ),
            )
        )
        client = CSawClient(
            world,
            "mh-e2e",
            [scenario.isp_a, scenario.isp_b],
            transports=scenario.make_transports("mh-e2e"),
            config=CSawConfig(probe_probability=1.0),
        )
        assert client.multihoming is not None

        def flow():
            # Warm up the multihoming detector.
            for _ in range(10):
                yield from client.multihoming.probe_once(client.new_ctx())
            statuses = []
            for _ in range(12):
                response = yield from client.request(url)
                yield response.measurement_process
                statuses.append(client.local_db.lookup(url)[0])
            return statuses

        statuses = drive(scenario, flow())
        # Once marked blocked it must stay blocked (no oscillation).
        first_blocked = statuses.index(BlockStatus.BLOCKED)
        assert all(
            s is BlockStatus.BLOCKED for s in statuses[first_blocked:]
        ), statuses
