"""Tests for consumer analytics (§4.2) and POST semantics (footnote 7)."""

import pytest

from repro.core import BlockStatus, BlockType, CSawClient, CSawConfig, ReportItem, ServerDB
from repro.core.analytics import MeasurementAnalytics
from repro.workloads.scenarios import pakistan_case_study


def seeded_server():
    server = ServerDB(entry_ttl=None)
    uuids = [server.register(now=float(i)) for i in range(5)]
    # AS 1: block pages dominate; AS 2: DNS dominates; foo.com differs.
    posts = [
        (uuids[0], "http://www.foo.com/", 1, BlockType.BLOCK_PAGE),
        (uuids[1], "http://www.foo.com/", 1, BlockType.BLOCK_PAGE),
        (uuids[0], "http://www.bar.com/", 1, BlockType.BLOCK_PAGE),
        (uuids[2], "http://www.foo.com/", 2, BlockType.DNS_REDIRECT),
        (uuids[3], "http://www.baz.com/", 2, BlockType.DNS_SERVFAIL),
        (uuids[4], "http://www.bar.com/", 2, BlockType.DNS_TIMEOUT),
    ]
    for uuid, url, asn, stage in posts:
        server.post_update(
            uuid,
            [ReportItem(url=url, asn=asn, stages=(stage,), measured_at=10.0)],
            now=20.0,
        )
    return server


class TestAnalytics:
    def test_reporters_per_as(self):
        analytics = MeasurementAnalytics(seeded_server())
        per_as = analytics.reporters_per_as()
        assert per_as[1] == 2  # uuids[0] and uuids[1]
        assert per_as[2] == 3

    def test_as_summary(self):
        analytics = MeasurementAnalytics(seeded_server())
        summary = analytics.as_summary(1)
        assert summary.blocked_urls == 2
        assert summary.blocked_domains == 2
        assert summary.dominant_type == "block-page"
        summary2 = analytics.as_summary(2)
        assert summary2.dominant_type.startswith("dns")

    def test_top_blocked_domains(self):
        analytics = MeasurementAnalytics(seeded_server())
        top = analytics.top_blocked_domains()
        # foo.com and bar.com are blocked in both ASes; baz.com in one.
        assert set(top[:2]) == {("foo.com", 2), ("bar.com", 2)}
        assert top[2] == ("baz.com", 1)

    def test_mechanism_heterogeneity(self):
        analytics = MeasurementAnalytics(seeded_server())
        varied = analytics.mechanism_heterogeneity()
        # foo.com: block page in AS1, DNS in AS2 — the §2.3 insight.
        assert "foo.com" in varied
        mechanisms = dict(varied["foo.com"])
        assert mechanisms[1] == "http"
        assert mechanisms[2] == "dns"
        # baz.com only ever appears with one mechanism.
        assert "baz.com" not in varied

    def test_detection_timeline(self):
        analytics = MeasurementAnalytics(seeded_server())
        timeline = analytics.detection_timeline(bucket_seconds=60.0)
        # Six posts but one is a re-report of an existing (URL, AS) entry.
        assert timeline == [(0.0, 5)]

    def test_stale_entries(self):
        server = seeded_server()
        analytics = MeasurementAnalytics(server)
        assert analytics.stale_entries(now=20.0, older_than=100.0) == []
        stale = analytics.stale_entries(now=500.0, older_than=100.0)
        assert len(stale) == len(server.all_entries())

    def test_empty_server(self):
        analytics = MeasurementAnalytics(ServerDB())
        assert analytics.reporters_per_as() == {}
        assert analytics.all_as_summaries() == []
        assert analytics.top_blocked_domains() == []


class TestPostSemantics:
    @pytest.fixture()
    def scenario(self):
        return pakistan_case_study(seed=999, with_proxy_fleet=False)

    def make_client(self, scenario, name, **config_kw):
        return CSawClient(
            scenario.world,
            name,
            [scenario.isp_a],
            transports=scenario.make_transports(name, include=["tor"]),
            config=CSawConfig(**config_kw),
        )

    def run(self, scenario, client, url, method):
        def proc():
            response = yield from client.measurement.handle_request(
                url, ctx=client.new_ctx(), method=method
            )
            yield response.measurement_process
            return response

        return scenario.world.run_process(proc())

    def test_post_never_duplicated_on_unknown_url(self, scenario):
        """A POST to a fresh unblocked URL must not spawn a relay copy —
        compare the circumvention traffic of a GET vs a POST."""
        world = scenario.world
        get_client = self.make_client(scenario, "post-1")
        post_client = self.make_client(scenario, "post-2")
        url = scenario.urls["small-unblocked"]

        get_resp = self.run(scenario, get_client, url, "GET")
        post_resp = self.run(scenario, post_client, url, "POST")
        assert get_resp.ok and post_resp.ok
        # The GET's parallel Tor duplicate shows up in the PLT tracker;
        # the POST leaves no relay trace at all.
        assert get_client.circumvention._tracker.by_transport.get("tor")
        assert not post_client.circumvention._tracker.by_transport.get("tor")

    def test_post_to_blocked_url_still_circumvented(self, scenario):
        client = self.make_client(scenario, "post-3")
        first = self.run(scenario, client, scenario.urls["youtube"], "GET")
        assert first.status is BlockStatus.BLOCKED
        post = self.run(scenario, client, scenario.urls["youtube"], "POST")
        assert post.ok
        assert post.path == "tor"  # the write still goes through, once

    def test_post_skips_probe(self, scenario):
        client = self.make_client(scenario, "post-4", probe_probability=1.0)
        self.run(scenario, client, scenario.urls["youtube"], "GET")
        probes_before = client.measurement.probes_launched
        for _ in range(5):
            self.run(scenario, client, scenario.urls["youtube"], "POST")
        assert client.measurement.probes_launched == probes_before

    def test_unknown_method_rejected(self, scenario):
        client = self.make_client(scenario, "post-5")

        def proc():
            with pytest.raises(ValueError):
                yield from client.measurement.handle_request(
                    scenario.urls["small-unblocked"], method="DELETE"
                )

        scenario.world.run_process(proc())
