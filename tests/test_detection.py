"""Tests for the Figure-4 detection flowchart and Table-5 timings."""

import pytest

from repro.core.detection import measure_direct_path
from repro.core.records import BlockStatus, BlockType
from repro.workloads.scenarios import TABLE5_SITES, pakistan_case_study


@pytest.fixture(scope="module")
def scenario():
    return pakistan_case_study(seed=21, with_proxy_fleet=False)


def detect(scenario, isp, url):
    world = scenario.world
    client, access = world.add_client(
        f"det-{world.network._ips.allocate()}", [isp]
    )
    ctx = world.new_ctx(client, access, stream=f"det/{url}/{world.env.now}")
    return world.run_process(measure_direct_path(world, ctx, url))


class TestFlowchartClassification:
    def test_unblocked_page_is_not_blocked(self, scenario):
        outcome = detect(
            scenario, scenario.isp_a, scenario.urls["small-unblocked"]
        )
        assert outcome.status is BlockStatus.NOT_BLOCKED
        assert outcome.stages == []
        assert outcome.response.status == 200

    def test_http_blockpage_detected(self, scenario):
        outcome = detect(scenario, scenario.isp_a, scenario.urls["youtube"])
        assert outcome.status is BlockStatus.BLOCKED
        assert outcome.stages == [BlockType.BLOCK_PAGE]
        assert outcome.suspected_blockpage  # pending phase-2 confirmation

    def test_tcp_ip_blackhole_detected(self, scenario):
        outcome = detect(scenario, scenario.isp_a, scenario.urls["table5/tcp-ip"])
        assert outcome.status is BlockStatus.BLOCKED
        assert BlockType.IP_TIMEOUT in outcome.stages

    def test_dns_servfail_detected_via_gdns(self, scenario):
        outcome = detect(
            scenario, scenario.isp_a, scenario.urls["table5/dns-servfail"]
        )
        assert outcome.status is BlockStatus.BLOCKED
        assert BlockType.DNS_SERVFAIL in outcome.stages
        # GDNS answered, the page itself loads: evidence is DNS-only.
        assert outcome.response is not None

    def test_dns_refused_detected(self, scenario):
        outcome = detect(
            scenario, scenario.isp_a, scenario.urls["table5/dns-refused"]
        )
        assert outcome.status is BlockStatus.BLOCKED
        assert BlockType.DNS_REFUSED in outcome.stages

    def test_multistage_dns_plus_ip(self, scenario):
        outcome = detect(
            scenario, scenario.isp_a, scenario.urls["table5/tcp-ip+dns"]
        )
        assert outcome.status is BlockStatus.BLOCKED
        assert BlockType.DNS_SERVFAIL in outcome.stages
        assert BlockType.IP_TIMEOUT in outcome.stages

    def test_isp_b_dns_redirect_plus_http_drop(self, scenario):
        outcome = detect(scenario, scenario.isp_b, scenario.urls["youtube"])
        assert outcome.status is BlockStatus.BLOCKED
        assert BlockType.DNS_REDIRECT in outcome.stages
        assert BlockType.HTTP_TIMEOUT in outcome.stages

    def test_nonexistent_domain_is_not_censorship(self, scenario):
        outcome = detect(scenario, scenario.isp_a, "http://no-such-site.example/")
        assert outcome.status is BlockStatus.NOT_BLOCKED
        assert outcome.error is not None

    def test_https_sni_drop_detected(self, scenario):
        outcome = detect(
            scenario, scenario.isp_b, "https://www.youtube.com/"
        )
        assert outcome.status is BlockStatus.BLOCKED
        assert BlockType.SNI_TIMEOUT in outcome.stages


class TestDetectionTimes:
    """Table 5: average detection times per blocking type."""

    def average(self, scenario, key, runs=10):
        times = []
        for _ in range(runs):
            outcome = detect(
                scenario, scenario.isp_a, scenario.urls[f"table5/{key}"]
            )
            times.append(outcome.detection_time)
        return sum(times) / len(times)

    def test_tcp_ip_about_21s(self, scenario):
        assert 19.0 <= self.average(scenario, "tcp-ip") <= 24.0

    def test_dns_servfail_about_10s(self, scenario):
        assert 9.0 <= self.average(scenario, "dns-servfail") <= 14.0

    def test_dns_refused_fast(self, scenario):
        assert self.average(scenario, "dns-refused") <= 0.5

    def test_http_blockpage_about_2s(self, scenario):
        assert 0.5 <= self.average(scenario, "http-blockpage") <= 4.0

    def test_multistage_about_32s(self, scenario):
        assert 29.0 <= self.average(scenario, "tcp-ip+dns") <= 38.0

    def test_ordering_matches_paper(self, scenario):
        refused = self.average(scenario, "dns-refused", runs=5)
        blockpage = self.average(scenario, "http-blockpage", runs=5)
        servfail = self.average(scenario, "dns-servfail", runs=5)
        tcpip = self.average(scenario, "tcp-ip", runs=5)
        multi = self.average(scenario, "tcp-ip+dns", runs=5)
        assert refused < blockpage < servfail < tcpip < multi
