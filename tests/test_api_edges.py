"""Last-mile API edge tests: small public surfaces not hit elsewhere."""

import pytest

from repro.core import BlockType, CSawConfig
from repro.core.records import URLRecord, BlockStatus
from repro.core.reporting import GlobalView
from repro.core.globaldb import GlobalEntry
from repro.urlkit import parse_url


class TestParsedUrlHelpers:
    def test_with_host(self):
        parsed = parse_url("https://old.example/path").with_host("NEW.example")
        assert parsed.host == "new.example"
        assert parsed.path == "/path"
        assert parsed.scheme == "https"

    def test_str_is_url(self):
        assert str(parse_url("http://a.example/x")) == "http://a.example/x"

    def test_with_scheme_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_url("http://a.example/").with_scheme("gopher")

    def test_base_of_base_is_itself(self):
        base = parse_url("http://a.example/").base()
        assert base.url == "http://a.example/"
        assert base.is_base


class TestRecordHelpers:
    def test_merge_stages_is_stable_and_deduplicating(self):
        record = URLRecord(
            url="http://x.example/", asn=1, measured_at=0.0,
            status=BlockStatus.BLOCKED, stages=[BlockType.DNS_SERVFAIL],
        )
        record.merge_stages([BlockType.DNS_SERVFAIL, BlockType.IP_TIMEOUT])
        assert record.stages == [BlockType.DNS_SERVFAIL, BlockType.IP_TIMEOUT]

    def test_repr_is_informative(self):
        record = URLRecord(
            url="http://x.example/", asn=1, measured_at=3.5,
            status=BlockStatus.BLOCKED, stages=[BlockType.BLOCK_PAGE],
        )
        text = repr(record)
        assert "http://x.example/" in text
        assert "block-page" in text

    def test_server_filtering_stage_and_scope(self):
        assert BlockType.SERVER_FILTERING.stage == "server"
        assert BlockType.SERVER_FILTERING.hostname_scoped


class TestGlobalViewSurface:
    def make_entry(self, url):
        return GlobalEntry(
            url=url, asn=1, stages=[BlockType.BLOCK_PAGE],
            measured_at=0.0, posted_at=0.0, last_uuid="u",
        )

    def test_urls_listing(self):
        view = GlobalView()
        view.replace([self.make_entry("http://a.example/"),
                      self.make_entry("http://b.example/x")], now=1.0)
        assert sorted(view.urls()) == [
            "http://a.example/", "http://b.example/x"
        ]

    def test_exact_beats_base(self):
        view = GlobalView()
        base = self.make_entry("http://a.example/")
        deep = self.make_entry("http://a.example/deep")
        view.replace([base, deep], now=1.0)
        assert view.lookup("http://a.example/deep") is deep
        assert view.lookup("http://a.example/other") is base


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(probe_probability=1.5),
            dict(redundancy_mode="zigzag"),
            dict(max_redundant_requests=0),
            dict(explore_every_n=1),
            dict(ewma_alpha=0.0),
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CSawConfig(**kwargs)

    def test_defaults_follow_paper(self):
        config = CSawConfig()
        assert config.probe_probability <= 0.25  # §7.1 recommendation
        assert config.max_redundant_requests == 2  # Figure 6a sweet spot
        assert config.explore_every_n == 5  # §4.3.2
