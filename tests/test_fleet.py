"""The fleet layer: record-array cohorts, batched pulls, convergence.

The bench (``benchmarks/bench_fleet_storm.py``) proves the scale story;
these tests pin the semantics at small sizes: same-seed determinism,
worker-count invariance of the sharded fan-out, convergence accounting,
batch sharing, and metric merging.
"""

import pytest

from repro.core.fleet import (
    ClientCohort,
    FleetMetrics,
    run_fleet_storm,
    run_fleet_storm_sharded,
)
from repro.core.globaldb import ServerDB
from repro.simnet.engine import Environment


def small_storm(**overrides):
    kwargs = dict(seed=7, n_ases=4, clients_per_as=60, urls_per_as=5,
                  reporter_fraction=0.05)
    kwargs.update(overrides)
    return run_fleet_storm(**kwargs)


class TestFleetStorm:
    def test_same_seed_bit_identical(self):
        a, b = small_storm(), small_storm()
        assert a.summary() == b.summary()
        assert a.convergence_by_as == b.convergence_by_as

    def test_different_seed_differs(self):
        a, b = small_storm(), small_storm(seed=8)
        # Schedules are drawn from the seed; the storms must not collide.
        assert a.summary() != b.summary()

    def test_every_as_converges_within_horizon(self):
        metrics = small_storm()
        assert metrics.n_ases == 4
        assert len(metrics.convergence_by_as) == 4
        for asn, elapsed in metrics.convergence_by_as.items():
            assert elapsed >= 0.0, f"AS {asn} never converged"
            # A full pull cycle after the last report suffices.
            assert elapsed <= 600.0 + 120.0
        assert metrics.mean_convergence <= metrics.max_convergence

    def test_reports_and_entries_match_wave(self):
        metrics = small_storm()
        reporters_per_as = max(1, round(60 * 0.05))
        assert metrics.n_reporters == 4 * reporters_per_as
        assert metrics.reports_absorbed == metrics.n_reporters * 5
        # Voting dedupes: each AS's shard holds exactly the 5 wave URLs.
        assert metrics.server_entries == 4 * 5

    def test_batches_shared_across_cohort(self):
        metrics = small_storm()
        # Every client pulls ~2-3 times over the horizon, but batch
        # construction is amortized per (AS, since-version, tick).
        assert metrics.pulls_served >= 2 * metrics.n_clients
        assert metrics.batches_built < metrics.pulls_served / 2

    def test_sync_cost_accounted_per_client(self):
        metrics = small_storm()
        assert metrics.sync_rows >= metrics.n_clients  # everyone caught up
        assert metrics.bytes_per_client > 0
        assert metrics.rows_per_client >= 5  # the wave, at least once

    def test_pending_zero_when_every_reporter_posted(self):
        metrics = small_storm()
        # All reporters detected within the horizon: nothing left unposted.
        assert metrics.pending_at_horizon == 0
        assert set(metrics.pending_by_as.values()) == {0}
        assert metrics.summary()["pending_at_horizon"] == 0

    def test_pending_surfaces_cut_off_reporters(self):
        # Horizon ends right after the wave: most detection delays have
        # not elapsed, so most reporters' wave URLs are still pending —
        # and pending + absorbed must account for every wave URL.
        metrics = small_storm(wave_at=300.0, horizon=301.0)
        assert metrics.pending_at_horizon > 0
        assert (
            metrics.pending_at_horizon + metrics.reports_absorbed
            == metrics.n_reporters * 5
        )
        assert any(v > 0 for v in metrics.pending_by_as.values())

    def test_sweep_modes_agree_and_validate(self):
        grouped = small_storm()
        spec = small_storm(sweep_mode="spec")
        assert grouped.summary() == spec.summary()
        assert grouped.convergence_by_as == spec.convergence_by_as
        with pytest.raises(ValueError):
            ClientCohort(
                ServerDB(entry_ttl=None), asns=[1], clients_per_as=5,
                seed=0, sweep_mode="bogus",
            )

    def test_no_wave_no_convergence_entry(self):
        server = ServerDB(entry_ttl=None)
        env = Environment()
        cohort = ClientCohort(server, asns=[1, 2], clients_per_as=10, seed=0)
        env.process(cohort.run(env, until=1200.0))
        env.run()
        metrics = cohort.finalize()
        assert metrics.reports_absorbed == 0
        # No wave was started: convergence is reported as "did not".
        assert set(metrics.convergence_by_as.values()) == {-1.0}
        assert metrics.pulls_served > 0


class TestShardedFanout:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_count_invariant(self, workers):
        single = run_fleet_storm_sharded(
            seed=5, n_ases=6, clients_per_as=30, workers=1
        )
        sharded = run_fleet_storm_sharded(
            seed=5, n_ases=6, clients_per_as=30, workers=workers
        )
        assert sharded.summary() == single.summary()
        assert sharded.convergence_by_as == single.convergence_by_as

    def test_sharded_matches_unsharded(self):
        plain = run_fleet_storm(seed=5, n_ases=6, clients_per_as=30)
        sharded = run_fleet_storm_sharded(
            seed=5, n_ases=6, clients_per_as=30, workers=3
        )
        assert sharded.summary() == plain.summary()

    def test_more_workers_than_ases(self):
        merged = run_fleet_storm_sharded(
            seed=5, n_ases=2, clients_per_as=10, workers=5
        )
        assert merged.n_ases == 2
        assert len(merged.convergence_by_as) == 2


class TestFleetMetrics:
    def test_merge_sums_and_concatenates(self):
        a = FleetMetrics(
            n_clients=10, n_ases=1, reports_absorbed=3,
            first_report_at=12.0, last_report_at=17.0,
            pulls_served=20, batches_built=2, sync_rows=30, sync_bytes=400,
            server_entries=3, convergence_by_as={1: 10.0},
        )
        b = FleetMetrics(
            n_clients=20, n_ases=2, reports_absorbed=4,
            first_report_at=10.0, last_report_at=14.0,
            pulls_served=40, batches_built=3, sync_rows=60, sync_bytes=800,
            server_entries=6, convergence_by_as={2: 20.0, 3: -1.0},
        )
        merged = a.merge(b)
        assert merged.n_clients == 30
        # The window spans partitions: global first (10) to global last (17).
        assert merged.report_window == 7.0
        assert merged.sync_bytes == 1200
        assert merged.convergence_by_as == {1: 10.0, 2: 20.0, 3: -1.0}
        assert merged.bytes_per_client == pytest.approx(40.0)
        # Unconverged ASes are excluded from the aggregates.
        assert merged.mean_convergence == pytest.approx(15.0)
        assert merged.max_convergence == pytest.approx(20.0)

    def test_merge_empty_partition_is_identity(self):
        a = FleetMetrics(
            n_clients=10, n_ases=1, reports_absorbed=3,
            first_report_at=12.0, last_report_at=17.0,
            pulls_served=20, sync_rows=30, sync_bytes=400,
            convergence_by_as={1: 10.0}, pending_by_as={1: 0},
        )
        before = dict(a.summary())
        merged = a.merge(FleetMetrics())
        assert merged.summary() == before
        assert merged.convergence_by_as == {1: 10.0}
        # And folding into an empty accumulator adopts the partition.
        fresh = FleetMetrics().merge(
            FleetMetrics(n_clients=5, convergence_by_as={2: 4.0})
        )
        assert fresh.n_clients == 5
        assert fresh.convergence_by_as == {2: 4.0}

    def test_merge_partitions_without_reports(self):
        # Neither side absorbed a report: endpoints stay None and the
        # window is empty rather than raising on None arithmetic.
        a = FleetMetrics(n_clients=4, convergence_by_as={1: -1.0})
        b = FleetMetrics(n_clients=6, convergence_by_as={2: -1.0})
        merged = a.merge(b)
        assert merged.first_report_at is None
        assert merged.last_report_at is None
        assert merged.report_window == 0.0
        # One-sided reports adopt the reporting partition's endpoints.
        c = FleetMetrics(
            n_clients=1, first_report_at=3.0, last_report_at=9.0,
            convergence_by_as={3: 5.0},
        )
        merged = merged.merge(c)
        assert (merged.first_report_at, merged.last_report_at) == (3.0, 9.0)

    def test_merge_rejects_overlapping_as_partitions(self):
        a = FleetMetrics(n_clients=10, convergence_by_as={1: 10.0, 2: 3.0})
        b = FleetMetrics(n_clients=10, convergence_by_as={2: 20.0, 3: 1.0})
        with pytest.raises(ValueError, match=r"overlapping AS.*\[2\]"):
            a.merge(b)
        # The failed merge must not have half-applied: counters untouched.
        assert a.n_clients == 10
        assert a.convergence_by_as == {1: 10.0, 2: 3.0}

    def test_cohort_validates_inputs(self):
        server = ServerDB(entry_ttl=None)
        with pytest.raises(ValueError):
            ClientCohort(server, asns=[1], clients_per_as=0, seed=0)
        with pytest.raises(ValueError):
            ClientCohort(
                server, asns=[1], clients_per_as=5, seed=0,
                reporter_fraction=0.0,
            )
