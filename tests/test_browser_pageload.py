"""Tests for the page-load model and the end-to-end client page loads."""

import pytest

from repro.circumvent import DirectTransport
from repro.core import CSawClient
from repro.simnet.browser import Semaphore, load_page
from repro.simnet.engine import Environment
from repro.simnet.web import EmbeddedRef
from repro.workloads.scenarios import pakistan_case_study


@pytest.fixture()
def scenario():
    sc = pakistan_case_study(seed=111, with_proxy_fleet=False)
    world = sc.world
    world.web.add_site("rich.example", location="us-east")
    world.web.add_site("cdn.rich.example", location="global-anycast")
    refs = [
        EmbeddedRef(url=f"http://cdn.rich.example/obj{i}.jpg", size_bytes=20_000)
        for i in range(8)
    ]
    for i in range(8):
        world.web.add_page(
            f"http://cdn.rich.example/obj{i}.jpg", size_bytes=20_000
        )
    world.web.add_page("http://rich.example/", size_bytes=80_000, embedded=refs)
    return sc


class TestSemaphore:
    def test_fifo_limit(self):
        env = Environment()
        sem = Semaphore(env, capacity=2)
        order = []

        def worker(name, hold):
            yield sem.acquire()
            order.append((name, env.now))
            yield env.timeout(hold)
            sem.release()

        for name, hold in [("a", 5), ("b", 5), ("c", 1)]:
            env.process(worker(name, hold))
        env.run()
        starts = dict((n, t) for n, t in order)
        assert starts["a"] == 0 and starts["b"] == 0
        assert starts["c"] == 5  # waited for a slot

    def test_over_release_rejected(self):
        env = Environment()
        sem = Semaphore(env, capacity=1)
        with pytest.raises(RuntimeError):
            sem.release()

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Semaphore(env, capacity=0)


class TestLoadPage:
    def fetcher_for(self, scenario, isp, name):
        world = scenario.world
        client, access = world.add_client(name, [isp])
        transport = DirectTransport()

        def fetcher(url):
            ctx = world.new_ctx(client, access, stream=f"pl/{name}")
            result = yield from transport.fetch(world, ctx, url)
            return result

        return fetcher

    def test_page_with_objects_loads_all(self, scenario):
        world = scenario.world
        fetcher = self.fetcher_for(scenario, scenario.isp_a, "pl1")
        result = world.run_process(
            load_page(world.env, fetcher, "http://rich.example/")
        )
        assert result.ok
        assert len(result.objects) == 8
        assert all(obj.ok for obj in result.objects)
        assert result.plt > result.main.elapsed

    def test_object_failures_do_not_fail_page(self, scenario):
        world = scenario.world
        from repro.censor.actions import IpAction, IpVerdict
        from repro.censor.policy import Matcher, Rule

        cdn_ip = world.network.hosts_by_name["cdn.rich.example"].ip
        policy = world.network.ases[scenario.isp_a.asn].censor.policy
        policy.add_rule(
            Rule(matcher=Matcher(ips={cdn_ip}), ip=IpVerdict(IpAction.RST)),
        )
        fetcher = self.fetcher_for(scenario, scenario.isp_a, "pl2")
        result = world.run_process(
            load_page(world.env, fetcher, "http://rich.example/")
        )
        assert result.ok
        assert len(result.object_failures) == 8
        policy.remove_rules("")  # clean up the anonymous rule

    def test_parallelism_cap_slows_load(self, scenario):
        world = scenario.world
        fetcher_wide = self.fetcher_for(scenario, scenario.isp_clean, "pl3")
        fetcher_narrow = self.fetcher_for(scenario, scenario.isp_clean, "pl4")
        wide = world.run_process(
            load_page(world.env, fetcher_wide, "http://rich.example/", max_parallel=8)
        )
        narrow = world.run_process(
            load_page(world.env, fetcher_narrow, "http://rich.example/", max_parallel=1)
        )
        assert narrow.plt > wide.plt

    def test_failed_main_returns_immediately(self, scenario):
        world = scenario.world
        fetcher = self.fetcher_for(scenario, scenario.isp_a, "pl5")
        result = world.run_process(
            load_page(world.env, fetcher, "http://nonexistent-xyz.example/")
        )
        assert not result.ok
        assert result.objects == []


class TestClientPageLoad:
    def test_csaw_client_loads_page_with_cdn_objects(self, scenario):
        client = CSawClient(
            scenario.world,
            "page-user",
            [scenario.isp_a],
            transports=scenario.make_transports("page-user"),
        )
        result = scenario.world.run_process(
            client.load_page("http://rich.example/")
        )
        assert result.ok
        assert len(result.objects) == 8
        # Let the background measurement workers finish, then check that
        # every object URL went through the proxy and got measured.
        scenario.world.env.run()
        assert client.local_db.record_count >= 2  # rich.example + cdn origin
